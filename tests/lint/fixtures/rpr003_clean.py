"""RPR003 clean fixture: tape-safe reads plus the ``__init__`` exemption."""


class Scaler:
    def __init__(self, weight):
        self.weight = weight
        # No tape exists before the first forward pass.
        self.weight.data[...] = 1.0

    def scaled(self, factor):
        return self.weight * factor
