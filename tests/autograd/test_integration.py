"""End-to-end autograd integration: train small networks from scratch.

These tests treat :mod:`repro.autograd` as a standalone library — if a
two-layer network can fit XOR and a conv net can classify a toy pattern,
the engine's gradients compose correctly across every layer type the KGE
models rely on.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import (
    Adam,
    BatchNorm,
    Conv2d,
    Linear,
    Module,
    Tensor,
)
from repro.kge.losses import BCEWithLogitsLoss


class _MLP(Module):
    def __init__(self, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden = Linear(2, 8, rng)
        self.out = Linear(8, 1, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.out(self.hidden(x).tanh()).reshape(-1)


def test_mlp_learns_xor():
    x = np.asarray([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
    y = np.asarray([0.0, 1.0, 1.0, 0.0])
    net = _MLP(seed=3)
    optimizer = Adam(net.parameters(), lr=0.05)
    loss_fn = BCEWithLogitsLoss()
    for _ in range(400):
        optimizer.zero_grad()
        logits = net(Tensor(x))
        loss_fn(logits, y).backward()
        optimizer.step()
    predictions = (net(Tensor(x)).data > 0).astype(float)
    np.testing.assert_array_equal(predictions, y)


class _ConvNet(Module):
    def __init__(self, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = Conv2d(1, 4, 3, rng)
        self.bn = BatchNorm(4)
        self.fc = Linear(4 * 4 * 4, 1, rng)

    def __call__(self, x: Tensor) -> Tensor:
        h = self.bn(self.conv(x)).relu()
        return self.fc(h.reshape(len(x), -1)).reshape(-1)


def test_convnet_separates_vertical_from_horizontal_bars():
    rng = np.random.default_rng(0)
    images = []
    labels = []
    for _ in range(64):
        img = rng.normal(0.0, 0.1, size=(6, 6))
        if rng.random() < 0.5:
            img[:, rng.integers(0, 6)] += 2.0  # vertical bar
            labels.append(1.0)
        else:
            img[rng.integers(0, 6), :] += 2.0  # horizontal bar
            labels.append(0.0)
        images.append(img)
    x = np.stack(images)[:, None, :, :]
    y = np.asarray(labels)

    net = _ConvNet(seed=1)
    optimizer = Adam(net.parameters(), lr=0.02)
    loss_fn = BCEWithLogitsLoss()
    for _ in range(120):
        optimizer.zero_grad()
        loss_fn(net(Tensor(x)), y).backward()
        optimizer.step()

    net.eval()
    accuracy = ((net(Tensor(x)).data > 0).astype(float) == y).mean()
    assert accuracy > 0.95


def test_loss_curve_is_monotone_enough():
    """Adam on a convex quadratic: loss decreases nearly every step."""
    target = np.asarray([3.0, -1.0, 0.5])
    x = Tensor(np.zeros(3), requires_grad=True)
    optimizer = Adam([x], lr=0.05)
    losses = []
    for _ in range(100):
        optimizer.zero_grad()
        diff = x - target
        loss = (diff * diff).sum()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    increases = sum(1 for a, b in zip(losses, losses[1:]) if b > a + 1e-12)
    assert increases < 10
    assert losses[-1] < 0.01 * losses[0]
