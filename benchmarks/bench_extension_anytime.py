"""Extension — anytime discovery under a wall-clock budget.

Compares the UCB bandit scheduler against fair round-robin on the same
trained model and budget.  Because the paper's relations differ strongly
in yield (skewed KGs), prioritising productive relations wins facts per
pull; the gap is the value of budget-aware scheduling, a dimension the
fixed-budget Algorithm 1 cannot express.
"""

from __future__ import annotations

from common import save_and_print

from repro.discovery import anytime_discover
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset

_BUDGET = 2.0  # seconds


def test_anytime_schedulers(benchmark):
    graph = load_dataset("codexl-like")
    model = get_trained_model("codexl-like", "complex", graph=graph)
    stats = GraphStatistics(graph.train)

    def run(scheduler: str):
        return anytime_discover(
            model, graph, budget_seconds=_BUDGET, scheduler=scheduler,
            top_n=50, batch_candidates=100, seed=0, stats=stats,
        )

    ucb = benchmark.pedantic(lambda: run("ucb"), rounds=1, iterations=1)
    round_robin = run("round_robin")

    rows = []
    for result in (ucb, round_robin):
        total_pulls = sum(result.pulls.values())
        rows.append(
            {
                "scheduler": result.scheduler,
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "pulls": total_pulls,
                "facts_per_pull": round(result.num_facts / max(total_pulls, 1), 2),
                "facts_per_hour": round(result.facts_per_hour()),
            }
        )
    pull_spread = sorted(ucb.pulls.values())
    save_and_print(
        "extension_anytime",
        format_table(
            rows,
            title=f"Anytime discovery, {_BUDGET:.0f}s budget "
            "(codexl-like, ComplEx)",
        )
        + f"\n\nUCB pull distribution over relations: min={pull_spread[0]}, "
        f"median={pull_spread[len(pull_spread) // 2]}, max={pull_spread[-1]}",
    )

    # The bandit matches or beats fair scheduling on yield per pull.
    ucb_rate = ucb.num_facts / max(sum(ucb.pulls.values()), 1)
    rr_rate = round_robin.num_facts / max(sum(round_robin.pulls.values()), 1)
    assert ucb_rate >= 0.95 * rr_rate
    # And it is genuinely adaptive: pulls are not uniform across arms.
    assert pull_spread[-1] > pull_spread[0]