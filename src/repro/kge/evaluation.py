"""The standard KGE evaluation protocol.

Implements the object-side corruption ranking described in the paper
(§2.1 *Testing*): for each test triple ``(s, r, o)``, the object is
replaced by every entity, the candidates are scored, and the rank of the
true object yields MRR / mean rank / Hits@k.  Subject-side ranking and the
*filtered* setting (Bordes et al., 2013) — where other known-true triples
are excluded from the corruption list — are also provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kg.triples import TripleSet
from ..resilience import spawn_stream
from .base import KGEModel
from .ranking import RankingEngine

__all__ = [
    "RankingMetrics",
    "compute_ranks",
    "compute_ranks_reference",
    "evaluate_ranking",
    "generate_hard_negatives",
    "triple_classification",
]

_DEFAULT_HITS = (1, 3, 10)


@dataclass
class RankingMetrics:
    """Aggregate ranking metrics plus the raw rank vector."""

    mrr: float
    mean_rank: float
    hits: dict[int, float]
    ranks: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))

    @classmethod
    def from_ranks(
        cls, ranks: np.ndarray, hits_at: tuple[int, ...] = _DEFAULT_HITS
    ) -> "RankingMetrics":
        """Aggregate a vector of (possibly fractional, tie-averaged) ranks."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.size == 0:
            return cls(mrr=0.0, mean_rank=0.0, hits={k: 0.0 for k in hits_at})
        return cls(
            mrr=float((1.0 / ranks).mean()),
            mean_rank=float(ranks.mean()),
            hits={k: float((ranks <= k).mean()) for k in hits_at},
            ranks=ranks,
        )


def _filter_index(
    triples: TripleSet, side: str
) -> dict[tuple[int, int], np.ndarray]:
    return triples.sp_index() if side == "object" else triples.po_index()


def compute_ranks(
    model: KGEModel,
    triples: np.ndarray,
    filter_triples: TripleSet | None = None,
    side: str = "object",
    chunk_size: int = 512,
    engine: "RankingEngine | None" = None,
) -> np.ndarray:
    """Realistic (tie-averaged) ranks of true entities among corruptions.

    Served by the query-deduplicated :class:`~repro.kge.ranking.RankingEngine`
    — candidates sharing a ``(s, r)`` / ``(r, o)`` query are ranked against
    a single 1-vs-all score row, which produces bit-identical ranks to
    :func:`compute_ranks_reference` while scoring at most one row per
    *unique* query.

    Parameters
    ----------
    model:
        A trained scoring model.
    triples:
        ``(M, 3)`` array of triples to rank.
    filter_triples:
        If given, the *filtered* protocol is used: every other entity known
        to complete the query in this set is removed from the corruption
        list (the target itself is always kept).
    side:
        ``"object"`` replaces the object slot (the paper's protocol);
        ``"subject"`` replaces the subject slot.
    chunk_size:
        Number of unique queries scored per vectorised batch.
    engine:
        A shared :class:`RankingEngine` (score cache, thread pool,
        instrumentation); a throwaway single-threaded engine is created
        when omitted.
    """
    if engine is None:
        engine = RankingEngine(chunk_size=chunk_size)
    with no_grad():
        return engine.compute_ranks(
            model, triples, filter_triples=filter_triples, side=side
        )


def compute_ranks_reference(
    model: KGEModel,
    triples: np.ndarray,
    filter_triples: TripleSet | None = None,
    side: str = "object",
    chunk_size: int = 512,
) -> np.ndarray:
    """The legacy chunked ranking path: one score row **per candidate**.

    Kept as the reference implementation the equivalence suite checks
    :class:`~repro.kge.ranking.RankingEngine` against; prefer
    :func:`compute_ranks` everywhere else.
    """
    if side not in ("object", "subject"):
        raise ValueError(f"side must be 'object' or 'subject', got {side!r}")
    triples = np.asarray(triples, dtype=np.int64)
    if triples.size == 0:
        return np.zeros(0)

    index = _filter_index(filter_triples, side) if filter_triples is not None else None
    ranks = np.zeros(len(triples))

    with no_grad():
        for start in range(0, len(triples), chunk_size):
            batch = triples[start : start + chunk_size]
            if side == "object":
                scores = model.scores_sp(batch[:, 0], batch[:, 1])
                targets = batch[:, 2]
                keys = batch[:, [0, 1]]
            else:
                scores = model.scores_po(batch[:, 1], batch[:, 2])
                targets = batch[:, 0]
                keys = batch[:, [1, 2]]

            target_scores = scores[np.arange(len(batch)), targets].copy()
            if index is not None:
                for i, (a, b) in enumerate(keys):
                    known = index.get((int(a), int(b)))
                    if known is not None:
                        scores[i, known] = -np.inf
                # The targets themselves were masked with the rest of the
                # known-true entities; restore them so they can be ranked.
                scores[np.arange(len(batch)), targets] = target_scores
            greater = (scores > target_scores[:, None]).sum(axis=1)
            equal = (scores == target_scores[:, None]).sum(axis=1)
            # Realistic rank: ties broken at their expected position.
            ranks[start : start + len(batch)] = greater + (equal - 1) / 2.0 + 1.0
    return ranks


def evaluate_ranking(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str = "test",
    filtered: bool = True,
    side: str = "object",
    hits_at: tuple[int, ...] = _DEFAULT_HITS,
) -> RankingMetrics:
    """Run the full link-prediction evaluation on a dataset split.

    ``side`` may be ``"object"`` (the paper's protocol), ``"subject"``, or
    ``"both"`` — the common convention of averaging over object- and
    subject-side corruption ranks.
    """
    split_set = {"train": graph.train, "valid": graph.valid, "test": graph.test}.get(
        split
    )
    if split_set is None:
        raise KeyError(f"unknown split {split!r}")
    filter_triples = graph.all_triples() if filtered else None
    sides = ("object", "subject") if side == "both" else (side,)
    with no_grad():
        ranks = np.concatenate(
            [
                compute_ranks(
                    model, split_set.array, filter_triples=filter_triples, side=s
                )
                for s in sides
            ]
        )
    return RankingMetrics.from_ranks(ranks, hits_at=hits_at)


def generate_hard_negatives(
    graph: KnowledgeGraph,
    triples: np.ndarray,
    seed: int = 0,
    max_resample_rounds: int = 16,
    attempt: int = 0,
) -> np.ndarray:
    """Type-consistent false triples, one per input triple.

    Mirrors the construction of CoDEx's *hard negatives* (paper §4.1.2):
    each positive's object is replaced by another entity drawn from the
    same relation's observed range, so the corruption is plausible on
    type grounds; corruptions that are actually true anywhere in the
    graph are resampled.

    Resampling is round-based and batched: each round draws one candidate
    per still-unresolved triple (grouped by relation so every group is a
    single vectorised draw) and rejects candidates that equal the true
    object or are known true, up to ``max_resample_rounds`` rounds.  The
    output is fully determined by ``(seed, attempt)`` — relation groups
    are visited in sorted order — though the draw sequence differs from
    the retired per-triple loop, so negatives are not bit-identical
    across versions.

    ``attempt`` selects a seed-sequence spawn of the base seed:
    ``attempt=0`` reproduces the historical draws exactly, while a
    retried caller (e.g. a training epoch re-run after a divergence
    guard tripped) passes its retry index to get a stream that is
    deterministic yet not a replay of the identical failing draw.
    """
    rng = spawn_stream(seed, attempt) if attempt else spawn_stream(seed)
    triples = np.asarray(triples, dtype=np.int64)
    known = graph.all_triples()
    fallback_pool = np.arange(graph.num_entities, dtype=np.int64)
    pools: dict[int, np.ndarray] = {}
    for r in graph.train.unique_relations():
        pool = np.unique(graph.train.by_relation(int(r))[:, 2])
        pools[int(r)] = pool if pool.size >= 2 else fallback_pool

    negatives = triples.copy()
    unresolved = np.arange(len(triples))
    for _ in range(max_resample_rounds):
        if unresolved.size == 0:
            break
        rel_of = triples[unresolved, 1]
        draws = np.empty(len(unresolved), dtype=np.int64)
        for rel in np.unique(rel_of):
            mask = rel_of == rel
            pool = pools.get(int(rel), fallback_pool)
            draws[mask] = pool[rng.integers(0, len(pool), size=int(mask.sum()))]
        accepted = draws != triples[unresolved, 2]
        proposals = np.stack([triples[unresolved, 0], rel_of, draws], axis=1)
        accepted &= ~known.contains(proposals)
        negatives[unresolved[accepted], 2] = draws[accepted]
        unresolved = unresolved[~accepted]
    if unresolved.size:
        # Fall back to a uniform corruption if the range is saturated.
        negatives[unresolved, 2] = rng.integers(
            0, graph.num_entities, size=len(unresolved)
        )
    return negatives


def triple_classification(
    model: KGEModel,
    graph: KnowledgeGraph,
    seed: int = 0,
    hard_negatives: bool = False,
) -> dict[str, float]:
    """Binary true/false triple classification accuracy.

    A global score threshold is tuned on the validation split (positives
    vs. corrupted negatives) and applied to the test split — the task the
    paper describes KGE models answering out of the box.  With
    ``hard_negatives`` the corruptions are type-consistent (CoDEx-style),
    which is substantially harder than uniform corruption.
    """
    rng = np.random.default_rng(seed)

    def corrupt(split: TripleSet) -> np.ndarray:
        if hard_negatives:
            return generate_hard_negatives(
                graph, split.array, seed=int(rng.integers(0, 2**31))
            )
        arr = split.array.copy()
        arr[:, 2] = rng.integers(0, graph.num_entities, size=len(arr))
        mask = graph.train.contains(arr)
        arr[mask, 2] = rng.integers(0, graph.num_entities, size=int(mask.sum()))
        return arr

    with no_grad():
        valid_pos = model.scores_spo(graph.valid.array)
        valid_neg = model.scores_spo(corrupt(graph.valid))
    candidates = np.unique(np.concatenate([valid_pos, valid_neg]))
    best_threshold, best_acc = 0.0, -1.0
    for threshold in candidates:
        acc = 0.5 * ((valid_pos >= threshold).mean() + (valid_neg < threshold).mean())
        if acc > best_acc:
            best_acc, best_threshold = acc, float(threshold)

    with no_grad():
        test_pos = model.scores_spo(graph.test.array)
        test_neg = model.scores_spo(corrupt(graph.test))
    accuracy = 0.5 * (
        (test_pos >= best_threshold).mean() + (test_neg < best_threshold).mean()
    )
    return {
        "threshold": best_threshold,
        "valid_accuracy": float(best_acc),
        "test_accuracy": float(accuracy),
    }
