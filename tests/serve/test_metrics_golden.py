"""The ``/metrics`` exposition is a pinned wire format.

The registry is prepopulated through the public metric APIs with exact
values (no clocks), so the bytes the endpoint returns are fully
deterministic: ``serve.requests_count`` increments once for the GET
itself before routing, while ``serve.request_seconds`` is only observed
after the payload is rendered and therefore never appears mid-flight.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import RankRequest
from repro.obs import MetricsRegistry, use_registry
from repro.serve import ServeApp

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def build_serving_registry() -> MetricsRegistry:
    """A registry mid-life: 41 requests served, the 42nd is the scrape."""
    reg = MetricsRegistry()
    reg.counter("serve.requests_count").inc(41)
    reg.counter("serve.errors_count").inc(2)
    reg.counter("serve.model_hits_count").inc(28)
    reg.counter("serve.model_loads_count").inc(2)
    reg.counter("serve.model_evictions_count").inc(1)
    reg.counter("serve.flight_leads_count").inc(30)
    reg.counter("serve.coalesced_count").inc(12)
    reg.counter("serve.connection_errors_count").inc(3)
    hist = reg.histogram("serve.request_seconds", buckets=(0.005, 0.05, 0.5))
    for value in (0.001, 0.004, 0.02, 0.2, 0.7):
        hist.observe(value)
    return reg


class TestGoldenExposition:
    def test_metrics_endpoint_matches_golden_bytes(self, session):
        app = ServeApp(session)
        with use_registry(build_serving_registry()):
            status, content_type, payload = app.handle("GET", "/metrics", b"")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4"
        assert payload == GOLDEN.read_bytes()

    def test_scrape_counts_itself(self, session):
        app = ServeApp(session)
        with use_registry(build_serving_registry()):
            _, _, payload = app.handle("GET", "/metrics", b"")
        assert b"repro_serve_requests_count 42" in payload

    def test_repeated_scrapes_differ_only_in_request_accounting(self, session):
        app = ServeApp(session)
        with use_registry(build_serving_registry()):
            _, _, first = app.handle("GET", "/metrics", b"")
            _, _, second = app.handle("GET", "/metrics", b"")
        changed = [
            (a, b)
            for a, b in zip(first.splitlines(), second.splitlines())
            if a != b
        ]
        for before, after in changed:
            name = before.split(b" ")[0].split(b"{")[0]
            assert name in (
                b"repro_serve_requests_count",
                b"repro_serve_request_seconds_bucket",
                b"repro_serve_request_seconds_count",
                b"repro_serve_request_seconds_sum",
            ), before


class TestVocabulary:
    """RPR012 canonical suffixes hold for everything serve actually emits."""

    def test_live_serve_metric_names_are_canonical(
        self, session, model_id, test_triples
    ):
        reg = MetricsRegistry()
        app = ServeApp(session)
        with use_registry(reg):
            body = RankRequest(model=model_id, triples=test_triples).to_bytes()
            assert app.handle("POST", "/v1/rank", body)[0] == 200
            assert app.handle("POST", "/v1/rank", body)[0] == 200  # warm hit
            assert app.handle("POST", "/v1/rank", b"{broken")[0] == 400
            assert app.handle("GET", "/metrics", b"")[0] == 200
        snapshot = reg.snapshot()
        names = [
            name
            for section in ("counters", "gauges", "histograms")
            for name in snapshot[section]
            if name.startswith("serve.")
        ]
        assert "serve.requests_count" in names
        assert "serve.errors_count" in names
        assert "serve.request_seconds" in names
        for name in names:
            assert name.endswith(("_count", "_seconds")), name
