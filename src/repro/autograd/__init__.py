"""Numpy-based reverse-mode automatic differentiation.

The substrate that lets :mod:`repro.kge` train TransE, DistMult, ComplEx,
RESCAL, HolE and ConvE without torch.  Public surface:

* :class:`Tensor` — numpy array with gradient tape, :func:`no_grad`.
* :class:`SparseGrad` — row-sparse gradient for opt-in embedding tables.
* :mod:`repro.autograd.ops` — conv2d, circular correlation, dropout.
* :mod:`repro.autograd.modules` — Module/Parameter/Embedding/Linear/
  Conv2d/BatchNorm/Dropout.
* :mod:`repro.autograd.optim` — SGD/Adagrad/Adam.
"""

from .modules import (
    BatchNorm,
    Conv2d,
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
)
from .ops import circular_convolution, circular_correlation, conv2d, dropout
from .optim import SGD, Adagrad, Adam, Optimizer
from .sparse import SparseGrad
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "SparseGrad",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "Conv2d",
    "BatchNorm",
    "Dropout",
    "conv2d",
    "dropout",
    "circular_correlation",
    "circular_convolution",
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
]
