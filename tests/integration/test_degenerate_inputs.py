"""Robustness on degenerate inputs: empty and minimal graphs.

A production library must not crash on the smallest legal inputs — a KG
with two entities, one relation, one triple, or no held-out splits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import create_strategy, discover_facts
from repro.kg import GraphStatistics, KnowledgeGraph, TripleSet
from repro.kge import (
    ModelConfig,
    TrainConfig,
    create_model,
    evaluate_ranking,
    fit,
)


@pytest.fixture()
def minimal_graph() -> KnowledgeGraph:
    """Two entities, one relation, one training triple, empty splits."""
    return KnowledgeGraph.from_arrays(
        name="minimal",
        num_entities=2,
        num_relations=1,
        train=np.asarray([[0, 0, 1]]),
        valid=np.zeros((0, 3), dtype=np.int64),
        test=np.zeros((0, 3), dtype=np.int64),
    )


class TestMinimalGraph:
    def test_statistics(self, minimal_graph):
        stats = GraphStatistics(minimal_graph.train, backend="sparse")
        np.testing.assert_array_equal(stats.degree, [1, 1])
        np.testing.assert_array_equal(stats.triangles, [0, 0])
        assert stats.average_clustering == 0.0

    def test_training_runs(self, minimal_graph):
        result = fit(
            minimal_graph,
            ModelConfig("distmult", dim=4, seed=0),
            TrainConfig(job="kvsall", loss="bce", epochs=2, batch_size=4, lr=0.1),
        )
        assert len(result.losses) == 2

    def test_evaluation_on_empty_split_is_zero(self, minimal_graph):
        model = create_model("distmult", num_entities=2, num_relations=1, dim=4)
        metrics = evaluate_ranking(model, minimal_graph, split="test")
        assert metrics.mrr == 0.0
        assert metrics.ranks.size == 0

    def test_discovery_runs(self, minimal_graph):
        model = create_model("distmult", num_entities=2, num_relations=1, dim=4)
        model.eval()
        result = discover_facts(
            model, minimal_graph, strategy="entity_frequency",
            top_n=2, max_candidates=4, seed=0,
        )
        # The only non-self-loop candidates are (0,0,1) [seen] and (1,0,0).
        assert result.num_facts <= 1
        if result.num_facts:
            np.testing.assert_array_equal(result.facts[0], [1, 0, 0])

    def test_every_strategy_prepares(self, minimal_graph):
        stats = GraphStatistics(minimal_graph.train, backend="sparse")
        for name in (
            "uniform_random", "entity_frequency", "graph_degree",
            "cluster_coefficient", "cluster_triangles", "cluster_squares",
            "relation_frequency", "pagerank", "inverse_frequency",
        ):
            strategy = create_strategy(name)
            strategy.prepare(stats)
            pool, probs = strategy.distribution("subject")
            assert probs.sum() == pytest.approx(1.0)


class TestEmptyTrainingSplit:
    @pytest.fixture()
    def empty_graph(self) -> KnowledgeGraph:
        return KnowledgeGraph.from_arrays(
            name="empty",
            num_entities=3,
            num_relations=1,
            train=np.zeros((0, 3), dtype=np.int64),
            valid=np.zeros((0, 3), dtype=np.int64),
            test=np.zeros((0, 3), dtype=np.int64),
        )

    def test_statistics_all_zero(self, empty_graph):
        stats = GraphStatistics(empty_graph.train, backend="sparse")
        np.testing.assert_array_equal(stats.degree, [0, 0, 0])
        assert stats.average_clustering == 0.0

    def test_discovery_finds_nothing(self, empty_graph):
        model = create_model("distmult", num_entities=3, num_relations=1, dim=4)
        model.eval()
        result = discover_facts(
            model, empty_graph, strategy="uniform_random",
            top_n=3, max_candidates=4, seed=0,
        )
        # No relations exist in the training split: nothing to iterate.
        assert result.num_facts == 0

    def test_complement_is_everything(self, empty_graph):
        assert empty_graph.complement_size() == 9


class TestSingleEntitySides:
    def test_one_subject_one_object(self):
        """All triples share one subject and one object: pools of size 1."""
        graph = KnowledgeGraph.from_arrays(
            name="narrow",
            num_entities=4,
            num_relations=2,
            train=np.asarray([[0, 0, 1], [0, 1, 1]]),
            valid=np.zeros((0, 3), dtype=np.int64),
            test=np.zeros((0, 3), dtype=np.int64),
        )
        model = create_model("distmult", num_entities=4, num_relations=2, dim=4)
        model.eval()
        result = discover_facts(
            model, graph, strategy="entity_frequency",
            top_n=4, max_candidates=4, seed=0,
        )
        # Mesh of {0} × {1} per relation gives only seen triples: nothing
        # new can be generated.
        assert result.num_facts == 0


class TestSingleRelationTripleSet:
    def test_by_relation_of_unused_relation_is_empty(self):
        ts = TripleSet(np.asarray([[0, 0, 1]]), 3, 2)
        assert ts.by_relation(1).shape == (0, 3)

    def test_rank_all_candidates_single_entity_pool(self):
        from repro.kge.evaluation import compute_ranks

        model = create_model("distmult", num_entities=2, num_relations=1, dim=4)
        model.eval()
        ranks = compute_ranks(model, np.asarray([[0, 0, 1]]))
        assert ranks[0] in (1.0, 1.5, 2.0)
