"""repro.obs — zero-dependency observability: metrics, spans, exporters.

The subsystem has four small parts:

- :mod:`repro.obs.registry` — thread-safe :class:`MetricsRegistry` of
  counters/gauges/histograms plus the aggregated span tree, with a
  process-global active registry defaulting to a no-op
  :class:`NullRegistry` (enable with :func:`enable_observability` or
  scope with :func:`use_registry`).
- :mod:`repro.obs.spans` — the nestable :func:`span` context-manager
  timer (always measures wall time; records only when enabled) and the
  :class:`Stopwatch` for budget loops.
- :mod:`repro.obs.exporters` — snapshot renderers (JSON, Prometheus
  text, human table) behind ``--metrics-out`` and ``repro obs``.
- :mod:`repro.obs.reporting` — the :class:`Reportable` result protocol
  and the deprecated-key alias machinery used by every ``summary()``.
"""

from .exporters import (
    EXPORTER_FORMATS,
    render_json,
    render_prometheus,
    render_table,
    write_snapshot,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_observability,
    enable_observability,
    get_registry,
    set_registry,
    use_registry,
)
from .reporting import DeprecatedKeyDict, Reportable, ReportableMixin, json_default
from .spans import Span, Stopwatch, flatten_spans, span, span_tree_delta

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_observability",
    "disable_observability",
    "Span",
    "span",
    "Stopwatch",
    "flatten_spans",
    "span_tree_delta",
    "render_json",
    "render_prometheus",
    "render_table",
    "write_snapshot",
    "EXPORTER_FORMATS",
    "Reportable",
    "ReportableMixin",
    "DeprecatedKeyDict",
    "json_default",
]
