"""Figure 4 — MRR of the discovery algorithm (paper §4.2.2).

One table per dataset: strategy × model, cells are the MRR of the
discovered facts against their corruptions.  Expected shape:

* ENTITY FREQUENCY and CLUSTERING TRIANGLES in the top group;
* UNIFORM RANDOM and CLUSTERING COEFFICIENT in the bottom group;
* every MRR above the theoretical floor 1 / top_n.
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_DEFAULT,
    TOP_N_DEFAULT,
    matrix_rows,
    save_and_print,
)

from repro.discovery import STRATEGY_ABBREVIATIONS, theoretical_mrr_floor
from repro.experiments import format_table, group_rows


def _strategy_mean_mrr(rows) -> dict[str, float]:
    means = {}
    for strategy, strategy_rows in group_rows(rows, "strategy").items():
        means[strategy] = float(np.mean([r.mrr for r in strategy_rows]))
    return means


def test_fig4_mrr(benchmark):
    rows = benchmark.pedantic(matrix_rows, rounds=1, iterations=1)

    sections = []
    for dataset, dataset_rows in group_rows(rows, "dataset").items():
        table_rows = []
        for strategy, strategy_rows in group_rows(dataset_rows, "strategy").items():
            row = {"strategy": STRATEGY_ABBREVIATIONS[strategy]}
            for r in strategy_rows:
                row[r.model] = round(r.mrr, 4)
            table_rows.append(row)
        sections.append(
            format_table(
                table_rows,
                title=f"Figure 4 — discovery MRR on {dataset} "
                f"(top_n={TOP_N_DEFAULT}, max_candidates={MAX_CANDIDATES_DEFAULT})",
            )
        )
    save_and_print("fig4_mrr", "\n\n".join(sections))

    # Shape check 1: nothing below the theoretical floor.
    floor = theoretical_mrr_floor(TOP_N_DEFAULT)
    assert all(r.mrr >= floor for r in rows if r.num_facts > 0)

    # Shape check 2 (§4.2.2): EF beats UR on average; the bottom two
    # strategies are UR and CC.
    means = _strategy_mean_mrr(rows)
    assert means["entity_frequency"] > means["uniform_random"]
    bottom_two = set(sorted(means, key=means.get)[:2])
    assert bottom_two == {"uniform_random", "cluster_coefficient"}

    # Shape check 3: the popularity-based strategies all beat UR.
    for strategy in ("entity_frequency", "graph_degree", "cluster_triangles"):
        assert means[strategy] > means["uniform_random"], strategy
