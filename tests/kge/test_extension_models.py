"""Formula and property tests for the extension models (RotatE, SimplE,
TuckER)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import create_model

RNG = np.random.default_rng(21)


def _triples(batch: int, n: int, k: int):
    return (
        RNG.integers(0, n, batch),
        RNG.integers(0, k, batch),
        RNG.integers(0, n, batch),
    )


class TestRotatE:
    def test_requires_even_dim(self):
        with pytest.raises(ValueError):
            create_model("rotate", num_entities=4, num_relations=1, dim=7)

    def test_formula(self):
        m = create_model("rotate", num_entities=9, num_relations=3, dim=8)
        s, r, o = _triples(5, 9, 3)
        ent, phases = m.entity_matrix(), m.relation_matrix()
        h = 4
        s_c = ent[s, :h] + 1j * ent[s, h:]
        o_c = ent[o, :h] + 1j * ent[o, h:]
        rotation = np.exp(1j * phases[r])
        expected = -np.sqrt(np.abs(s_c * rotation - o_c) ** 2 + 1e-12).sum(axis=1)
        np.testing.assert_allclose(
            m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-9
        )

    def test_rotation_preserves_modulus(self):
        """A relation with zero phase is the identity: (s, r₀, s) scores 0."""
        m = create_model("rotate", num_entities=6, num_relations=2, dim=8)
        m.relation_embeddings.weight.data[0] = 0.0
        ids = np.arange(6)
        scores = m.scores_spo(np.stack([ids, np.zeros(6, np.int64), ids], 1))
        np.testing.assert_allclose(scores, 0.0, atol=1e-5)

    def test_inverse_rotation_score_po(self):
        """score_po must agree with score_spo (the inverse-rotation trick)."""
        m = create_model("rotate", num_entities=7, num_relations=2, dim=8)
        r = np.asarray([0, 1])
        o = np.asarray([3, 5])
        rows = m.scores_po(r, o)
        for s in range(7):
            direct = m.scores_spo(np.stack([np.full(2, s), r, o], 1))
            np.testing.assert_allclose(rows[:, s], direct, rtol=1e-8)

    def test_phases_initialised_in_circle(self):
        m = create_model("rotate", num_entities=5, num_relations=4, dim=8)
        assert np.all(np.abs(m.relation_matrix()) <= np.pi)

    def test_models_antisymmetry(self):
        m = create_model("rotate", num_entities=9, num_relations=3, dim=8)
        s, r, o = _triples(8, 9, 3)
        forward = m.scores_spo(np.stack([s, r, o], 1))
        backward = m.scores_spo(np.stack([o, r, s], 1))
        assert not np.allclose(forward, backward)


class TestSimplE:
    def test_requires_even_dim(self):
        with pytest.raises(ValueError):
            create_model("simple", num_entities=4, num_relations=1, dim=5)

    def test_formula(self):
        m = create_model("simple", num_entities=9, num_relations=3, dim=8)
        s, r, o = _triples(5, 9, 3)
        ent, rel = m.entity_matrix(), m.relation_matrix()
        h = 4
        forward = np.einsum("bd,bd,bd->b", ent[s, :h], rel[r, :h], ent[o, h:])
        backward = np.einsum("bd,bd,bd->b", ent[o, :h], rel[r, h:], ent[s, h:])
        expected = 0.5 * (forward + backward)
        np.testing.assert_allclose(
            m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-10
        )

    def test_can_be_asymmetric(self):
        m = create_model("simple", num_entities=9, num_relations=3, dim=8)
        s, r, o = _triples(8, 9, 3)
        assert not np.allclose(
            m.scores_spo(np.stack([s, r, o], 1)),
            m.scores_spo(np.stack([o, r, s], 1)),
        )


class TestTuckER:
    def test_formula(self):
        m = create_model("tucker", num_entities=9, num_relations=3, dim=5)
        s, r, o = _triples(5, 9, 3)
        ent, rel = m.entity_matrix(), m.relation_matrix()
        core = m.core.data
        expected = np.einsum(
            "br,rij,bi,bj->b", rel[r], core, ent[s], ent[o]
        )
        np.testing.assert_allclose(
            m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-10
        )

    def test_custom_relation_dim(self):
        m = create_model(
            "tucker", num_entities=6, num_relations=2, dim=4, relation_dim=3
        )
        assert m.relation_matrix().shape == (2, 3)
        assert m.core.shape == (3, 4, 4)

    def test_core_is_trainable(self):
        m = create_model("tucker", num_entities=6, num_relations=2, dim=4)
        assert any(p is m.core for p in m.parameters())

    def test_subsumes_rescal_with_identity_core(self):
        """With a one-hot relation basis and relation_dim = K, TuckER's
        mixing matrix equals the slice of the core — i.e. it can represent
        any RESCAL model."""
        m = create_model(
            "tucker", num_entities=5, num_relations=2, dim=3, relation_dim=2
        )
        m.relation_embeddings.weight.data[...] = np.eye(2)
        s, r, o = _triples(6, 5, 2)
        ent = m.entity_matrix()
        expected = np.einsum("bij,bi,bj->b", m.core.data[r], ent[s], ent[o])
        np.testing.assert_allclose(
            m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-10
        )
