"""Model checkpointing: save/load trained models to a single ``.npz``.

The archive stores the parameter arrays plus a JSON header describing how
to rebuild the model (registry name, sizes, seed and model-specific
constructor options from :meth:`KGEModel.config_options`).

Durability: saves are atomic (write-temp → fsync → rename via
:mod:`repro.resilience.atomic`), and the header embeds a sha256 over the
parameter content.  :func:`load_model` re-verifies that digest and raises
:class:`~repro.resilience.CheckpointCorruptError` on any mismatch or
unreadable archive, so a truncated or bit-flipped checkpoint is detected
at read time instead of producing garbage embeddings.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from ..resilience import CheckpointCorruptError, atomic_savez, digest_arrays
from .base import KGEModel, create_model

__all__ = ["checkpoint_header", "save_model", "load_model"]

_HEADER_KEY = "__repro_header__"


def checkpoint_header(path: Path | str) -> dict:
    """Read just the JSON header of a checkpoint, without the parameters.

    The serve-layer model registry derives its config digest from this,
    so cataloguing hundreds of checkpoints stays cheap: only the small
    header member of the ``.npz`` archive is decompressed.
    """
    path = Path(path)
    try:
        with np.load(path) as stored:
            if _HEADER_KEY not in stored.files:
                raise ValueError(
                    f"{path} is not a repro model checkpoint (missing header)"
                )
            header_bytes = bytes(stored[_HEADER_KEY].tobytes())
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError) as error:
        raise CheckpointCorruptError(
            f"unreadable checkpoint {path}: {error}"
        ) from error
    try:
        return json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            f"corrupt checkpoint header in {path}: {error}"
        ) from error


def save_model(model: KGEModel, path: Path | str, optimizer=None) -> None:
    """Serialise a model (architecture + parameters) to ``path``.

    The file is a standard ``.npz`` archive and can be inspected with
    ``numpy.load``.  The write is atomic: readers never observe a
    partially-written checkpoint, and a crash mid-save leaves any
    previous checkpoint at ``path`` intact.

    When checkpointing mid-training with a lazy sparse optimizer (SGD
    with momentum, Adam on row-sparse grads), pass the ``optimizer`` so
    deferred row updates are flushed before the parameters are read.
    """
    if optimizer is not None:
        optimizer.flush()
    payload = model.state_dict()
    if _HEADER_KEY in payload:
        raise ValueError(f"parameter name collides with header key {_HEADER_KEY!r}")
    header = {
        "model": model.model_name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
        "seed": model.seed,
        "options": model.config_options(),
        "checksum": digest_arrays(payload),
    }
    payload[_HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    atomic_savez(Path(path), **payload)


def load_model(path: Path | str, verify: bool = True) -> KGEModel:
    """Rebuild a model saved with :func:`save_model` (evaluation mode).

    Raises :class:`~repro.resilience.CheckpointCorruptError` when the
    archive is unreadable (truncated zip, torn write) or when the stored
    parameter content no longer matches the header checksum; plain
    :class:`ValueError` when the file is a readable ``.npz`` that simply
    is not a repro checkpoint.  ``verify=False`` skips the digest check
    (trusted input on a hot path).
    """
    path = Path(path)
    try:
        with np.load(path) as stored:
            if _HEADER_KEY not in stored.files:
                raise ValueError(
                    f"{path} is not a repro model checkpoint (missing header)"
                )
            # Materialise everything inside the try: zip CRC errors
            # surface lazily, on member access.
            header_bytes = bytes(stored[_HEADER_KEY].tobytes())
            state = {key: stored[key] for key in stored.files if key != _HEADER_KEY}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError) as error:
        raise CheckpointCorruptError(
            f"unreadable checkpoint {path}: {error}"
        ) from error
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointCorruptError(
            f"corrupt checkpoint header in {path}: {error}"
        ) from error

    expected = header.get("checksum")  # absent in pre-checksum checkpoints
    if verify and expected is not None:
        actual = digest_arrays(state)
        if actual != expected:
            raise CheckpointCorruptError(
                f"checksum mismatch in {path}: header says {expected[:12]}…, "
                f"content hashes to {actual[:12]}…"
            )

    model = create_model(
        header["model"],
        num_entities=header["num_entities"],
        num_relations=header["num_relations"],
        dim=header["dim"],
        seed=header["seed"],
        **header["options"],
    )
    model.load_state_dict(state)
    model.eval()
    return model
