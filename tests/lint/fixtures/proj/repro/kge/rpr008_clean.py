"""Fixture: sparse-aware gradient reads (RPR008-clean).

Each helper either dispatches on ``SparseGrad``, settles optimizer state
with ``flush()``, or only tests ``.grad`` against ``None`` — none of
which assume a dense array.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.sparse import SparseGrad

__all__ = ["grad_norm", "settled_grad", "has_grad"]


def grad_norm(param) -> float:
    grad = param.grad
    if isinstance(grad, SparseGrad):
        return float(np.sqrt(grad.norm_squared()))
    return float(np.sqrt(np.sum(np.square(grad))))


def settled_grad(optimizer, param) -> np.ndarray:
    optimizer.flush()
    grad = param.grad
    if isinstance(grad, SparseGrad):
        return grad.to_dense()
    return np.array(grad, dtype=np.float64)


def has_grad(param) -> bool:
    return param.grad is not None
