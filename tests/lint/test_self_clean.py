"""Tier-1 gate: the repository's own sources must lint clean.

This is the test that makes the analyzer's invariants binding — RNG
determinism, tape hygiene, API consistency, and the whole-program
determinism/concurrency/exception contracts hold on every change or the
suite fails with the exact ``path:line:col`` of the violation.  The
same run is also rendered as SARIF so CI consumers always get a
schema-shaped report, clean or not.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import LintEngine, load_config, render_sarif
from repro.lint.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_project_config_declares_scan_roots():
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    assert config.paths == (str(REPO_ROOT / "src" / "repro"),)


def test_source_tree_is_lint_clean():
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    engine = LintEngine(config)
    run = engine.run(list(config.paths))
    assert run.findings == [], "unsuppressed lint findings:\n" + "\n".join(
        finding.render() for finding in run.findings
    )

    # Both passes actually ran over the whole tree.
    assert run.checked_files > 50

    # The SARIF report of the gate run stays structurally valid: one
    # run, the full live rule table, zero results.
    sarif = json.loads(
        render_sarif(run.findings, checked_files=run.checked_files)
    )
    assert sarif["version"] == "2.1.0"
    (sarif_run,) = sarif["runs"]
    assert sarif_run["results"] == []
    assert sarif_run["properties"]["checkedFiles"] == run.checked_files
    driver = sarif_run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert [rule["id"] for rule in driver["rules"]] == [
        rule.rule_id for rule in all_rules()
    ]
