"""Nestable span timers and the sanctioned stopwatch.

``span("train.epoch")`` is a context manager that always measures wall
time (``.wall_seconds`` is valid whether or not observability is on — the
result objects' ``*_seconds`` fields are fed from it), but only records
into the active registry's trace tree when that registry is enabled.  The
disabled path is two ``perf_counter()`` calls and an attribute check,
which is what keeps the instrumentation overhead under the benchmarked
1% budget (``benchmarks/bench_obs_overhead.py``).

Nesting is tracked per thread: a span opened on a worker thread (e.g.
``rank.score`` inside a ``workers=N`` ranking pool) roots its own subtree
rather than guessing a parent from another thread's stack.
"""

from __future__ import annotations

import time
from typing import Any

from .registry import MetricsRegistry, get_registry

__all__ = ["Span", "span", "Stopwatch", "flatten_spans", "span_tree_delta"]


class Span:
    """A single timed section; use via the :func:`span` factory.

    After ``__exit__``, ``wall_seconds`` and (when recording)``cpu_seconds``
    hold the measured durations; they stay 0.0 while the span is open.
    """

    __slots__ = ("name", "wall_seconds", "cpu_seconds", "_registry", "_recording", "_t0", "_c0")

    def __init__(self, name: str, registry: MetricsRegistry | None = None) -> None:
        self.name = name
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._registry = registry
        self._recording = False

    def __enter__(self) -> "Span":
        registry = self._registry if self._registry is not None else get_registry()
        self._registry = registry
        self._recording = registry.enabled
        if self._recording:
            registry._push_span(self.name)
            self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._t0
        if self._recording:
            self.cpu_seconds = time.process_time() - self._c0
            self._registry._pop_span(self.name, self.wall_seconds, self.cpu_seconds)
        return False


def span(name: str, registry: MetricsRegistry | None = None) -> Span:
    """Open a named timed section (see module docstring for semantics)."""
    return Span(name, registry)


class Stopwatch:
    """Monotonic elapsed-time reader for budget/deadline loops.

    The anytime-discovery budget loop needs *the time so far*, not a
    closed section, so a context manager is the wrong shape.  This is the
    one sanctioned raw-clock wrapper; ``repro.lint`` RPR009 flags direct
    ``time.perf_counter()`` use in the instrumented packages.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def restart(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._t0


def flatten_spans(spans: dict[str, Any], _prefix: str = "") -> dict[str, dict[str, Any]]:
    """Flatten a snapshot's nested span tree into ``{"a/b": {...}}`` rows.

    Input is the ``snapshot()["spans"]`` mapping; output maps the
    slash-joined path to ``{count, wall_seconds, cpu_seconds}`` and is
    ordered parent-before-child.
    """
    flat: dict[str, dict[str, Any]] = {}
    for name, node in spans.items():
        path = f"{_prefix}/{name}" if _prefix else name
        flat[path] = {
            "count": node["count"],
            "wall_seconds": node["wall_seconds"],
            "cpu_seconds": node["cpu_seconds"],
        }
        flat.update(flatten_spans(node.get("children", {}), path))
    return flat


def span_tree_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Subtract two snapshot span trees (``after - before``), pruning zeros.

    Both arguments are ``snapshot()["spans"]`` mappings from the *same*
    registry; the result isolates what one section of work recorded, e.g.
    a single campaign cell out of a whole ``run_matrix``.
    """
    delta: dict[str, Any] = {}
    for name, node in after.items():
        prev = before.get(name, {})
        children = span_tree_delta(prev.get("children", {}), node.get("children", {}))
        count = node["count"] - prev.get("count", 0)
        if count == 0 and not children:
            continue
        delta[name] = {
            "count": count,
            "wall_seconds": node["wall_seconds"] - prev.get("wall_seconds", 0.0),
            "cpu_seconds": node["cpu_seconds"] - prev.get("cpu_seconds", 0.0),
            "children": children,
        }
    return delta
