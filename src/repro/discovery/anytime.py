"""Anytime fact discovery under a wall-clock budget.

Algorithm 1 spends an equal candidate budget on every relation, but
relations differ wildly in yield: on skewed KGs a few relations produce
most of the accepted facts.  When discovery runs under a *time budget*
(the practical regime — the paper's full runs took hours per
configuration), the scheduling of relations becomes an
exploration/exploitation problem of its own.

:func:`anytime_discover` treats each relation as an arm of a multi-armed
bandit.  One *pull* = one mesh-grid generation round for that relation
plus ranking; the *reward* is the acceptance rate (facts found per
candidate).  Two schedulers are provided:

* ``"round_robin"`` — the fair baseline (Algorithm 1's implicit order);
* ``"ucb"`` — UCB1 (Auer et al. 2002): pull the relation maximising
  ``mean_reward + c·√(2 ln N / n_r)``.

The result is *anytime*: stopping at any point yields the best facts
found so far, and more budget monotonically extends the set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kg.stats import OBJECT, SUBJECT, GraphStatistics
from ..kg.triples import encode_keys
from ..kge.base import KGEModel
from ..kge.ranking import RANKING_STATS_ALIASES, RankingEngine
from ..obs import ReportableMixin, Stopwatch, get_registry, span
from .strategies import SamplingStrategy, create_strategy

__all__ = ["AnytimeResult", "anytime_discover"]

_SCHEDULERS = ("round_robin", "ucb")


@dataclass
class AnytimeResult(ReportableMixin):
    """Facts accumulated within the budget plus per-relation accounting."""

    facts: np.ndarray
    ranks: np.ndarray
    scheduler: str
    budget_seconds: float
    elapsed_seconds: float
    pulls: dict[int, int] = field(default_factory=dict)
    rewards: dict[int, float] = field(default_factory=dict)
    exhausted: dict[int, bool] = field(default_factory=dict)
    ranking_stats: dict[str, float] = field(default_factory=dict)

    @property
    def num_facts(self) -> int:
        return len(self.facts)

    def mrr(self) -> float:
        if self.ranks.size == 0:
            return 0.0
        return float((1.0 / self.ranks).mean())

    def facts_per_hour(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.num_facts / (self.elapsed_seconds / 3600.0)

    def summary(self) -> dict[str, float]:
        """Flat overview under canonical ``*_seconds``/``*_count`` keys."""
        out = {
            "scheduler": self.scheduler,
            "facts_count": self.num_facts,
            "mrr": self.mrr(),
            "budget_seconds": self.budget_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "pulls_count": int(sum(self.pulls.values())),
            "exhausted_count": int(sum(self.exhausted.values())),
            "efficiency_facts_per_hour": self.facts_per_hour(),
        }
        for legacy, value in self.ranking_stats.items():
            out[RANKING_STATS_ALIASES.get(legacy, legacy)] = value
        return out


class _RelationArm:
    """Bandit bookkeeping for one relation."""

    def __init__(self, relation: int) -> None:
        self.relation = relation
        self.pulls = 0
        self.total_reward = 0.0
        self.seen_keys = np.empty(0, dtype=np.int64)
        self.exhausted = False

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.pulls if self.pulls else 0.0

    def ucb_score(self, total_pulls: int, exploration: float) -> float:
        if self.pulls == 0:
            return float("inf")
        bonus = exploration * np.sqrt(2.0 * np.log(max(total_pulls, 1)) / self.pulls)
        return self.mean_reward + bonus


def anytime_discover(
    model: KGEModel,
    graph: KnowledgeGraph,
    budget_seconds: float,
    strategy: str | SamplingStrategy = "entity_frequency",
    scheduler: str = "ucb",
    top_n: int = 50,
    batch_candidates: int = 100,
    exploration: float = 1.0,
    seed: int = 0,
    stats: GraphStatistics | None = None,
    max_pulls: int = 10_000,
    engine: RankingEngine | None = None,
    workers: int = 1,
    cache_size: int = 512,
) -> AnytimeResult:
    """Discover facts until the wall-clock budget is exhausted.

    Parameters
    ----------
    budget_seconds:
        Wall-clock budget; the loop stops at the first pull boundary after
        it is spent.
    scheduler:
        ``"ucb"`` (bandit) or ``"round_robin"`` (fair baseline).
    batch_candidates:
        Candidate budget of a single pull (one mesh-grid round).
    exploration:
        UCB exploration constant ``c``; ignored by round-robin.
    max_pulls:
        Hard safety cap on the number of pulls.
    engine:
        A shared :class:`~repro.kge.ranking.RankingEngine`; built from
        ``workers`` / ``cache_size`` when omitted.  The score-row cache
        matters here: successive pulls of the same relation re-sample
        popular subjects, and their ``(s, r)`` rows are served from the
        cache instead of being re-scored.
    workers:
        Thread-pool width when ``engine`` is omitted.
    cache_size:
        LRU score-row cache entries when ``engine`` is omitted.
    """
    if scheduler not in _SCHEDULERS:
        raise ValueError(f"scheduler must be one of {_SCHEDULERS}, got {scheduler!r}")
    if budget_seconds <= 0:
        raise ValueError("budget_seconds must be positive")
    if batch_candidates < 1:
        raise ValueError("batch_candidates must be >= 1")

    rng = np.random.default_rng(seed)
    train = graph.train
    if stats is None:
        stats = GraphStatistics(train)
    if isinstance(strategy, str):
        strategy = create_strategy(strategy)
    strategy.prepare(stats)

    relations = [int(r) for r in train.unique_relations()]
    arms = {r: _RelationArm(r) for r in relations}
    sample_size = int(np.sqrt(batch_candidates)) + 2
    if engine is None:
        engine = RankingEngine(cache_size=cache_size, workers=workers)
    stats_baseline = engine.stats.as_dict()

    all_facts: list[np.ndarray] = []
    all_ranks: list[np.ndarray] = []
    registry = get_registry()
    watch = Stopwatch()
    total_pulls = 0
    rr_cursor = 0

    with span("discover"):
        while watch.elapsed_seconds < budget_seconds and total_pulls < max_pulls:
            active = [arm for arm in arms.values() if not arm.exhausted]
            if not active:
                break
            if scheduler == "round_robin":
                arm = active[rr_cursor % len(active)]
                rr_cursor += 1
            else:
                arm = max(
                    active, key=lambda a: a.ucb_score(total_pulls, exploration)
                )
            total_pulls += 1
            registry.counter("discover.pulls_count").inc()

            with span("discover.generate"):
                subjects = strategy.sample(
                    SUBJECT, sample_size, rng, relation=arm.relation
                )
                objects = strategy.sample(
                    OBJECT, sample_size, rng, relation=arm.relation
                )
                s_grid, o_grid = np.meshgrid(subjects, objects, indexing="ij")
                candidates = np.stack(
                    [
                        s_grid.ravel(),
                        np.full(s_grid.size, arm.relation, dtype=np.int64),
                        o_grid.ravel(),
                    ],
                    axis=1,
                )
                candidates = candidates[candidates[:, 0] != candidates[:, 2]]
                candidates = candidates[~train.contains(candidates)]
                # Vectorised cross-pull dedup against the arm's sorted key
                # array (same semantics as the retired per-key Python loop).
                keys = encode_keys(candidates, train.num_entities, train.num_relations)
                fresh = ~np.isin(keys, arm.seen_keys)
                candidates = candidates[fresh][:batch_candidates]
                arm.seen_keys = np.union1d(
                    arm.seen_keys, keys[fresh][:batch_candidates]
                )
            registry.counter("discover.candidates_count").inc(len(candidates))

            if len(candidates) == 0:
                # Nothing new to try for this relation: retire the arm.
                arm.pulls += 1
                arm.exhausted = True
                continue

            with span("rank"):
                with no_grad():
                    ranks = engine.compute_ranks(
                        model, candidates, filter_triples=train, side="object"
                    )
            keep = ranks <= top_n
            accepted = int(keep.sum())
            arm.pulls += 1
            arm.total_reward += accepted / len(candidates)
            registry.counter("discover.facts_count").inc(accepted)
            if accepted:
                all_facts.append(candidates[keep])
                all_ranks.append(ranks[keep])

    elapsed = watch.elapsed_seconds
    facts = (
        np.concatenate(all_facts, axis=0)
        if all_facts
        else np.zeros((0, 3), dtype=np.int64)
    )
    ranks = np.concatenate(all_ranks) if all_ranks else np.zeros(0)
    after = engine.stats.as_dict()
    return AnytimeResult(
        facts=facts,
        ranks=ranks,
        scheduler=scheduler,
        budget_seconds=budget_seconds,
        elapsed_seconds=elapsed,
        pulls={r: arms[r].pulls for r in relations},
        rewards={r: arms[r].mean_reward for r in relations},
        exhausted={r: arms[r].exhausted for r in relations},
        ranking_stats={
            key: after[key] - stats_baseline.get(key, 0) for key in after
        },
    )
