"""Tests for the compound ops: conv2d, circular correlation, dropout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    circular_convolution,
    circular_correlation,
    conv2d,
    dropout,
)

from ..helpers import check_gradients

RNG = np.random.default_rng(7)


def naive_circular_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    d = a.shape[-1]
    out = np.zeros_like(a)
    for k in range(d):
        for i in range(d):
            out[..., k] += a[..., i] * b[..., (i + k) % d]
    return out


def naive_circular_convolution(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    d = a.shape[-1]
    out = np.zeros_like(a)
    for k in range(d):
        for i in range(d):
            out[..., k] += a[..., i] * b[..., (k - i) % d]
    return out


def naive_conv2d(x: np.ndarray, w: np.ndarray, b: np.ndarray | None) -> np.ndarray:
    batch, _, height, width = x.shape
    out_c, in_c, kh, kw = w.shape
    out = np.zeros((batch, out_c, height - kh + 1, width - kw + 1))
    for n in range(batch):
        for c in range(out_c):
            for i in range(out.shape[2]):
                for j in range(out.shape[3]):
                    out[n, c, i, j] = np.sum(
                        x[n, :, i : i + kh, j : j + kw] * w[c]
                    )
            if b is not None:
                out[n, c] += b[c]
    return out


class TestCircularOps:
    def test_correlation_matches_naive(self):
        a = RNG.normal(size=(3, 8))
        b = RNG.normal(size=(3, 8))
        out = circular_correlation(Tensor(a), Tensor(b)).data
        np.testing.assert_allclose(out, naive_circular_correlation(a, b), atol=1e-10)

    def test_convolution_matches_naive(self):
        a = RNG.normal(size=(2, 6))
        b = RNG.normal(size=(2, 6))
        out = circular_convolution(Tensor(a), Tensor(b)).data
        np.testing.assert_allclose(out, naive_circular_convolution(a, b), atol=1e-10)

    def test_correlation_gradient_wrt_a(self):
        b = RNG.normal(size=(2, 5))
        check_gradients(
            lambda x: circular_correlation(x, Tensor(b)), RNG.normal(size=(2, 5))
        )

    def test_correlation_gradient_wrt_b(self):
        a = RNG.normal(size=(2, 5))
        check_gradients(
            lambda x: circular_correlation(Tensor(a), x), RNG.normal(size=(2, 5))
        )

    def test_convolution_gradient_wrt_a(self):
        b = RNG.normal(size=(2, 5))
        check_gradients(
            lambda x: circular_convolution(x, Tensor(b)), RNG.normal(size=(2, 5))
        )

    def test_convolution_gradient_wrt_b(self):
        a = RNG.normal(size=(2, 5))
        check_gradients(
            lambda x: circular_convolution(Tensor(a), x), RNG.normal(size=(2, 5))
        )

    def test_hole_identity_score_equals_convolution_form(self):
        """rᵀ(s ⋆ o) == oᵀ(s ∗ r) — the identity behind HolE's score_sp."""
        s = RNG.normal(size=(4, 8))
        r = RNG.normal(size=(4, 8))
        o = RNG.normal(size=(4, 8))
        lhs = (r * naive_circular_correlation(s, o)).sum(axis=1)
        rhs = (o * naive_circular_convolution(s, r)).sum(axis=1)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_hole_identity_subject_form(self):
        """rᵀ(s ⋆ o) == sᵀ(r ⋆ o) — the identity behind HolE's score_po."""
        s = RNG.normal(size=(4, 8))
        r = RNG.normal(size=(4, 8))
        o = RNG.normal(size=(4, 8))
        lhs = (r * naive_circular_correlation(s, o)).sum(axis=1)
        rhs = (s * naive_circular_correlation(r, o)).sum(axis=1)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)


class TestConv2d:
    def test_forward_matches_naive(self):
        x = RNG.normal(size=(2, 3, 6, 5))
        w = RNG.normal(size=(4, 3, 3, 3))
        b = RNG.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, naive_conv2d(x, w, b), atol=1e-10)

    def test_forward_without_bias(self):
        x = RNG.normal(size=(1, 1, 4, 4))
        w = RNG.normal(size=(2, 1, 2, 2))
        out = conv2d(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, naive_conv2d(x, w, None), atol=1e-10)

    def test_output_shape(self):
        x = Tensor(np.zeros((3, 2, 10, 8)))
        w = Tensor(np.zeros((5, 2, 3, 3)))
        assert conv2d(x, w).shape == (3, 5, 8, 6)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 2, 2))))

    def test_gradient_wrt_input(self):
        w = RNG.normal(size=(2, 1, 2, 2))
        check_gradients(
            lambda x: conv2d(x, Tensor(w)), RNG.normal(size=(2, 1, 4, 4)),
            rtol=1e-3,
        )

    def test_gradient_wrt_weight(self):
        x = RNG.normal(size=(2, 2, 4, 4))
        check_gradients(
            lambda w: conv2d(Tensor(x), w), RNG.normal(size=(3, 2, 2, 2)),
            rtol=1e-3,
        )

    def test_gradient_wrt_bias(self):
        x = RNG.normal(size=(2, 1, 3, 3))
        w = RNG.normal(size=(2, 1, 2, 2))
        check_gradients(
            lambda b: conv2d(Tensor(x), Tensor(w), b), RNG.normal(size=(2,)),
            rtol=1e-3,
        )


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(RNG.normal(size=(5, 5)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_zero_rate_is_identity(self):
        x = Tensor(RNG.normal(size=(5,)))
        out = dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_array_equal(out.data, x.data)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, np.random.default_rng(0), training=True)

    def test_survivors_are_rescaled(self):
        x = Tensor(np.ones(10_000))
        out = dropout(x, 0.4, np.random.default_rng(0), training=True)
        surviving = out.data[out.data > 0]
        np.testing.assert_allclose(surviving, 1.0 / 0.6)
        # Expected value is preserved approximately.
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_gradient_masks_match_forward(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = dropout(x, 0.5, np.random.default_rng(3), training=True)
        out.sum().backward()
        dropped = out.data == 0
        np.testing.assert_array_equal(x.grad[dropped], 0.0)
        np.testing.assert_allclose(x.grad[~dropped], 2.0)
