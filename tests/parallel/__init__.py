"""Tests for the repro.parallel multiprocess execution fabric."""
