"""Command-line front-end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 — clean, 1 — findings reported, 2 — usage or config error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import LintConfig, load_config
from .engine import LintEngine
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis for the repro codebase: RNG "
            "determinism, autodiff-tape hygiene, and API consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse "
        "(default: [tool.repro-lint].paths, else the current directory)",
    )
    parser.add_argument(
        "-f", "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker threads (default: one per file up to the CPU count)",
    )
    parser.add_argument(
        "--enable", action="append", default=None, metavar="RPRxxx",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--disable", action="append", default=None, metavar="RPRxxx",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="PATTERN",
        help="fnmatch pattern of posix paths to skip (repeatable)",
    )
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest above the scan root)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.repro-lint] entirely",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _split_ids(values: list[str] | None) -> tuple[str, ...]:
    if not values:
        return ()
    return tuple(
        part.strip() for value in values for part in value.split(",") if part.strip()
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:32s} {rule.description}")
        return 0

    try:
        if args.no_config:
            config = LintConfig()
        else:
            start = Path(args.paths[0]) if args.paths else Path.cwd()
            config = load_config(pyproject=args.config, start=start)
        config = config.merged_with_cli(
            enable=_split_ids(args.enable),
            disable=_split_ids(args.disable),
            exclude=tuple(args.exclude or ()),
        )
        engine = LintEngine(config)
        paths = args.paths or list(config.paths) or ["."]
        files = engine.collect_files(paths)
        findings = engine.lint_paths(paths, jobs=args.jobs)
    except (ValueError, FileNotFoundError) as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, checked_files=len(files)))
    return 1 if findings else 0
