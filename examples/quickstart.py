"""Quickstart: train a KGE model and discover missing facts.

Runs the full pipeline of the paper on the FB15K-237 replica in under a
minute:

1. load a benchmark replica,
2. train a DistMult embedding model,
3. evaluate it with the standard link-prediction protocol,
4. run the fact-discovery algorithm (Algorithm 1) with ENTITY FREQUENCY
   sampling,
5. print the most plausible newly discovered facts.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import discover_facts, evaluate_ranking, fit, load_dataset
from repro.kge import ModelConfig, TrainConfig


def main() -> None:
    print("1) loading dataset replica...")
    graph = load_dataset("fb15k237-like")
    print(f"   {graph}")
    print(f"   complement graph size: {graph.complement_size():,} candidate triples")

    print("2) training DistMult...")
    result = fit(
        graph,
        ModelConfig("distmult", dim=32, seed=0),
        TrainConfig(
            job="kvsall",
            loss="bce",
            epochs=60,
            batch_size=128,
            lr=0.05,
            label_smoothing=0.1,
        ),
    )
    model = result.model
    print(f"   final training loss: {result.losses[-1]:.4f}")

    print("3) link-prediction evaluation (object-side, filtered)...")
    metrics = evaluate_ranking(model, graph, split="test")
    print(
        f"   test MRR = {metrics.mrr:.3f}, "
        f"Hits@10 = {metrics.hits[10]:.3f}, "
        f"mean rank = {metrics.mean_rank:.1f}"
    )

    print("4) discovering new facts (ENTITY FREQUENCY sampling)...")
    discovery = discover_facts(
        model,
        graph,
        strategy="entity_frequency",
        top_n=50,
        max_candidates=500,
        seed=0,
    )
    print(
        f"   {discovery.num_facts} facts discovered from "
        f"{discovery.candidates_generated:,} candidates "
        f"in {discovery.runtime_seconds:.2f}s "
        f"(MRR = {discovery.mrr():.3f}, "
        f"{discovery.efficiency_facts_per_hour():,.0f} facts/hour)"
    )

    print("5) ten most plausible discoveries:")
    order = np.argsort(discovery.ranks)[:10]
    for idx in order:
        s, r, o = graph.label_triple(tuple(discovery.facts[idx]))
        print(f"   rank {discovery.ranks[idx]:4.0f}  ({s}, {r}, {o})")


if __name__ == "__main__":
    main()
