"""The six candidate-sampling strategies evaluated by the paper (§3.1.2).

Each strategy assigns a sampling probability to every entity; the
discovery algorithm draws subject and object samples from these
distributions when generating candidate triples.

=====================  ==============================================
 UNIFORM RANDOM         equal weight for every entity on each side
 ENTITY FREQUENCY       weight ∝ occurrence count on that side (Eq. 2)
 GRAPH DEGREE           weight ∝ undirected node degree (Eq. 3)
 CLUSTERING COEFFICIENT weight ∝ local clustering coefficient (Eq. 5)
 CLUSTERING TRIANGLES   weight ∝ local triangle count (Eq. 4)
 CLUSTERING SQUARES     weight ∝ squares clustering coefficient (Eq. 6)
=====================  ==============================================

UNIFORM RANDOM and ENTITY FREQUENCY are *side-aware*: an entity may have
different probabilities as a subject and as an object.  The four
graph-metric strategies are side-agnostic, exactly as the paper notes for
GRAPH DEGREE.

Beyond the paper's six, this module also registers RELATION FREQUENCY —
a relation-scoped (domain/range-aware) variant of ENTITY FREQUENCY — and
:mod:`repro.discovery.exploration` adds the exploration-oriented
strategies of the paper's §6.
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from ..kg.stats import OBJECT, SUBJECT, GraphStatistics

__all__ = [
    "SamplingStrategy",
    "UniformRandom",
    "EntityFrequency",
    "GraphDegree",
    "ClusteringCoefficient",
    "ClusteringTriangles",
    "ClusteringSquares",
    "RelationScopedFrequency",
    "available_strategies",
    "create_strategy",
    "STRATEGY_ABBREVIATIONS",
]

_REGISTRY: dict[str, Type["SamplingStrategy"]] = {}

# The paper's figures abbreviate the strategies on the x-axis; the last
# three are this repo's §6 extension strategies.
STRATEGY_ABBREVIATIONS = {
    "uniform_random": "UR",
    "entity_frequency": "EF",
    "graph_degree": "GD",
    "cluster_coefficient": "CC",
    "cluster_triangles": "CT",
    "cluster_squares": "CS",
    "relation_frequency": "RF",
    "tempered_frequency": "TF",
    "inverse_frequency": "IF",
    "pagerank": "PR",
}


def _register(name: str) -> Callable[[Type["SamplingStrategy"]], Type["SamplingStrategy"]]:
    def decorator(cls: Type["SamplingStrategy"]) -> Type["SamplingStrategy"]:
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorator


def available_strategies() -> list[str]:
    """Strategy names in the paper's presentation order."""
    return list(_REGISTRY)


def create_strategy(name: str) -> "SamplingStrategy":
    """Instantiate a sampling strategy by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        )
    return _REGISTRY[name]()


def _normalise(pool: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Restrict to positive-weight entities and normalise to a distribution.

    Falls back to the uniform distribution over the pool when every weight
    is zero (e.g. a triangle-free graph under CLUSTERING TRIANGLES).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if len(pool) == 0:
        return pool, np.zeros(0)
    positive = weights > 0
    if positive.any():
        pool = pool[positive]
        weights = weights[positive]
        return pool, weights / weights.sum()
    return pool, np.full(len(pool), 1.0 / len(pool))


class SamplingStrategy:
    """Base class: prepare once per graph, then expose per-side weights."""

    name = "base"
    #: Whether subject and object sides get distinct distributions.
    side_aware = False

    def __init__(self) -> None:
        self._distributions: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._prepared = False

    def prepare(self, stats: GraphStatistics) -> None:
        """Compute the sampling distributions from graph statistics.

        This corresponds to ``compute_weights()`` in Algorithm 1 and is
        where each strategy pays its characteristic computational cost —
        linear for frequency/degree, cubic-ish for the triangle metrics,
        and prohibitive for squares.
        """
        self._distributions = self._compute(stats)
        self._prepared = True

    def _compute(self, stats: GraphStatistics) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError

    def distribution(
        self, side: str, relation: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(entity_ids, probabilities)`` for the given side.

        ``relation`` is the relation currently being sampled for; the
        paper's six strategies ignore it (their weights are global), but
        relation-scoped extensions override this hook.
        """
        if not self._prepared:
            raise RuntimeError(f"strategy {self.name!r} used before prepare()")
        if side not in (SUBJECT, OBJECT):
            raise ValueError(f"side must be subject/object, got {side!r}")
        return self._distributions[side]

    def sample(
        self,
        side: str,
        size: int,
        rng: np.random.Generator,
        relation: int | None = None,
    ) -> np.ndarray:
        """Draw ``size`` entity ids for the given side (without replacement
        when the pool allows, mirroring AmpliGraph's sampler)."""
        pool, probs = self.distribution(side, relation=relation)
        if size >= len(pool):
            return pool.copy()
        return rng.choice(pool, size=size, replace=False, p=probs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@_register("uniform_random")
class UniformRandom(SamplingStrategy):
    """Equation 1: equal probability for every entity on each side."""

    side_aware = True

    def _compute(self, stats: GraphStatistics) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        out = {}
        for side, freq in (
            (SUBJECT, stats.subject_frequency),
            (OBJECT, stats.object_frequency),
        ):
            pool = np.flatnonzero(freq > 0)
            out[side] = _normalise(pool, np.ones(len(pool)))
        return out


@_register("entity_frequency")
class EntityFrequency(SamplingStrategy):
    """Equation 2: probability ∝ occurrence count on that side."""

    side_aware = True

    def _compute(self, stats: GraphStatistics) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        out = {}
        for side, freq in (
            (SUBJECT, stats.subject_frequency),
            (OBJECT, stats.object_frequency),
        ):
            pool = np.flatnonzero(freq > 0)
            out[side] = _normalise(pool, freq[pool].astype(np.float64))
        return out


class _SideAgnostic(SamplingStrategy):
    """Shared plumbing for strategies with one distribution for both sides."""

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        raise NotImplementedError

    def _compute(self, stats: GraphStatistics) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        weights = self._node_weights(stats)
        pool = np.arange(stats.triples.num_entities)
        dist = _normalise(pool, weights)
        return {SUBJECT: dist, OBJECT: dist}


@_register("graph_degree")
class GraphDegree(_SideAgnostic):
    """Equation 3: probability ∝ undirected degree (in + out)."""

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        return stats.degree.astype(np.float64)


@_register("cluster_coefficient")
class ClusteringCoefficient(_SideAgnostic):
    """Equation 5: probability ∝ local clustering coefficient."""

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        return stats.clustering_coefficient


@_register("cluster_triangles")
class ClusteringTriangles(_SideAgnostic):
    """Equation 4: probability ∝ local triangle count."""

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        return stats.triangles.astype(np.float64)


@_register("cluster_squares")
class ClusteringSquares(_SideAgnostic):
    """Equation 6: probability ∝ squares clustering coefficient.

    The paper measured this strategy at ~98 facts/hour (54 hours for one
    configuration) and excluded it from the main experiments; the cost
    lives in :func:`repro.kg.stats.square_clustering`.
    """

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        return stats.squares_clustering


@_register("relation_frequency")
class RelationScopedFrequency(EntityFrequency):
    """Extension: ENTITY FREQUENCY restricted to each relation's own
    domain and range.

    For relation ``r`` the subjects are sampled (frequency-weighted) from
    the entities observed as subjects *of r* and the objects from those
    observed as objects of ``r`` — domain/range-aware sampling that builds
    CHAI-style type constraints (paper §5.1) directly into the generator
    instead of filtering afterwards.  Relations unseen at preparation time
    fall back to the global frequency distributions.
    """

    side_aware = True

    def prepare(self, stats: GraphStatistics) -> None:
        super().prepare(stats)
        self._scoped: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}
        arr = stats.triples.array
        for relation in np.unique(arr[:, 1]):
            rel_triples = arr[arr[:, 1] == relation]
            for side, column in ((SUBJECT, 0), (OBJECT, 2)):
                pool, counts = np.unique(rel_triples[:, column], return_counts=True)
                self._scoped[(int(relation), side)] = _normalise(
                    pool, counts.astype(np.float64)
                )

    def distribution(
        self, side: str, relation: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if relation is not None:
            scoped = self._scoped.get((int(relation), side))
            if scoped is not None:
                return scoped
        return super().distribution(side)
