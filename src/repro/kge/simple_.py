"""SimplE (Kazemi & Poole, 2018): fully-expressive CP factorisation.

Each entity owns a *head* and a *tail* embedding; each relation owns a
forward and an inverse embedding.  The score averages the two directed
CP products::

    f(s, r, o) = ½ (⟨h_s, r, t_o⟩ + ⟨h_o, r⁻¹, t_s⟩)

Storage convention: the entity table stores ``[head | tail]`` halves of
total width ``dim``; the relation table stores ``[forward | inverse]``
halves.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["SimplE"]


@register_model("simple")
class SimplE(KGEModel):
    """CP-based model made fully expressive via inverse relations."""

    def __init__(
        self, num_entities: int, num_relations: int, dim: int, seed: int = 0
    ) -> None:
        if dim % 2 != 0:
            raise ValueError(f"SimplE needs an even dim (head/tail halves), got {dim}")
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.rank = dim // 2

    def _entity_halves(self, ids: np.ndarray) -> tuple[Tensor, Tensor]:
        emb = self.entity_embeddings(ids)
        h = self.rank
        return emb[:, :h], emb[:, h:]

    def _relation_halves(self, ids: np.ndarray) -> tuple[Tensor, Tensor]:
        emb = self.relation_embeddings(ids)
        h = self.rank
        return emb[:, :h], emb[:, h:]

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        s_head, s_tail = self._entity_halves(s)
        o_head, o_tail = self._entity_halves(o)
        fwd, inv = self._relation_halves(r)
        forward = (s_head * fwd * o_tail).sum(axis=-1)
        backward = (o_head * inv * s_tail).sum(axis=-1)
        return (forward + backward) * 0.5

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        s_head, s_tail = self._entity_halves(s)
        fwd, inv = self._relation_halves(r)
        ent = self.entity_embeddings.weight
        h = self.rank
        all_head = ent[:, :h]
        all_tail = ent[:, h:]
        forward = (s_head * fwd) @ all_tail.T
        backward = (s_tail * inv) @ all_head.T
        return (forward + backward) * 0.5

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        o_head, o_tail = self._entity_halves(o)
        fwd, inv = self._relation_halves(r)
        ent = self.entity_embeddings.weight
        h = self.rank
        all_head = ent[:, :h]
        all_tail = ent[:, h:]
        forward = (fwd * o_tail) @ all_head.T
        backward = (inv * o_head) @ all_tail.T
        return (forward + backward) * 0.5
