"""Wire-type contracts: round-trips, validation, and schema versioning."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ClassifyRequest,
    ClassifyResponse,
    DiscoverRequest,
    DiscoverResponse,
    HealthResponse,
    ModelInfo,
    ModelsResponse,
    RankRequest,
    RankResponse,
)
from repro.api.types import (
    SCHEMA_VERSION,
    ApiError,
    BadRequestError,
    DeadlineError,
    ModelNotFoundError,
    ModelRef,
    NotFoundError,
    config_digest,
    encode_payload,
    request_type_for,
    response_type_for,
)
from repro.obs import Reportable

TRIPLES = ((0, 1, 2), (3, 0, 5))

SAMPLES = [
    RankRequest(model="d/m", triples=TRIPLES, side="subject", filter="all"),
    DiscoverRequest(model="d/m", strategy="uniform_random", top_n=10, seed=3),
    ClassifyRequest(model="d/m", triples=TRIPLES, hard_negatives=True),
    RankResponse(model="d/m", side="object", filter="train", ranks=(1.0, 2.5), mrr=0.7),
    DiscoverResponse(
        model="d/m", strategy="entity_frequency", top_n=5, max_candidates=50,
        seed=0, facts=TRIPLES, ranks=(1.0, 2.0), candidates_generated_count=40,
    ),
    ClassifyResponse(model="d/m", threshold=0.5, scores=(0.9, 0.1), labels=(True, False)),
    ModelInfo(
        model_id="d/m@abc", dataset="d", model="m", digest="abc",
        dim=16, entities_count=40, relations_count=4, seed=0, loaded=True,
    ),
    HealthResponse(status="ok", models_count=2),
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
    def test_dict_round_trip_is_identity(self, value):
        assert type(value).from_dict(value.to_dict()) == value

    @pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
    def test_bytes_round_trip_is_identity(self, value):
        assert type(value).from_bytes(value.to_bytes()) == value

    def test_nested_models_rebuild_from_plain_dicts(self):
        response = ModelsResponse(models=(SAMPLES[6],))
        clone = ModelsResponse.from_dict(json.loads(response.to_bytes()))
        assert clone == response
        assert isinstance(clone.models[0], ModelInfo)

    def test_payloads_carry_schema_version(self):
        for value in SAMPLES:
            assert value.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_responses_speak_reportable(self):
        for value in SAMPLES:
            assert isinstance(value, Reportable)


class TestRejection:
    def test_unknown_keys_rejected(self):
        payload = RankRequest(model="d/m", triples=TRIPLES).to_dict()
        payload["extra"] = 1
        with pytest.raises(BadRequestError, match="unknown keys.*extra"):
            RankRequest.from_dict(payload)

    def test_foreign_schema_version_rejected(self):
        payload = RankRequest(model="d/m", triples=TRIPLES).to_dict()
        payload["schema_version"] = "v999"
        with pytest.raises(BadRequestError, match="unsupported schema_version"):
            RankRequest.from_dict(payload)

    def test_missing_required_field_rejected(self):
        with pytest.raises(BadRequestError, match="RankRequest"):
            RankRequest.from_dict({"model": "d/m"})

    def test_positional_construction_is_impossible(self):
        with pytest.raises(TypeError):
            RankRequest("d/m", TRIPLES)

    def test_invalid_json_bytes_rejected(self):
        with pytest.raises(BadRequestError, match="invalid JSON"):
            RankRequest.from_bytes(b"{nope")

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(model="d/m", triples=()), "non-empty"),
            (dict(model="d/m", triples=((0, 1),)), "three integers"),
            (dict(model="d/m", triples=((0, 1, True),)), "three integers"),
            (dict(model="d/m", triples=TRIPLES, side="left"), "side"),
            (dict(model="d/m", triples=TRIPLES, filter="valid"), "filter"),
        ],
    )
    def test_rank_request_validation(self, kwargs, match):
        with pytest.raises(BadRequestError, match=match):
            RankRequest(**kwargs)

    def test_discover_request_validation(self):
        with pytest.raises(BadRequestError, match="top_n"):
            DiscoverRequest(model="d/m", top_n=0)
        with pytest.raises(BadRequestError, match="max_candidates"):
            DiscoverRequest(model="d/m", max_candidates=-1)
        with pytest.raises(BadRequestError, match="relations"):
            DiscoverRequest(model="d/m", relations=("zero",))


class TestModelRef:
    def test_parse_full_and_digestless(self):
        ref = ModelRef.parse("wn/distmult@abc123")
        assert (ref.dataset, ref.model, ref.digest) == ("wn", "distmult", "abc123")
        assert ref.model_id == "wn/distmult@abc123"
        bare = ModelRef.parse("wn/distmult")
        assert bare.digest == ""
        assert bare.model_id == "wn/distmult"

    @pytest.mark.parametrize("bad", ["", "nodataset", "/m", "d/", "d"])
    def test_parse_rejects_malformed_ids(self, bad):
        with pytest.raises(BadRequestError):
            ModelRef.parse(bad)


class TestDigestAndEncoding:
    HEADER = {
        "model": "distmult", "num_entities": 40, "num_relations": 4,
        "dim": 16, "seed": 0, "options": {},
    }

    def test_digest_is_stable_and_12_hex(self):
        digest = config_digest(self.HEADER)
        assert digest == config_digest(dict(self.HEADER))
        assert len(digest) == 12
        int(digest, 16)

    def test_digest_forks_on_config_change(self):
        assert config_digest(self.HEADER) != config_digest(
            {**self.HEADER, "seed": 1}
        )

    def test_digest_ignores_training_state_fields(self):
        assert config_digest(self.HEADER) == config_digest(
            {**self.HEADER, "checksum": "deadbeef"}
        )

    def test_encode_payload_is_key_order_independent(self):
        assert encode_payload({"b": 1, "a": 2}) == encode_payload({"a": 2, "b": 1})


class TestErrorTaxonomy:
    def test_envelope_shape(self):
        envelope = ModelNotFoundError("gone").envelope()
        assert envelope == {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": "model_not_found", "status": 404, "message": "gone"},
        }

    def test_status_codes(self):
        assert ApiError.status == 500
        assert BadRequestError.status == 400
        assert NotFoundError.status == 404
        assert ModelNotFoundError.status == 404
        assert DeadlineError.status == 504

    def test_endpoint_lookup(self):
        assert request_type_for("rank") is RankRequest
        assert response_type_for("discover") is DiscoverResponse
        with pytest.raises(NotFoundError):
            request_type_for("nope")
