"""Plain-text rendering of experiment results: tables and ASCII series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable in
a terminal.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series", "ascii_bars", "group_rows"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_cell(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column, one column per line/series."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, precision=precision, title=title)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Horizontal ASCII bar chart (used for quick figure summaries)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return (title + "\n" if title else "") + "(no data)"
    peak = max(values) if max(values) > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_width)}  {bar} {_format_cell(float(value), precision)}")
    return "\n".join(lines)


def group_rows(
    rows: Sequence[Any], key: str
) -> dict[Any, list[Any]]:
    """Group dataclass/dict rows by an attribute or key, insertion-ordered."""
    grouped: dict[Any, list[Any]] = {}
    for row in rows:
        value = row[key] if isinstance(row, dict) else getattr(row, key)
        grouped.setdefault(value, []).append(row)
    return grouped
