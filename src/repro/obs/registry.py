"""Thread-safe metrics registry: counters, gauges, histograms, span trees.

The registry is the single sink for every instrument in the codebase.  A
process-global *active* registry (see :func:`get_registry`) defaults to a
:class:`NullRegistry` so that instrumented hot paths pay essentially
nothing until observability is switched on — the null backend hands out
shared no-op metric objects and records no spans.

Metric naming convention (enforced socially, surfaced by ``repro.lint``
RPR009 for result objects): durations end in ``_seconds``, event tallies
end in ``_count``.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_observability",
    "disable_observability",
]

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A level that can move in both directions (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative counts on export, like Prometheus).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class _SpanNode:
    """One node of the aggregated trace tree."""

    __slots__ = ("count", "wall_seconds", "cpu_seconds", "children")

    def __init__(self) -> None:
        self.count = 0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: dict[str, "_SpanNode"] = {}

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "children": {name: child.as_dict() for name, child in self.children.items()},
        }


class MetricsRegistry:
    """Thread-safe home for counters, gauges, histograms and span trees.

    Metric accessors are get-or-create: ``registry.counter("x")`` always
    returns the same object for the same name, from any thread.  Span
    nesting is tracked per thread (a span opened on a worker thread roots
    its own subtree), while the aggregated trace tree is shared.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._span_root = _SpanNode()
        self._local = threading.local()

    # -- metric accessors -------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, buckets)
            return metric

    # -- span bookkeeping (used by repro.obs.spans) -----------------------

    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push_span(self, name: str) -> None:
        self._span_stack().append(name)

    def _pop_span(self, name: str, wall_seconds: float, cpu_seconds: float) -> None:
        stack = self._span_stack()
        if stack and stack[-1] == name:
            stack.pop()
        self.record_span(tuple(stack) + (name,), wall_seconds, cpu_seconds)

    def record_span(
        self,
        path: Sequence[str],
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        count: int = 1,
    ) -> None:
        """Fold one observation of ``path`` into the aggregated trace tree.

        ``path`` is the chain of span names from the root, e.g.
        ``("discover", "rank")``.  Exposed publicly so exporter tests can
        build deterministic trees without timing anything.
        """
        if not path:
            raise ValueError("span path must be non-empty")
        with self._lock:
            node = self._span_root
            for part in path:
                child = node.children.get(part)
                if child is None:
                    child = node.children[part] = _SpanNode()
                node = child
            node.count += count
            node.wall_seconds += wall_seconds
            node.cpu_seconds += cpu_seconds

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-serialisable copy of everything recorded."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.as_dict() for name, h in self._histograms.items()}
            spans = {
                name: child.as_dict() for name, child in self._span_root.children.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def reset(self) -> None:
        """Drop every recorded value (metric objects are recreated lazily)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._span_root = _SpanNode()


class _NullMetric:
    """Shared do-nothing stand-in for every metric type."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict[str, Any]:
        return {}


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The opt-out backend: accepts every call, records nothing.

    Installed as the process-global default so instrumented code runs at
    full speed (and produces bit-identical results) until observability
    is explicitly enabled.
    """

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return _NULL_METRIC  # type: ignore[return-value]

    def record_span(
        self,
        path: Sequence[str],
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        count: int = 1,
    ) -> None:
        pass


_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry = _NULL_REGISTRY
_active_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global active registry (a NullRegistry until enabled)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the active one; ``None`` restores the null backend."""
    global _active
    with _active_lock:
        _active = registry if registry is not None else _NULL_REGISTRY
        return _active


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (restores the previous one on exit)."""
    previous = _active
    installed = set_registry(registry)
    try:
        yield installed
    finally:
        set_registry(previous)


def enable_observability() -> MetricsRegistry:
    """Switch the global backend to a recording registry (idempotent)."""
    if _active.enabled:
        return _active
    return set_registry(MetricsRegistry())


def disable_observability() -> None:
    """Restore the no-op null backend."""
    set_registry(None)
