"""Observability overhead — spans + counters on the discovery hot path.

The obs layer is designed to be left in the code permanently: every
``span()`` and counter call sits on the training and discovery hot
paths, guarded only by the registry's ``enabled`` flag (the default
``NullRegistry`` short-circuits everything to no-ops).

The pipeline under test (``discover_facts`` on the FB15K-237 replica)
runs in ~50ms, where machine noise between two timings of *literally the
same code path* exceeds 2% — so a macro A/B timing cannot resolve a 1%
budget.  The disabled-mode gate is therefore derived from first
principles and is fully stable:

1. micro-time one disabled ``span()`` entry/exit and one ``NullRegistry``
   counter increment (tight loops, amortised per call), then
2. count how many instrumentation hits one pipeline run actually
   performs (an enabled registry records exactly that), and
3. assert hits x per-call cost < 1% of the measured pipeline runtime,
   with the counter traffic over-counted 10x for safety.

The macro timings (baseline vs. enabled registry vs. disabled re-run)
are still measured — interleaved, order-rotated, GC-fenced — and
reported for the human reader, and the bit-identity contract is checked
on their outputs: telemetry must never perturb discovered facts.

The measurements are written to
``benchmarks/results/BENCH_obs.json`` as a committed artefact.
"""

from __future__ import annotations

import gc
import json
import time

import numpy as np
from common import RESULTS_DIR, save_and_print

from repro.discovery import discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import load_dataset
from repro.obs import MetricsRegistry, flatten_spans, get_registry, span, use_registry

#: Overhead budget for the disabled (default) configuration.
DISABLED_BUDGET = 0.01

#: Safety factor on counter increments in the derived bound: each span
#: hit is charged ten null-counter calls, far above the real call rate.
COUNTER_CALLS_PER_SPAN = 10

#: Tight-loop iterations for the per-call micro timings.
MICRO_ITERATIONS = 20_000


def _pipeline(graph, model):
    return discover_facts(
        model, graph, strategy="entity_frequency", top_n=50,
        max_candidates=500, seed=0,
    )


def _per_call_costs():
    """Amortised seconds per disabled span() and per null counter inc()."""
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with span("bench.noop"):
            pass
    per_span = (time.perf_counter() - t0) / MICRO_ITERATIONS

    null = get_registry()
    counter = null.counter("bench.noop_count")
    t0 = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        counter.inc()
    per_inc = (time.perf_counter() - t0) / MICRO_ITERATIONS
    return per_span, per_inc


def _time_interleaved(fns, repeats: int = 9):
    """Best-of-N wall-clock per function, measured round-robin.

    The variant order rotates every round so no variant systematically
    inherits a warm or cold position, and a ``gc.collect()`` precedes
    every sample so one variant's garbage is never timed against
    another.  Still only indicative at the ~2% level — see module
    docstring.
    """
    count = len(fns)
    best = [float("inf")] * count
    values = [None] * count
    for round_no in range(repeats):
        for offset in range(count):
            i = (round_no + offset) % count
            gc.collect()
            t0 = time.perf_counter()
            values[i] = fns[i]()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, values


def test_obs_overhead():
    assert not get_registry().enabled, "bench expects obs disabled by default"
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)

    # Warm everything (strategy caches, BLAS threads) before timing.
    _pipeline(graph, model)

    registry = MetricsRegistry()

    def enabled_run():
        with use_registry(registry):
            return _pipeline(graph, model)

    (baseline_s, enabled_s, disabled_s), (baseline, enabled, disabled) = (
        _time_interleaved(
            [lambda: _pipeline(graph, model), enabled_run,
             lambda: _pipeline(graph, model)]
        )
    )

    # Telemetry never perturbs results: facts and ranks are bit-identical
    # whether or not a registry is listening.
    np.testing.assert_array_equal(baseline.facts, enabled.facts)
    np.testing.assert_array_equal(baseline.facts, disabled.facts)
    np.testing.assert_array_equal(baseline.ranks, enabled.ranks)

    # The enabled registry recorded the whole pipeline; its span counts
    # are an exact census of the instrumentation hits per run.
    snapshot = registry.snapshot()
    spans = snapshot["spans"]
    assert "discover" in spans and "rank" in spans["discover"]["children"]
    runs_recorded = spans["discover"]["count"]
    span_hits = sum(
        node["count"] for node in flatten_spans(spans).values()
    ) / runs_recorded

    per_span, per_inc = _per_call_costs()
    disabled_cost_s = span_hits * (per_span + COUNTER_CALLS_PER_SPAN * per_inc)
    disabled_overhead = disabled_cost_s / baseline_s

    assert disabled_overhead < DISABLED_BUDGET

    enabled_overhead = enabled_s / baseline_s - 1.0
    noise_floor = disabled_s / baseline_s - 1.0  # same code path twice

    rows = [
        {"run": "baseline (obs disabled)", "runtime_s": round(baseline_s, 4),
         "overhead": "-"},
        {"run": "MetricsRegistry enabled", "runtime_s": round(enabled_s, 4),
         "overhead": f"{enabled_overhead:+.2%}"},
        {"run": "obs disabled (re-run, noise floor)",
         "runtime_s": round(disabled_s, 4), "overhead": f"{noise_floor:+.2%}"},
        {"run": "disabled bound (derived, asserted <1%)",
         "runtime_s": round(disabled_cost_s, 6),
         "overhead": f"{disabled_overhead:+.3%}"},
    ]

    payload = {
        "dataset": "fb15k237-like",
        "model": "distmult",
        "pipeline": "discover_facts(entity_frequency, top_n=50)",
        "baseline_seconds": baseline_s,
        "enabled_seconds": enabled_s,
        "disabled_rerun_seconds": disabled_s,
        "noise_floor_fraction": noise_floor,
        "enabled_overhead_fraction": enabled_overhead,
        "span_hits_per_run": span_hits,
        "per_disabled_span_seconds": per_span,
        "per_null_counter_inc_seconds": per_inc,
        "counter_calls_charged_per_span": COUNTER_CALLS_PER_SPAN,
        "disabled_overhead_bound_fraction": disabled_overhead,
        "disabled_budget": DISABLED_BUDGET,
        "bit_identical_facts": True,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "obs_overhead",
        format_table(
            rows,
            title="Observability overhead on discovery "
            "(fb15k237-like, distmult, best of 9)",
        ),
    )
