"""Analyzer runtime guard — cold vs warm (cached) full-tree scans.

The self-clean test in tier-1 runs the analyzer over ``src/repro`` on
every pytest invocation, so the scan has to stay interactive.  With the
two-pass engine the interesting costs are:

* **cold** — empty cache: parse every file, run pass 1, build the
  project index, run pass 2;
* **warm** — every per-module record served from the content-hash
  cache, pass 2 re-run;
* **changed-only** — nothing changed, so the cached whole-program
  findings are reused and pass 2 is skipped entirely;
* **uncached** — the cacheless path the self-clean gate exercises.

The warm and changed-only runs must stay under 1 s (the incremental
contract recorded in ``BENCH_lint.json``), and all four modes must
return byte-identical findings — here the empty set, since tier-1 keeps
the tree clean.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from common import RESULTS_DIR, save_and_print

from repro.experiments import format_table
from repro.lint import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]


def _timed(engine: LintEngine, paths, **kwargs):
    start = time.perf_counter()
    run = engine.run(paths, **kwargs)
    return run, time.perf_counter() - start


def test_lint_cold_vs_warm_runtime(benchmark, tmp_path):
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    paths = list(config.paths)
    cache_dir = tmp_path / "lint-cache"

    cold_run, cold = _timed(LintEngine(config, cache_dir=cache_dir), paths)
    warm_run, warm = _timed(LintEngine(config, cache_dir=cache_dir), paths)
    changed_run, changed_only = _timed(
        LintEngine(config, cache_dir=cache_dir), paths, changed_only=True
    )
    uncached_run, uncached = _timed(
        LintEngine(config, use_cache=False), paths
    )

    # Byte-identity across every mode is the cache's core contract.
    assert cold_run.findings == []
    assert warm_run.findings == cold_run.findings
    assert changed_run.findings == cold_run.findings
    assert uncached_run.findings == cold_run.findings
    assert cold_run.cache_misses == cold_run.checked_files
    assert warm_run.cache_hits == warm_run.checked_files
    assert changed_run.project_reused and changed_run.changed == []

    benchmark.pedantic(
        lambda: LintEngine(config, cache_dir=cache_dir).run(
            paths, changed_only=True
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        {"mode": "cold", "seconds": round(cold, 3), "cache": "miss x%d" % cold_run.cache_misses},
        {"mode": "warm", "seconds": round(warm, 3), "cache": "hit x%d" % warm_run.cache_hits},
        {"mode": "changed-only", "seconds": round(changed_only, 3), "cache": "project reuse"},
        {"mode": "uncached", "seconds": round(uncached, 3), "cache": "disabled"},
    ]
    table = format_table(
        rows,
        title="repro.lint — two-pass scan runtime (%d files)"
        % cold_run.checked_files,
    )
    save_and_print("lint_runtime", table)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "files": cold_run.checked_files,
        "findings": len(cold_run.findings),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "changed_only_seconds": changed_only,
        "uncached_seconds": uncached,
        "warm_speedup": cold / max(warm, 1e-9),
        "changed_only_speedup": cold / max(changed_only, 1e-9),
        "warm_budget_seconds": 1.0,
        "byte_identical_findings": True,
    }
    (RESULTS_DIR / "BENCH_lint.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    assert cold < 10.0
    assert warm < 1.0, "cached pass-1 reuse must keep the scan interactive"
    assert changed_only < 1.0, "--changed-only must skip pass 2 entirely"
