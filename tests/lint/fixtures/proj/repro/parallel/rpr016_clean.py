"""RPR016 clean fixture: every blocking wait is bounded or non-blocking."""

from concurrent.futures import ProcessPoolExecutor, wait
from multiprocessing import Lock, Process, Queue
from queue import Empty


def dispatch_worker(context, payload, rng):
    return payload


def collect(pool, payload):
    future = pool.submit(dispatch_worker, None, payload, None)
    wait([future], timeout=30.0)
    return future.result(timeout=0)


def drain():
    inbox = Queue()
    try:
        return inbox.get(timeout=5.0)
    except Empty:
        return None


def poll():
    inbox = Queue()
    try:
        return inbox.get_nowait()
    except Empty:
        return None


def guarded_update(state):
    gate = Lock()
    if not gate.acquire(timeout=5.0):
        raise TimeoutError("lock holder died")
    try:
        state["cells"] = state.get("cells", 0) + 1
    finally:
        gate.release()


def run_sidecar(target):
    sidecar = Process(target=target)
    sidecar.start()
    sidecar.join(timeout=30.0)
    return "\n".join(["done"])


def run_batches(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [collect(pool, job) for job in jobs]
