"""Smoke tests keeping the example scripts runnable.

All examples must at least compile; the cheap ones are executed end to
end with their real entry points.
"""

from __future__ import annotations

import importlib.util
import py_compile
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestCompile:
    def test_examples_exist(self):
        assert len(ALL_EXAMPLES) >= 6

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)


class TestBiomedicalBuilder:
    def test_graph_structure(self):
        module = _load("biomedical_discovery.py")
        graph, held_out = module.build_biomedical_kg(seed=1)
        assert graph.num_relations == 4
        assert graph.entities.label_of(0).startswith("drug:")
        assert len(held_out) > 0
        # Held-out triples are all 'treats' edges outside the training set.
        treats = graph.relations.id_of("treats")
        for s, r, o in held_out:
            assert r == treats
            assert (s, r, o) not in graph.train

    def test_deterministic(self):
        module = _load("biomedical_discovery.py")
        g1, h1 = module.build_biomedical_kg(seed=2)
        g2, h2 = module.build_biomedical_kg(seed=2)
        assert g1.train == g2.train
        assert h1 == h2


class TestCustomDatasetBuilder:
    def test_demo_dataset_contains_planted_leak(self, tmp_path):
        module = _load("custom_dataset.py")
        module.write_demo_dataset(tmp_path / "kg")
        from repro.kg import detect_inverse_leakage, load_dataset_dir

        graph = load_dataset_dir(tmp_path / "kg")
        leaks = [
            l for l in detect_inverse_leakage(graph, threshold=0.9)
            if l.relation != l.inverse
        ]
        assert leaks
