"""Clean fixture for RPR007: atomic writers and handled exceptions."""

from repro.resilience import atomic_savez


def save_cache(path, arrays):
    atomic_savez(path, **arrays)


def read_cache(path):
    with open(path, "rb") as handle:
        return handle.read()


def tolerant(fn):
    try:
        return fn()
    except ValueError:
        return None
