"""RPR013 — cross-module ``__all__`` and re-export integrity.

RPR005 keeps one module's ``__all__`` honest against its own
definitions; this rule follows bindings *between* modules: imports of
project names that do not resolve, package ``__init__`` files that
import a symbol for re-export but forget to list it in ``__all__``,
re-exports that bypass the source module's ``__all__``, and top-level
rebinds that shadow an earlier import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .callgraph import split_node
from .findings import Finding
from .rules import ProjectRule, register_rule

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = ["ExportIntegrityRule"]


@register_rule
class ExportIntegrityRule(ProjectRule):
    rule_id = "RPR013"
    name = "export-integrity"
    description = (
        "unresolved project imports, package re-exports missing from "
        "__all__ or bypassing the source module's __all__, shadowed "
        "top-level bindings"
    )
    rationale = (
        "The public surface is assembled by re-export chains "
        "(repro.__init__ -> subpackage __init__ -> module); a rename "
        "that breaks one link, or a name imported into a package but "
        "never exported, only surfaces when a user hits the dead "
        "import.  Resolving every binding against the project symbol "
        "table catches the break at lint time."
    )
    example = (
        "# repro/kge/__init__.py\n"
        "from .ranking import RankingEngine, ScoreRowCache\n"
        "from .training import train_modle   # RPR013: unresolved name\n"
        "__all__ = ['RankingEngine']         # RPR013: ScoreRowCache\n"
        "                                    # imported but not exported\n"
    )

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]

            # Unresolved project-internal imports.
            for name in sorted(info.bindings):
                binding = info.bindings[name]
                kind, target = index.resolve(binding.target)
                if kind == "missing":
                    yield self.project_finding(
                        info.path,
                        binding.lineno,
                        binding.col,
                        f"import of '{binding.target}' does not resolve to "
                        "any project module or symbol",
                    )

            # Re-export integrity for package __init__ files.
            if info.is_package and info.all_names is not None:
                exported = set(info.all_names)
                for name in sorted(info.bindings):
                    binding = info.bindings[name]
                    if binding.kind != "symbol" or name.startswith("_"):
                        continue
                    kind, qual = index.resolve(binding.target)
                    if kind != "symbol":
                        continue
                    owner, symbol = split_node(qual)
                    if name not in exported:
                        yield self.project_finding(
                            info.path,
                            binding.lineno,
                            binding.col,
                            f"'{name}' is imported into the package "
                            "namespace but missing from __all__",
                        )
                    owner_info = index.modules[owner]
                    if (
                        owner_info.all_names is not None
                        and "." not in symbol
                        and symbol not in owner_info.all_names
                    ):
                        yield self.project_finding(
                            info.path,
                            binding.lineno,
                            binding.col,
                            f"re-export of '{symbol}' bypasses "
                            f"'{owner}.__all__'",
                        )

            # Shadowed top-level bindings (straight-line code only).
            first_seen: dict[str, int] = {}
            for name, _origin, lineno, col in info.toplevel_order:
                if name.startswith("__"):
                    continue
                if name in first_seen:
                    yield self.project_finding(
                        info.path,
                        lineno,
                        col,
                        f"'{name}' shadows the earlier top-level binding "
                        f"at line {first_seen[name]}",
                    )
                else:
                    first_seen[name] = lineno
