"""Table 1 — metadata of the datasets (paper §4.1.2).

Prints the paper's original Table 1 next to the replica graphs actually
used here, including the shape statistics (triples per entity, average
clustering) that the substitution preserves.  The timed piece is dataset
generation.
"""

from __future__ import annotations

from common import save_and_print

from repro.experiments import format_table
from repro.kg import (
    DATASET_PROFILES,
    PAPER_METADATA,
    GraphStatistics,
    generate_kg,
    load_dataset,
)


def test_table1_metadata(benchmark):
    benchmark.pedantic(
        lambda: generate_kg(DATASET_PROFILES["fb15k237-like"]),
        rounds=3,
        iterations=1,
    )

    paper_rows = []
    for meta in PAPER_METADATA.values():
        paper_rows.append(
            {
                "Dataset": meta.name,
                "Training": meta.training,
                "Validation": meta.validation,
                "Test": meta.test,
                "Entities": meta.entities,
                "Relations": meta.relations,
                "Triples/entity": round(meta.training / meta.entities, 1),
            }
        )

    replica_rows = []
    for name in DATASET_PROFILES:
        graph = load_dataset(name)
        stats = GraphStatistics(graph.train, backend="sparse")
        replica_rows.append(
            {
                "Dataset": graph.name,
                "Training": len(graph.train),
                "Validation": len(graph.valid),
                "Test": len(graph.test),
                "Entities": graph.num_entities,
                "Relations": graph.num_relations,
                "Triples/entity": round(len(graph.train) / graph.num_entities, 1),
                "AvgClustering": round(stats.average_clustering, 3),
            }
        )

    text = (
        format_table(paper_rows, title="Table 1 (paper): original datasets")
        + "\n\n"
        + format_table(replica_rows, title="Table 1 (this repo): replica datasets")
    )
    save_and_print("table1_datasets", text)

    # Sanity: the replicas preserve the paper's density ordering.
    density = {r["Dataset"]: r["Triples/entity"] for r in replica_rows}
    assert density["fb15k237-like"] == max(density.values())
    assert density["wn18rr-like"] == min(density.values())
