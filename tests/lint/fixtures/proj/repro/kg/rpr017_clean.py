"""RPR017 clean fixture: sparse and slab-bounded allocations only."""

import numpy as np


def per_node_counts(adj):
    return np.asarray(adj.sum(axis=1)).ravel()


def edge_scratch(num_edges):
    return np.zeros(num_edges)  # 1-D: proportional to edges


def triple_columns(n, m):
    return np.zeros((n, m))  # rectangular with distinct dims


def fixed_window():
    return np.ones((8, 8))  # literal square: small fixed-size scratch


def blocked_rowsums(adj, iter_two_hop_blocks, budget):
    out = np.zeros(adj.shape[0])
    for lo, hi, a_blk, t_blk in iter_two_hop_blocks(adj, budget):
        out[lo:hi] = np.asarray(a_blk.multiply(t_blk).sum(axis=1)).ravel()
    return out
