"""repro.parallel — stdlib-only multiprocess execution fabric.

The paper's evaluation is embarrassingly parallel: the experiment matrix
is a grid of independent (dataset × model × strategy) cells, discovery
iterates independent relations, and the hyperparameter sweep iterates
independent grid points.  This package executes those units across a
spawn-based process pool while preserving two hard guarantees:

1. **Determinism** — results are bit-identical to the serial code path.
   Merging happens in submission order and every unit derives its RNG
   from the campaign seed alone (:func:`~repro.resilience.spawn_stream`),
   never from which worker ran it or when.
2. **Crash safety** — the :class:`~repro.resilience.RunJournal` remains
   the source of truth exactly as in the serial runner: attempts are
   journalled before dispatch, worker deaths consume attempt budget, and
   resumed campaigns replay completed cells bit-identically.

Model parameters travel through :class:`SharedEmbeddingStore`
(:mod:`multiprocessing.shared_memory`): workers score against zero-copy
read-only views instead of per-process pickled copies.

Supervision and hygiene harden those guarantees against misbehaving
infrastructure: the scheduler watchdog (:mod:`repro.parallel.watchdog`)
kills cells that overshoot their ``cell_deadline`` or pools that stop
heartbeating, and every shared-memory segment is tracked by
:mod:`repro.parallel.registry` so crashes never strand embeddings in
``/dev/shm`` (atexit/signal reaping plus a startup orphan scan).

Layering: sits above :mod:`repro.kge`, :mod:`repro.resilience` and
:mod:`repro.obs`; the experiment layers import it lazily at call time
(``procs > 1``) and worker entry points live in
:mod:`repro.parallel.workers`.
"""

from .registry import orphaned_segments, reap_orphans
from .scheduler import (
    Cell,
    CellOutcome,
    CellTimeoutError,
    ParallelScheduler,
    WorkerCrashError,
)
from .shared import ArraySpec, ModelHandle, SharedEmbeddingStore, attach_model
from .watchdog import HeartbeatBoard

__all__ = [
    "Cell",
    "CellOutcome",
    "ParallelScheduler",
    "WorkerCrashError",
    "CellTimeoutError",
    "HeartbeatBoard",
    "ArraySpec",
    "ModelHandle",
    "SharedEmbeddingStore",
    "attach_model",
    "orphaned_segments",
    "reap_orphans",
]
