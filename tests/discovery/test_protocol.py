"""Tests for the held-out fact-discovery evaluation protocol (§6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import heldout_discovery_protocol, hide_triples
from repro.kge import ModelConfig, TrainConfig


class TestHideTriples:
    def test_sizes(self, small_graph):
        reduced, hidden = hide_triples(small_graph, fraction=0.2, seed=0)
        assert len(hidden) == int(len(small_graph.train) * 0.2)
        assert len(reduced.train) + len(hidden) == len(small_graph.train)

    def test_partition_is_exact(self, small_graph):
        reduced, hidden = hide_triples(small_graph, fraction=0.2, seed=0)
        assert len(reduced.train.intersection(hidden)) == 0
        assert reduced.train.union(hidden) == small_graph.train

    def test_hidden_entities_remain_observable(self, small_graph):
        """Every hidden triple's entities/relation still appear in the
        reduced training split — it stays discoverable in principle."""
        reduced, hidden = hide_triples(small_graph, fraction=0.2, seed=0)
        seen_entities = set(reduced.train.unique_entities().tolist())
        seen_relations = set(reduced.train.unique_relations().tolist())
        for s, r, o in hidden:
            assert s in seen_entities and o in seen_entities
            assert r in seen_relations

    def test_deterministic(self, small_graph):
        _, h1 = hide_triples(small_graph, fraction=0.15, seed=3)
        _, h2 = hide_triples(small_graph, fraction=0.15, seed=3)
        assert h1 == h2

    def test_invalid_fraction(self, small_graph):
        with pytest.raises(ValueError):
            hide_triples(small_graph, fraction=0.0)
        with pytest.raises(ValueError):
            hide_triples(small_graph, fraction=1.0)

    def test_valid_test_untouched(self, small_graph):
        reduced, _ = hide_triples(small_graph, fraction=0.2, seed=0)
        assert reduced.valid == small_graph.valid
        assert reduced.test == small_graph.test


class TestProtocol:
    @pytest.fixture(scope="class")
    def result(self, small_graph):
        return heldout_discovery_protocol(
            small_graph,
            ModelConfig("distmult", dim=24, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=50, batch_size=128, lr=0.05,
                label_smoothing=0.1,
            ),
            strategy="entity_frequency",
            hide_fraction=0.15,
            top_n=40,
            max_candidates=300,
            seed=0,
        )

    def test_counts_consistent(self, result):
        assert 0 <= result.num_recovered <= result.num_hidden
        assert result.num_recovered <= result.num_discovered

    def test_recall_definition(self, result):
        assert result.recall == pytest.approx(
            result.num_recovered / result.num_hidden
        )

    def test_precision_definition(self, result):
        assert result.known_true_precision == pytest.approx(
            result.num_recovered / result.num_discovered
        )

    def test_protocol_recovers_hidden_facts(self, result):
        """The whole point: a trained model + sampling should rediscover a
        non-trivial share of what was hidden."""
        assert result.num_recovered > 0
        assert result.recall > 0.02

    def test_per_relation_recall_bounded(self, result):
        for value in result.per_relation_recall.values():
            assert 0.0 <= value <= 1.0

    def test_summary_flat(self, result):
        summary = result.summary()
        assert set(summary) == {
            "hidden_count", "discovered_count", "recovered_count", "recall",
            "known_true_precision",
        }
        # The pre-observability aliases completed their deprecation cycle.
        assert "num_hidden" not in summary

    def test_popularity_sampling_beats_uniform_recall(self, small_graph):
        """The paper's finding restated in protocol terms: EF recovers
        more hidden facts than UR under the same budget."""
        common = dict(
            model_config=ModelConfig("distmult", dim=24, seed=0),
            train_config=TrainConfig(
                job="kvsall", loss="bce", epochs=50, batch_size=128, lr=0.05,
                label_smoothing=0.1,
            ),
            hide_fraction=0.15,
            top_n=40,
            max_candidates=300,
            seed=0,
        )
        ef = heldout_discovery_protocol(
            small_graph, strategy="entity_frequency", **common
        )
        ur = heldout_discovery_protocol(
            small_graph, strategy="uniform_random", **common
        )
        assert ef.recall >= ur.recall
