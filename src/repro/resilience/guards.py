"""Training guards: per-epoch divergence detection and recovery state.

The guard inspects each finished epoch for four anomaly classes —
NaN/Inf mean loss, loss explosion relative to the best epoch so far,
non-finite model parameters, and absent/exploding gradient norms — and
the training loop applies the configured :class:`GuardConfig` policy:

``halt``
    raise :class:`~repro.resilience.errors.TrainingDivergedError`
    immediately (the campaign-level retry executor decides what's next);
``rollback``
    restore the last healthy in-memory snapshot (parameters *and*
    optimizer moments — Adam's ``m``/``v`` soak up NaNs too) and stop
    early with a usable model;
``retry``
    restore the snapshot and re-run the epoch with RNG streams spawned
    from the base seed (see :mod:`repro.resilience.rng`), up to
    ``max_epoch_retries`` times, then fall back to ``halt``.

On a fault-free run the guard only observes — it never touches an RNG —
so guarded and unguarded training produce bit-identical models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..autograd.sparse import SparseGrad
from ..obs import ReportableMixin

if TYPE_CHECKING:  # import-light: guards must not drag in the kge package
    from ..autograd import Module, Optimizer

__all__ = [
    "GuardConfig",
    "GuardEvent",
    "GuardReport",
    "TrainingGuard",
    "gradient_norm",
]

_POLICIES = ("off", "halt", "rollback", "retry")


@dataclass(frozen=True)
class GuardConfig:
    """Divergence-detection thresholds and the recovery policy."""

    policy: str = "halt"
    #: Mean epoch loss above ``explosion_factor · best_so_far`` (plus a
    #: small absolute floor for near-zero losses) counts as an explosion.
    explosion_factor: float = 25.0
    #: Gradient norms (last batch of the epoch) above this are anomalous.
    grad_norm_limit: float = 1e6
    #: Also scan parameters for NaN/Inf each epoch (cheap, catches
    #: corruption the loss hasn't surfaced yet).
    check_parameters: bool = True
    #: Epoch re-runs (with spawned RNG streams) before giving up.
    max_epoch_retries: int = 2

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.explosion_factor <= 1.0:
            raise ValueError("explosion_factor must be > 1")
        if self.max_epoch_retries < 0:
            raise ValueError("max_epoch_retries must be >= 0")


@dataclass(frozen=True)
class GuardEvent:
    """One anomaly observation and what the policy did about it."""

    epoch: int
    attempt: int
    kind: str  # nan_loss | loss_explosion | nonfinite_params | grad_anomaly
    detail: str
    action: str = ""  # halted | rolled_back | retried


@dataclass
class GuardReport(ReportableMixin):
    """Everything the guard saw during one training run."""

    events: list[GuardEvent] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    rollbacks: int = 0
    epoch_retries: int = 0
    halted: bool = False

    @property
    def clean(self) -> bool:
        return not self.events

    def summary(self) -> dict[str, float | int | bool]:
        return {
            "guard_events_count": len(self.events),
            "guard_rollbacks_count": self.rollbacks,
            "guard_epoch_retries_count": self.epoch_retries,
            "guard_halted": self.halted,
            "max_grad_norm": max(self.grad_norms, default=float("nan")),
        }


def _copy_state_item(item: object) -> object:
    """Deep-copy one list element of optimizer state.

    Sparse optimizers keep per-parameter lists mixing ``None`` (lazy path
    not engaged), int64 row counters, plain ints, and bias-correction
    schedules (lists of floats) alongside the classic moment arrays.
    """
    if isinstance(item, np.ndarray):
        return item.copy()
    if isinstance(item, list):
        return list(item)
    return item


def _optimizer_state(optimizer: "Optimizer") -> dict[str, object]:
    """Copy the optimizer's mutable numeric state (moments, counters)."""
    state: dict[str, object] = {}
    for name, value in vars(optimizer).items():
        if name == "params":
            continue
        if isinstance(value, np.ndarray):
            state[name] = value.copy()
        elif isinstance(value, list) and all(
            item is None or isinstance(item, (np.ndarray, list, int, float))
            for item in value
        ):
            state[name] = [_copy_state_item(item) for item in value]
        elif isinstance(value, (int, float)):
            state[name] = value
    return state


def _restore_optimizer(optimizer: "Optimizer", state: dict[str, object]) -> None:
    for name, value in state.items():
        if isinstance(value, np.ndarray):
            getattr(optimizer, name)[...] = value
        elif isinstance(value, list):
            # Replace wholesale with fresh copies: list entries may have
            # changed shape or been allocated since the snapshot (lazy
            # row counters engage mid-run), and the saved copy must stay
            # pristine for repeated restores.
            setattr(optimizer, name, [_copy_state_item(item) for item in value])
        else:
            setattr(optimizer, name, value)


def gradient_norm(optimizer: "Optimizer") -> float:
    """Global L2 norm over the parameters' current gradients."""
    total = 0.0
    seen = False
    for param in optimizer.params:
        grad = param.grad
        if grad is None:
            continue
        seen = True
        if isinstance(grad, SparseGrad):
            total += grad.norm_squared()
        else:
            total += float(np.sum(np.square(grad)))
    return math.sqrt(total) if seen else float("nan")


class TrainingGuard:
    """Stateful anomaly detector + snapshot/rollback helper for one run."""

    def __init__(self, config: GuardConfig) -> None:
        self.config = config
        self.report = GuardReport()
        self._best_loss = math.inf
        self._snapshot: tuple[dict[str, np.ndarray], dict[str, object]] | None = None

    @property
    def wants_snapshots(self) -> bool:
        return self.config.policy in ("rollback", "retry")

    def snapshot(self, model: "Module", optimizer: "Optimizer") -> None:
        """Capture the last-known-good state (in memory, never on disk)."""
        self._snapshot = (model.state_dict(), _optimizer_state(optimizer))

    def restore(self, model: "Module", optimizer: "Optimizer") -> bool:
        """Roll model + optimizer back to the last snapshot, if any."""
        if self._snapshot is None:
            return False
        state, optimizer_state = self._snapshot
        model.load_state_dict(state)
        _restore_optimizer(optimizer, optimizer_state)
        return True

    def inspect(
        self,
        epoch: int,
        attempt: int,
        mean_loss: float,
        model: "Module",
        optimizer: "Optimizer",
    ) -> GuardEvent | None:
        """Return the first anomaly of the epoch (recorded), else ``None``."""
        grad_norm = gradient_norm(optimizer)
        self.report.grad_norms.append(grad_norm)

        event: GuardEvent | None = None
        if not math.isfinite(mean_loss):
            event = GuardEvent(epoch, attempt, "nan_loss", f"mean loss {mean_loss}")
        elif (
            math.isfinite(self._best_loss)
            and mean_loss
            > self.config.explosion_factor * max(abs(self._best_loss), 1e-8)
        ):
            event = GuardEvent(
                epoch,
                attempt,
                "loss_explosion",
                f"mean loss {mean_loss:.4g} exploded past "
                f"{self.config.explosion_factor}× best {self._best_loss:.4g}",
            )
        elif not math.isnan(grad_norm) and (
            not math.isfinite(grad_norm) or grad_norm > self.config.grad_norm_limit
        ):
            event = GuardEvent(
                epoch, attempt, "grad_anomaly", f"gradient norm {grad_norm:.4g}"
            )
        elif self.config.check_parameters:
            for name, array in model.state_dict().items():
                if not np.all(np.isfinite(array)):
                    event = GuardEvent(
                        epoch, attempt, "nonfinite_params",
                        f"non-finite values in {name}",
                    )
                    break

        if event is None:
            self._best_loss = min(self._best_loss, mean_loss)
        else:
            self.report.events.append(event)
        return event

    def mark(self, event: GuardEvent, action: str) -> None:
        """Record the policy's reaction on the latest event."""
        updated = GuardEvent(event.epoch, event.attempt, event.kind, event.detail, action)
        if self.report.events and self.report.events[-1] is event:
            self.report.events[-1] = updated
        else:
            self.report.events.append(updated)
        if action == "rolled_back":
            self.report.rollbacks += 1
        elif action == "retried":
            self.report.epoch_retries += 1
        elif action == "halted":
            self.report.halted = True
