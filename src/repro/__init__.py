"""repro — fact discovery from knowledge graph embeddings.

A from-scratch reproduction of *“Evaluation of Sampling Methods for
Discovering Facts from Knowledge Graph Embeddings”* (EDBT 2024):

* :mod:`repro.autograd` — numpy autodiff engine (the training substrate);
* :mod:`repro.kg` — knowledge-graph storage, statistics, dataset replicas;
* :mod:`repro.kge` — TransE/DistMult/ComplEx/RESCAL/HolE/ConvE models,
  training and the ranking evaluation protocol;
* :mod:`repro.discovery` — Algorithm 1 (``discover_facts``), the six
  sampling strategies, and the exhaustive CHAI-style baseline;
* :mod:`repro.experiments` — the run matrix, hyperparameter grids and
  reporting used by the benchmark harness.

Quickstart::

    from repro import FactDiscoveryWorkflow
    report = FactDiscoveryWorkflow(dataset="fb15k237-like",
                                   model="distmult",
                                   strategy="entity_frequency").run()
    print(report.summary())
"""

from .discovery import (
    DiscoveryResult,
    RuleFilter,
    available_strategies,
    create_strategy,
    discover_facts,
    exhaustive_discover_facts,
    heldout_discovery_protocol,
)
from .experiments import FactDiscoveryWorkflow, run_matrix
from .kg import (
    KnowledgeGraph,
    TripleSet,
    available_datasets,
    dataset_report,
    load_dataset,
    load_dataset_dir,
)
from .kge import (
    ModelConfig,
    TrainConfig,
    available_models,
    create_model,
    evaluate_ranking,
    fit,
    load_model,
    save_model,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "KnowledgeGraph",
    "TripleSet",
    "load_dataset",
    "available_datasets",
    "create_model",
    "available_models",
    "ModelConfig",
    "TrainConfig",
    "fit",
    "evaluate_ranking",
    "discover_facts",
    "exhaustive_discover_facts",
    "heldout_discovery_protocol",
    "DiscoveryResult",
    "RuleFilter",
    "create_strategy",
    "available_strategies",
    "run_matrix",
    "FactDiscoveryWorkflow",
    "dataset_report",
    "load_dataset_dir",
    "save_model",
    "load_model",
]
