"""First-class deterministic fault injection.

Grew out of the test-only harness in :mod:`repro.resilience.faults`
(which now re-exports this package for compatibility).  The promotion
buys two things the old home could not offer:

* **Layering** — :mod:`repro.faults` sits below every other ``repro``
  package, so the parallel fabric, the journal, and the shared-memory
  layer can all host fault sites without import cycles.
* **Process spanning** — plans serialize through the spawn boundary
  (:func:`export_to_env` / :func:`install_from_env`), so a schedule
  armed in the parent fires inside pool workers too, which is what the
  ``repro chaos`` campaign driver and the watchdog tests rely on.

See :mod:`repro.faults.plan` for the fault kinds and
:mod:`repro.faults.runtime` for the instrumented sites.
"""

from .plan import PAYLOAD_VERSION, FaultPlan
from .runtime import (
    FAULT_PLAN_ENV,
    active_plan,
    clear,
    corrupt_file,
    export_to_env,
    inject,
    install,
    install_from_env,
    stall_seconds,
    torn_append,
    trigger,
)

__all__ = [
    "FaultPlan",
    "PAYLOAD_VERSION",
    "FAULT_PLAN_ENV",
    "install",
    "clear",
    "active_plan",
    "inject",
    "trigger",
    "corrupt_file",
    "stall_seconds",
    "torn_append",
    "export_to_env",
    "install_from_env",
]
