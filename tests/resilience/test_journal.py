"""Run-journal tests: durable appends, torn-line tolerance, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, inject
from repro.resilience import FaultInjectedError, RunJournal, error_fingerprint
from repro.resilience.journal import JOURNAL_VERSION


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a/b/c", attempt=1)
        journal.append("cell_succeeded", cell="a/b/c", row={"mrr": 0.25})
        view = journal.read()
        assert [record["event"] for record in view.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert view.records[1]["row"] == {"mrr": 0.25}
        assert view.corrupt_lines == 0

    def test_missing_file_reads_empty(self, tmp_path):
        view = RunJournal(tmp_path / "absent.jsonl").read()
        assert view.records == []
        assert view.corrupt_lines == 0

    def test_floats_roundtrip_bit_exactly(self, tmp_path):
        # Resume replays recorded rows; float repr → JSON → float must be
        # the identity, or "bit-identical resumed reports" is impossible.
        value = 0.1 + 0.2  # famously not 0.3
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("x", value=value, nested={"v": 1.0 / 3.0})
        record = journal.read().records[0]
        assert record["value"] == value
        assert record["nested"]["v"] == 1.0 / 3.0

    def test_append_creates_parent_directories(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "run.jsonl")
        journal.append("x")
        assert journal.path.is_file()


class TestTornLines:
    def test_torn_trailing_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        journal.append("cell_succeeded", cell="a")
        # Simulate a crash mid-append: a truncated JSON line at the tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "cell_start')
        view = journal.read()
        assert len(view.records) == 2
        assert view.corrupt_lines == 1

    def test_non_object_lines_count_as_corrupt(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('[1, 2, 3]\n{"event": "ok"}\n\n', encoding="utf-8")
        view = RunJournal(path).read()
        assert [record["event"] for record in view.records] == ["ok"]
        assert view.corrupt_lines == 1

    def test_records_survive_as_plain_json_lines(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a/b/c")
        header, line = journal.path.read_text(encoding="utf-8").strip().splitlines()
        assert json.loads(header)["record"] == {
            "event": "journal_header",
            "version": 2,
        }
        assert json.loads(line)["record"] == {"event": "cell_started", "cell": "a/b/c"}


class TestByEvent:
    def test_filters_on_event_name(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a")
        journal.append("cell_failed", cell="a")
        journal.append("cell_started", cell="b")
        view = journal.read()
        assert len(view.by_event("cell_started")) == 2
        assert len(view.by_event("cell_failed")) == 1
        assert view.by_event("nonexistent") == []


class TestFormatV2:
    def test_fresh_journal_declares_current_version(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("x")
        assert journal.read().version == JOURNAL_VERSION

    def test_v1_journal_remains_readable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"event": "cell_started", "cell": "a"}\n'
            '{"event": "cell_succeeded", "cell": "a"}\n',
            encoding="utf-8",
        )
        view = RunJournal(path).read()
        assert [r["event"] for r in view.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert view.corrupt_lines == 0
        assert view.version == 1

    def test_mixed_v1_v2_file_is_legal(self, tmp_path):
        # Upgrade-in-place: an old journal extended by a new writer.
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "cell_started", "cell": "a"}\n', encoding="utf-8")
        journal = RunJournal(path)
        journal.append("cell_succeeded", cell="a")
        view = journal.read()
        assert [r["event"] for r in view.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert view.corrupt_lines == 0

    def test_crc_catches_silent_damage(self, tmp_path):
        # A flipped byte that still parses as JSON — invisible to v1.
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_succeeded", cell="a", mrr=0.25)
        lines = path.read_text(encoding="utf-8").splitlines()
        damaged = json.loads(lines[-1])
        damaged["record"]["mrr"] = 0.52
        lines[-1] = json.dumps(damaged)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        view = journal.read()
        assert view.records == []
        assert view.corrupt_lines == 1


class TestRepair:
    @staticmethod
    def _tear(path):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"crc": "00000000", "record": {"event": "cell_s')

    def test_read_never_mutates_the_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        self._tear(path)
        before = path.read_bytes()
        view = journal.read()
        assert view.corrupt_lines == 1
        assert path.read_bytes() == before
        assert not journal.quarantine_path.exists()

    def test_append_quarantines_torn_tail_first(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).append("cell_started", cell="a")
        self._tear(path)
        journal = RunJournal(path)  # fresh process resuming the campaign
        journal.append("cell_succeeded", cell="a")
        view = journal.read()
        assert [r["event"] for r in view.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert view.corrupt_lines == 0
        quarantined = journal.quarantine_path.read_text(encoding="utf-8")
        assert '"event": "cell_s' in quarantined

    def test_repair_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        self._tear(path)
        moved = journal.repair()
        assert moved > 0
        assert journal.repair() == 0
        assert journal.repair() == 0
        # Exactly one quarantine line despite three repair calls.
        quarantine = journal.quarantine_path.read_text(encoding="utf-8")
        assert len(quarantine.splitlines()) == 1

    def test_repair_of_clean_or_missing_file_is_a_noop(self, tmp_path):
        journal = RunJournal(tmp_path / "absent.jsonl")
        assert journal.repair() == 0
        journal.append("x")
        assert journal.repair() == 0
        assert not journal.quarantine_path.exists()

    def test_wholly_torn_file_empties_then_regrows_with_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "cell_st', encoding="utf-8")  # no newline
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        view = journal.read()
        assert view.version == JOURNAL_VERSION
        assert [r["event"] for r in view.records] == ["cell_started"]
        assert view.corrupt_lines == 0


class TestInjectedTornAppend:
    def test_torn_fault_leaves_recoverable_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        with inject(FaultPlan().torn(match="cell_succeeded")):
            with pytest.raises(FaultInjectedError):
                journal.append("cell_succeeded", cell="a")
        assert not path.read_bytes().endswith(b"\n")
        view = journal.read()
        assert [r["event"] for r in view.records] == ["cell_started"]
        assert view.corrupt_lines == 1
        # A later writer (the recovery pass) heals and extends the file.
        resumed = RunJournal(path)
        resumed.append("cell_succeeded", cell="a")
        healed = resumed.read()
        assert [r["event"] for r in healed.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert healed.corrupt_lines == 0


class TestErrorFingerprint:
    def test_type_and_first_line(self):
        error = ValueError("bad value\nwith a second line")
        assert error_fingerprint(error) == "ValueError: bad value"

    def test_empty_message(self):
        assert error_fingerprint(KeyError()) == "KeyError: "

    def test_truncates_to_limit(self):
        error = RuntimeError("x" * 500)
        assert len(error_fingerprint(error, limit=50)) == 50
