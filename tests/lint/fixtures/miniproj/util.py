"""Helpers; imports core back to close an import cycle.

``draw`` holds the package's one deliberate RPR010 hazard: an unseeded
generator four calls below ``discover_facts``.
"""

import numpy as np

from . import core  # noqa: F401 — the cycle is the point

__all__ = ["draw", "helper"]


def draw(items):
    rng = np.random.default_rng()
    return rng.choice(list(items))


def helper(x):
    return x + 1
