"""Hyperparameter-grid tests (the machinery behind Figures 7–10)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_MAX_CANDIDATES_GRID,
    PAPER_TOP_N_GRID,
    hyperparameter_grid,
)
from repro.kg import GraphStatistics


class TestPaperGrids:
    def test_values_match_section_431(self):
        assert PAPER_TOP_N_GRID == (100, 200, 300, 400, 500, 700)
        assert PAPER_MAX_CANDIDATES_GRID == (50, 100, 200, 300, 400, 500, 700)


class TestGrid:
    @pytest.fixture(scope="class")
    def points(self, trained_distmult, tiny_graph):
        return hyperparameter_grid(
            trained_distmult,
            tiny_graph,
            strategy="uniform_random",
            top_n_values=(5, 20),
            max_candidates_values=(25, 64),
            seed=0,
            stats=GraphStatistics(tiny_graph.train),
        )

    def test_full_grid_size(self, points):
        assert len(points) == 4

    def test_points_carry_parameters(self, points):
        combos = {(p.top_n, p.max_candidates) for p in points}
        assert combos == {(5, 25), (5, 64), (20, 25), (20, 64)}

    def test_more_top_n_never_fewer_facts(self, points):
        """§4.3.1: raising top_n only adds facts for fixed candidates."""
        by_candidates = {}
        for p in points:
            by_candidates.setdefault(p.max_candidates, {})[p.top_n] = p.num_facts
        for counts in by_candidates.values():
            assert counts[20] >= counts[5]

    def test_to_dict(self, points):
        data = points[0].to_dict()
        assert {"strategy", "top_n", "max_candidates", "mrr"} <= set(data)
