"""Tier-1 gate: the repository's own sources must lint clean.

This is the test that makes the analyzer's invariants binding — RNG
determinism, tape hygiene, and API consistency hold on every change or
the suite fails with the exact ``path:line:col`` of the violation.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_project_config_declares_scan_roots():
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    assert config.paths == (str(REPO_ROOT / "src" / "repro"),)


def test_source_tree_is_lint_clean():
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    engine = LintEngine(config)
    findings = engine.lint_paths(list(config.paths))
    assert findings == [], "unsuppressed lint findings:\n" + "\n".join(
        finding.render() for finding in findings
    )
