"""Training-job tests: losses decrease and models learn above chance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import ModelConfig, TrainConfig, evaluate_ranking, fit, train_model
from repro.kge.base import create_model


class TestTrainConfigValidation:
    def test_bad_job(self):
        with pytest.raises(ValueError):
            TrainConfig(job="contrastive")

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_kvsall_requires_bce(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(ValueError, match="bce"):
            train_model(model, tiny_graph, TrainConfig(job="kvsall", loss="margin"))

    def test_with_replaces_fields(self):
        config = TrainConfig(epochs=5).with_(epochs=9, lr=0.5)
        assert config.epochs == 9 and config.lr == 0.5

    def test_unknown_optimizer(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(KeyError):
            train_model(
                model, tiny_graph, TrainConfig(job="kvsall", loss="bce", optimizer="lion")
            )


class TestLossDecreases:
    @pytest.mark.parametrize(
        "model_name,job,loss",
        [
            ("transe", "negative_sampling", "margin"),
            ("distmult", "negative_sampling", "bce"),
            ("distmult", "kvsall", "bce"),
            ("complex", "kvsall", "bce"),
            ("hole", "kvsall", "bce"),
            ("rescal", "kvsall", "bce"),
        ],
    )
    def test_loss_goes_down(self, tiny_graph, model_name, job, loss):
        result = fit(
            tiny_graph,
            ModelConfig(model_name, dim=16, seed=0),
            TrainConfig(job=job, loss=loss, epochs=12, batch_size=64, lr=0.03),
        )
        assert result.losses[-1] < result.losses[0]
        assert result.epochs_run == 12

    def test_1vsall_loss_goes_down(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=16, seed=0),
            TrainConfig(job="1vsall", loss="softmax", epochs=12, batch_size=64, lr=0.05),
        )
        assert result.losses[-1] < result.losses[0]

    def test_1vsall_requires_softmax(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(ValueError, match="softmax"):
            train_model(model, tiny_graph, TrainConfig(job="1vsall", loss="bce"))

    def test_bernoulli_corruption_trains(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("transe", dim=16, seed=0),
            TrainConfig(
                job="negative_sampling", loss="margin", epochs=10,
                batch_size=64, lr=0.01, corrupt="bernoulli",
            ),
        )
        assert result.losses[-1] < result.losses[0]

    def test_conve_loss_goes_down(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("conve", dim=16, seed=0, options={"num_filters": 8}),
            TrainConfig(job="kvsall", loss="bce", epochs=6, batch_size=64, lr=0.01),
        )
        assert result.losses[-1] < result.losses[0]


class TestLearnedQuality:
    def test_distmult_beats_random(self, trained_distmult, tiny_graph):
        metrics = evaluate_ranking(trained_distmult, tiny_graph)
        random_mrr = float(np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1)))
        assert metrics.mrr > 2 * random_mrr

    def test_transe_beats_random(self, trained_transe, tiny_graph):
        metrics = evaluate_ranking(trained_transe, tiny_graph)
        random_mrr = float(np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1)))
        assert metrics.mrr > 2 * random_mrr

    def test_model_in_eval_mode_after_training(self, trained_distmult):
        assert not trained_distmult.training


class TestEarlyStopping:
    def test_validation_history_recorded(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=8, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=6, batch_size=64, lr=0.05,
                eval_every=2,
            ),
        )
        assert len(result.valid_mrr_history) == 3
        assert result.best_valid_mrr == max(result.valid_mrr_history)

    def test_patience_stops_early(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=8, seed=0),
            # lr=0 would be rejected; use a tiny lr so MRR plateaus and
            # patience triggers.
            TrainConfig(
                job="kvsall", loss="bce", epochs=50, batch_size=64, lr=1e-12,
                eval_every=1, early_stopping_patience=2,
            ),
        )
        assert result.epochs_run < 50


class TestLrDecay:
    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=1.5)

    def test_decay_reduces_effective_lr(self, tiny_graph):
        """With aggressive decay, later epochs barely move the weights."""
        from repro.kge.base import create_model

        def train(decay: float):
            model = create_model(
                "distmult",
                num_entities=tiny_graph.num_entities,
                num_relations=tiny_graph.num_relations,
                dim=8,
                seed=4,
            )
            snapshot_after_one = None
            config = TrainConfig(
                job="kvsall", loss="bce", epochs=8, batch_size=64, lr=0.05,
                lr_decay=decay, seed=0,
            )
            train_model(model, tiny_graph, config)
            return model.entity_matrix().copy()

        decayed = train(0.1)
        constant = train(1.0)
        assert not np.allclose(decayed, constant)


class TestDeterminism:
    def test_same_seed_same_model(self, tiny_graph):
        config = TrainConfig(job="kvsall", loss="bce", epochs=4, batch_size=64, lr=0.05, seed=3)
        a = fit(tiny_graph, ModelConfig("distmult", dim=8, seed=1), config)
        b = fit(tiny_graph, ModelConfig("distmult", dim=8, seed=1), config)
        np.testing.assert_array_equal(
            a.model.entity_matrix(), b.model.entity_matrix()
        )
        assert a.losses == b.losses
