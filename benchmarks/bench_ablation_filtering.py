"""Ablation — filtered vs raw corruption ranking inside discovery.

Algorithm 1 ranks candidates with the filtered protocol (known-true
objects removed from the corruption list, per Bordes et al.).  Under raw
ranking, true triples compete with the candidate and push its rank down,
shrinking the discovered set at the same top_n.
"""

from __future__ import annotations

import numpy as np
from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import create_strategy
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset
from repro.kg.stats import OBJECT, SUBJECT
from repro.kge.evaluation import compute_ranks


def _generate_candidates(graph, strategy_name, max_candidates, seed, stats):
    """One mesh-grid generation pass per relation (Algorithm 1 lines 8–13)."""
    rng = np.random.default_rng(seed)
    strategy = create_strategy(strategy_name)
    strategy.prepare(stats)
    sample_size = int(np.sqrt(max_candidates)) + 10
    out = []
    for relation in graph.train.unique_relations():
        s = strategy.sample(SUBJECT, sample_size, rng)
        o = strategy.sample(OBJECT, sample_size, rng)
        s_grid, o_grid = np.meshgrid(s, o, indexing="ij")
        cand = np.stack(
            [s_grid.ravel(), np.full(s_grid.size, relation), o_grid.ravel()],
            axis=1,
        )
        cand = cand[cand[:, 0] != cand[:, 2]]
        cand = cand[~graph.train.contains(cand)]
        out.append(cand[:max_candidates])
    return np.concatenate(out)


def test_ablation_filtered_vs_raw_ranking(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)
    candidates = _generate_candidates(
        graph, "entity_frequency", MAX_CANDIDATES_DEFAULT, 0, stats
    )

    filtered_ranks = benchmark.pedantic(
        lambda: compute_ranks(
            model, candidates, filter_triples=graph.train, side="object"
        ),
        rounds=1,
        iterations=1,
    )
    raw_ranks = compute_ranks(model, candidates, filter_triples=None, side="object")

    def summarise(name, ranks):
        kept = ranks <= TOP_N_DEFAULT
        return {
            "protocol": name,
            "facts": int(kept.sum()),
            "mrr": round(float((1 / ranks[kept]).mean()) if kept.any() else 0.0, 4),
            "median_rank": float(np.median(ranks)),
        }

    rows = [summarise("filtered (paper)", filtered_ranks), summarise("raw", raw_ranks)]
    save_and_print(
        "ablation_filtering",
        format_table(
            rows,
            title="Ablation — filtered vs raw ranking of the same candidates "
            "(fb15k237-like, DistMult, EF)",
        ),
    )

    # Filtering can only improve (lower) each candidate's rank.
    assert (filtered_ranks <= raw_ranks + 1e-9).all()
    # And therefore never yields fewer facts at the same threshold.
    assert rows[0]["facts"] >= rows[1]["facts"]
