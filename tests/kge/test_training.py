"""Training-job tests: losses decrease and models learn above chance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import ModelConfig, TrainConfig, evaluate_ranking, fit, train_model
from repro.kge.base import create_model
from repro.resilience import GuardConfig, TrainingDivergedError


class TestTrainConfigValidation:
    def test_bad_job(self):
        with pytest.raises(ValueError):
            TrainConfig(job="contrastive")

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_kvsall_requires_bce(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(ValueError, match="bce"):
            train_model(model, tiny_graph, TrainConfig(job="kvsall", loss="margin"))

    def test_with_replaces_fields(self):
        config = TrainConfig(epochs=5).with_(epochs=9, lr=0.5)
        assert config.epochs == 9 and config.lr == 0.5

    def test_unknown_optimizer(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(KeyError):
            train_model(
                model, tiny_graph, TrainConfig(job="kvsall", loss="bce", optimizer="lion")
            )


class TestLossDecreases:
    @pytest.mark.parametrize(
        "model_name,job,loss",
        [
            ("transe", "negative_sampling", "margin"),
            ("distmult", "negative_sampling", "bce"),
            ("distmult", "kvsall", "bce"),
            ("complex", "kvsall", "bce"),
            ("hole", "kvsall", "bce"),
            ("rescal", "kvsall", "bce"),
        ],
    )
    def test_loss_goes_down(self, tiny_graph, model_name, job, loss):
        result = fit(
            tiny_graph,
            ModelConfig(model_name, dim=16, seed=0),
            TrainConfig(job=job, loss=loss, epochs=12, batch_size=64, lr=0.03),
        )
        assert result.losses[-1] < result.losses[0]
        assert result.epochs_run == 12

    def test_1vsall_loss_goes_down(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=16, seed=0),
            TrainConfig(job="1vsall", loss="softmax", epochs=12, batch_size=64, lr=0.05),
        )
        assert result.losses[-1] < result.losses[0]

    def test_1vsall_requires_softmax(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
        )
        with pytest.raises(ValueError, match="softmax"):
            train_model(model, tiny_graph, TrainConfig(job="1vsall", loss="bce"))

    def test_bernoulli_corruption_trains(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("transe", dim=16, seed=0),
            TrainConfig(
                job="negative_sampling", loss="margin", epochs=10,
                batch_size=64, lr=0.01, corrupt="bernoulli",
            ),
        )
        assert result.losses[-1] < result.losses[0]

    def test_conve_loss_goes_down(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("conve", dim=16, seed=0, options={"num_filters": 8}),
            TrainConfig(job="kvsall", loss="bce", epochs=6, batch_size=64, lr=0.01),
        )
        assert result.losses[-1] < result.losses[0]


class TestLearnedQuality:
    def test_distmult_beats_random(self, trained_distmult, tiny_graph):
        metrics = evaluate_ranking(trained_distmult, tiny_graph)
        random_mrr = float(np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1)))
        assert metrics.mrr > 2 * random_mrr

    def test_transe_beats_random(self, trained_transe, tiny_graph):
        metrics = evaluate_ranking(trained_transe, tiny_graph)
        random_mrr = float(np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1)))
        assert metrics.mrr > 2 * random_mrr

    def test_model_in_eval_mode_after_training(self, trained_distmult):
        assert not trained_distmult.training


class TestEarlyStopping:
    def test_validation_history_recorded(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=8, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=6, batch_size=64, lr=0.05,
                eval_every=2,
            ),
        )
        assert len(result.valid_mrr_history) == 3
        assert result.best_valid_mrr == max(result.valid_mrr_history)

    def test_patience_stops_early(self, tiny_graph):
        result = fit(
            tiny_graph,
            ModelConfig("distmult", dim=8, seed=0),
            # lr=0 would be rejected; use a tiny lr so MRR plateaus and
            # patience triggers.
            TrainConfig(
                job="kvsall", loss="bce", epochs=50, batch_size=64, lr=1e-12,
                eval_every=1, early_stopping_patience=2,
            ),
        )
        assert result.epochs_run < 50


class TestLrDecay:
    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=1.5)

    def test_decay_reduces_effective_lr(self, tiny_graph):
        """With aggressive decay, later epochs barely move the weights."""
        from repro.kge.base import create_model

        def train(decay: float):
            model = create_model(
                "distmult",
                num_entities=tiny_graph.num_entities,
                num_relations=tiny_graph.num_relations,
                dim=8,
                seed=4,
            )
            snapshot_after_one = None
            config = TrainConfig(
                job="kvsall", loss="bce", epochs=8, batch_size=64, lr=0.05,
                lr_decay=decay, seed=0,
            )
            train_model(model, tiny_graph, config)
            return model.entity_matrix().copy()

        decayed = train(0.1)
        constant = train(1.0)
        assert not np.allclose(decayed, constant)


class TestDeterminism:
    def test_same_seed_same_model(self, tiny_graph):
        config = TrainConfig(job="kvsall", loss="bce", epochs=4, batch_size=64, lr=0.05, seed=3)
        a = fit(tiny_graph, ModelConfig("distmult", dim=8, seed=1), config)
        b = fit(tiny_graph, ModelConfig("distmult", dim=8, seed=1), config)
        np.testing.assert_array_equal(
            a.model.entity_matrix(), b.model.entity_matrix()
        )
        assert a.losses == b.losses


_GUARD_CONFIG = TrainConfig(
    job="kvsall", loss="bce", epochs=5, batch_size=64, lr=0.05, seed=3
)


def _poison_epochs(monkeypatch, poison_calls, kind="loss"):
    """Script NaNs into training: wrap the real kvsall epoch so specific
    calls return a NaN loss (and poison a parameter for ``kind="params"``),
    exactly like a diverged optimizer step would."""
    import repro.kge.training as training

    real_epoch = training._kvsall_epoch
    calls = {"count": 0}

    def wrapper(model, queries, answers, loss_fn, optimizer, config, rng, batch_flush=False):
        loss = real_epoch(
            model, queries, answers, loss_fn, optimizer, config, rng,
            batch_flush=batch_flush,
        )
        calls["count"] += 1
        if calls["count"] in poison_calls:
            if kind == "params":
                next(iter(model.parameters())).data[0, 0] = np.nan
                return loss
            return float("nan")
        return loss

    monkeypatch.setattr(training, "_kvsall_epoch", wrapper)
    return calls


def _train_guarded(tiny_graph, guard):
    model = create_model(
        "distmult",
        num_entities=tiny_graph.num_entities,
        num_relations=tiny_graph.num_relations,
        dim=8,
        seed=1,
    )
    return model, train_model(model, tiny_graph, _GUARD_CONFIG, guard=guard)


class TestTrainingGuards:
    def test_fault_free_guarded_run_is_bit_identical(self, tiny_graph):
        _, unguarded = _train_guarded(tiny_graph, None)
        _, guarded = _train_guarded(tiny_graph, GuardConfig(policy="retry"))
        np.testing.assert_array_equal(
            unguarded.model.entity_matrix(), guarded.model.entity_matrix()
        )
        assert unguarded.losses == guarded.losses
        assert guarded.guard_report is not None and guarded.guard_report.clean
        assert len(guarded.guard_report.grad_norms) == _GUARD_CONFIG.epochs

    def test_halt_policy_raises_typed_error(self, tiny_graph, monkeypatch):
        _poison_epochs(monkeypatch, {3})
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=1,
        )
        with pytest.raises(TrainingDivergedError, match="nan_loss") as info:
            train_model(model, tiny_graph, _GUARD_CONFIG, guard=GuardConfig(policy="halt"))
        assert info.value.report.halted
        assert info.value.report.events[0].kind == "nan_loss"
        assert info.value.report.events[0].epoch == 2
        # The model is left eval-consistent even on the failure path.
        assert not model.training

    def test_rollback_restores_last_healthy_state(self, tiny_graph, monkeypatch):
        _poison_epochs(monkeypatch, {3})
        model, result = _train_guarded(tiny_graph, GuardConfig(policy="rollback"))
        assert result.rolled_back
        assert result.epochs_run == 2
        assert result.guard_report.rollbacks == 1
        assert not model.training
        assert all(np.all(np.isfinite(v)) for v in model.state_dict().values())
        # Bit-identical to a clean run stopped after the same two epochs.
        reference = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=1,
        )
        train_model(reference, tiny_graph, _GUARD_CONFIG.with_(epochs=2))
        np.testing.assert_array_equal(
            model.entity_matrix(), reference.entity_matrix()
        )

    def test_retry_policy_reruns_the_epoch_and_completes(
        self, tiny_graph, monkeypatch
    ):
        calls = _poison_epochs(monkeypatch, {3})
        model, result = _train_guarded(
            tiny_graph, GuardConfig(policy="retry", max_epoch_retries=2)
        )
        assert result.epochs_run == _GUARD_CONFIG.epochs
        assert result.guard_report.epoch_retries == 1
        assert result.guard_report.events[0].action == "retried"
        assert calls["count"] == _GUARD_CONFIG.epochs + 1  # one extra run
        assert all(np.isfinite(loss) for loss in result.losses)
        assert all(np.all(np.isfinite(v)) for v in model.state_dict().values())
        assert not model.training

    def test_retry_budget_exhaustion_falls_back_to_halt(
        self, tiny_graph, monkeypatch
    ):
        _poison_epochs(monkeypatch, {3, 4, 5})
        with pytest.raises(TrainingDivergedError) as info:
            _train_guarded(tiny_graph, GuardConfig(policy="retry", max_epoch_retries=2))
        assert info.value.report.epoch_retries == 2
        assert info.value.report.halted

    def test_nonfinite_parameters_trigger_the_guard(self, tiny_graph, monkeypatch):
        _poison_epochs(monkeypatch, {2}, kind="params")
        with pytest.raises(TrainingDivergedError, match="nonfinite_params"):
            _train_guarded(tiny_graph, GuardConfig(policy="halt"))

    def test_off_policy_records_nothing(self, tiny_graph):
        _, result = _train_guarded(tiny_graph, GuardConfig(policy="off"))
        assert result.guard_report is None

    def test_negative_sampling_retry_reseeds_the_sampler(
        self, tiny_graph, monkeypatch
    ):
        """The retried epoch draws different negatives (spawned sampler
        stream) yet ends deterministically."""
        import repro.kge.training as training

        real_epoch = training._negative_sampling_epoch
        seen_rngs = []
        calls = {"count": 0}

        def wrapper(
            model, graph, sampler, loss_fn, optimizer, config, rng, batch_flush=False
        ):
            calls["count"] += 1
            seen_rngs.append(sampler.rng)
            loss = real_epoch(
                model, graph, sampler, loss_fn, optimizer, config, rng,
                batch_flush=batch_flush,
            )
            return float("nan") if calls["count"] == 2 else loss

        monkeypatch.setattr(training, "_negative_sampling_epoch", wrapper)
        config = TrainConfig(
            job="negative_sampling", loss="margin", epochs=3, batch_size=64,
            lr=0.01, num_negatives=4, seed=3,
        )
        model = create_model(
            "transe",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=1,
        )
        result = train_model(
            model, tiny_graph, config, guard=GuardConfig(policy="retry")
        )
        assert result.epochs_run == 3
        assert result.guard_report.epoch_retries == 1
        # The retried epoch got a reseeded sampler clone, not the original.
        assert seen_rngs[2] is not seen_rngs[1]
