"""The versioned public API facade.

One stable request/response surface shared by every transport: the
:mod:`repro.serve` HTTP endpoints, the ``repro query`` CLI, and Python
callers.  :mod:`repro.api.types` defines the frozen keyword-only wire
dataclasses (each stamped with ``schema_version``) and the typed
:class:`ApiError` taxonomy; :class:`Session` executes them against a
model registry.

The schema versioning policy (documented in ``docs/api.md``): additive
fields ship within a version because ``from_dict`` rejects unknown keys
on *requests* only the server hasn't learned yet; renames/removals bump
:data:`SCHEMA_VERSION` and the old version is served for one release
behind the same endpoints.
"""

from .session import Session
from .types import (
    SCHEMA_VERSION,
    ApiError,
    BadRequestError,
    ClassifyRequest,
    ClassifyResponse,
    DeadlineError,
    DiscoverRequest,
    DiscoverResponse,
    HealthResponse,
    ModelInfo,
    ModelNotFoundError,
    ModelRef,
    ModelsResponse,
    NotFoundError,
    RankRequest,
    RankResponse,
    WireType,
    config_digest,
    encode_payload,
    request_type_for,
    response_type_for,
)

__all__ = [
    "SCHEMA_VERSION",
    "ApiError",
    "BadRequestError",
    "NotFoundError",
    "ModelNotFoundError",
    "DeadlineError",
    "ModelRef",
    "config_digest",
    "WireType",
    "RankRequest",
    "DiscoverRequest",
    "ClassifyRequest",
    "RankResponse",
    "DiscoverResponse",
    "ClassifyResponse",
    "ModelInfo",
    "ModelsResponse",
    "HealthResponse",
    "encode_payload",
    "request_type_for",
    "response_type_for",
    "Session",
]
