"""Guard-state tests: anomaly detection, snapshots, spawned RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam
from repro.kge.base import create_model
from repro.resilience import (
    GuardConfig,
    TrainingGuard,
    spawn_seed,
    spawn_stream,
)
from repro.resilience.guards import gradient_norm


@pytest.fixture()
def model_and_optimizer():
    model = create_model("distmult", num_entities=10, num_relations=3, dim=4, seed=0)
    optimizer = Adam(list(model.parameters()), lr=0.01)
    return model, optimizer


class TestGuardConfigValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            GuardConfig(policy="panic")

    def test_bad_explosion_factor(self):
        with pytest.raises(ValueError):
            GuardConfig(explosion_factor=1.0)

    def test_bad_retry_budget(self):
        with pytest.raises(ValueError):
            GuardConfig(max_epoch_retries=-1)


class TestSpawnedStreams:
    def test_empty_key_matches_default_rng(self):
        # Attempt 0 of every retried operation must reproduce the
        # historical unretried draws bit for bit.
        np.testing.assert_array_equal(
            spawn_stream(7).random(16), np.random.default_rng(7).random(16)
        )

    def test_distinct_keys_give_distinct_streams(self):
        a = spawn_stream(7, 3, 1).random(16)
        b = spawn_stream(7, 3, 2).random(16)
        assert not np.array_equal(a, b)

    def test_spawned_streams_are_reproducible(self):
        np.testing.assert_array_equal(
            spawn_stream(7, 3, 1).random(16), spawn_stream(7, 3, 1).random(16)
        )

    def test_spawn_seed_identity_and_derivation(self):
        assert spawn_seed(11) == 11
        assert spawn_seed(11, 1) != 11
        assert spawn_seed(11, 1) == spawn_seed(11, 1)
        assert spawn_seed(11, 1) != spawn_seed(11, 2)


class TestAnomalyDetection:
    def test_healthy_epoch_yields_no_event(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig())
        assert guard.inspect(0, 0, 0.7, model, optimizer) is None
        assert guard.report.clean

    def test_nan_loss(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig())
        event = guard.inspect(0, 0, float("nan"), model, optimizer)
        assert event is not None and event.kind == "nan_loss"

    def test_inf_loss(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig())
        event = guard.inspect(0, 0, float("inf"), model, optimizer)
        assert event is not None and event.kind == "nan_loss"

    def test_loss_explosion_relative_to_best(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig(explosion_factor=25.0))
        assert guard.inspect(0, 0, 1.0, model, optimizer) is None
        assert guard.inspect(1, 0, 20.0, model, optimizer) is None
        event = guard.inspect(2, 0, 26.0, model, optimizer)
        assert event is not None and event.kind == "loss_explosion"

    def test_first_epoch_cannot_explode(self, model_and_optimizer):
        # Without a best-so-far reference any finite first loss is healthy.
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig())
        assert guard.inspect(0, 0, 1e12, model, optimizer) is None

    def test_gradient_anomaly(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        for param in optimizer.params:
            param.grad = np.full_like(param.data, 1e7)
        guard = TrainingGuard(GuardConfig(grad_norm_limit=1e6))
        event = guard.inspect(0, 0, 0.5, model, optimizer)
        assert event is not None and event.kind == "grad_anomaly"
        assert guard.report.grad_norms[0] > 1e6

    def test_missing_gradients_are_not_anomalous(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        assert np.isnan(gradient_norm(optimizer))
        guard = TrainingGuard(GuardConfig())
        assert guard.inspect(0, 0, 0.5, model, optimizer) is None

    def test_nonfinite_parameters(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        next(iter(model.parameters())).data[0, 0] = np.nan
        guard = TrainingGuard(GuardConfig())
        event = guard.inspect(0, 0, 0.5, model, optimizer)
        assert event is not None and event.kind == "nonfinite_params"

    def test_parameter_scan_can_be_disabled(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        next(iter(model.parameters())).data[0, 0] = np.nan
        guard = TrainingGuard(GuardConfig(check_parameters=False))
        assert guard.inspect(0, 0, 0.5, model, optimizer) is None


class TestSnapshotRestore:
    def test_roundtrip_covers_optimizer_moments(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        # Materialise non-trivial Adam moments with one real step.
        for param in optimizer.params:
            param.grad = np.ones_like(param.data)
        optimizer.step()

        guard = TrainingGuard(GuardConfig(policy="rollback"))
        assert guard.wants_snapshots
        guard.snapshot(model, optimizer)
        saved_params = {k: v.copy() for k, v in model.state_dict().items()}
        saved_m = [m.copy() for m in optimizer._m]
        saved_t = optimizer._t

        # Poison everything the way a diverged step would.
        for param in optimizer.params:
            param.data[...] = np.nan
        for m in optimizer._m:
            m[...] = np.nan
        optimizer._t += 5

        assert guard.restore(model, optimizer)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, saved_params[key])
        for live, saved in zip(optimizer._m, saved_m):
            np.testing.assert_array_equal(live, saved)
        assert optimizer._t == saved_t

    def test_restore_without_snapshot_is_a_noop(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig(policy="rollback"))
        assert not guard.restore(model, optimizer)

    def test_halt_policy_takes_no_snapshots(self):
        assert not TrainingGuard(GuardConfig(policy="halt")).wants_snapshots


class TestReport:
    def test_mark_updates_counters_and_actions(self, model_and_optimizer):
        model, optimizer = model_and_optimizer
        guard = TrainingGuard(GuardConfig(policy="retry"))
        event = guard.inspect(3, 0, float("nan"), model, optimizer)
        guard.mark(event, "retried")
        assert guard.report.epoch_retries == 1
        assert guard.report.events[-1].action == "retried"
        event = guard.inspect(3, 1, float("nan"), model, optimizer)
        guard.mark(event, "halted")
        assert guard.report.halted
        assert not guard.report.clean

    def test_summary_keys(self):
        summary = TrainingGuard(GuardConfig()).report.summary()
        assert summary["guard_events_count"] == 0
        assert not summary["guard_halted"]
