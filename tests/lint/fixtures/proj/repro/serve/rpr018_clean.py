"""RPR018 clean fixture: bounded waits, lock-owned state, schema payloads."""

from threading import Condition, Event, Lock

_WAIT_SLICE_SECONDS = 0.05


def wait_for_leader(deadline_expired):
    done = Event()
    while not done.wait(timeout=_WAIT_SLICE_SECONDS):
        if deadline_expired():
            raise TimeoutError("deadline exceeded")
    return done


class FlightTable:
    """Shared state lives in an object that owns its lock."""

    def __init__(self):
        self._lock = Lock()
        self._cond = Condition(self._lock)
        self._pending = {}

    def record(self, key, value):
        with self._cond:
            self._pending[key] = value
            self._cond.notify_all()

    def follow(self, key, deadline_expired):
        with self._cond:
            while key not in self._pending:
                if deadline_expired():
                    raise TimeoutError("deadline exceeded")
                self._cond.wait(timeout=_WAIT_SLICE_SECONDS)
            return self._pending[key]


def respond(response):
    # Wire bytes come from the versioned schema types, never a literal.
    return 200, "application/json", response.to_bytes()
