"""Training jobs for KGE models.

Three regimes, selected by :class:`~repro.kge.config.TrainConfig.job`:

* **negative_sampling** — classic corrupt-and-rank training with a
  margin, BCE, or self-adversarial loss (TransE/RotatE's native regime);
* **kvsall** — for every ``(s, r)`` query score all entities and apply a
  multi-label BCE against the set of true objects, the regime under
  which DistMult/ComplEx/ConvE shine;
* **1vsall** — softmax cross-entropy where the true object competes with
  every entity.

All optimisation uses the optimizers from :mod:`repro.autograd.optim`;
the paper trains everything with Adam.

Sparse fast path: ``TrainConfig.sparse_grads`` ("auto" by default)
flips the entity tables named by ``model.sparse_entity_parameters()``
into row-sparse gradient accumulation for the negative-sampling job,
where a batch touches a few hundred of thousands of rows.  Lazy
optimizers (SGD with momentum, Adam) are flushed at every epoch
boundary — before guard inspection, lr decay, evaluation, and early
stopping — and after every batch for models whose ``post_batch_hook``
mutates parameters directly (TransE's row renormalisation).  The sparse
and dense paths produce bit-identical models.

Fault tolerance: passing a :class:`~repro.resilience.GuardConfig` arms
per-epoch divergence guards (NaN/Inf loss, loss explosion,
gradient-norm and parameter sanity).  Depending on the policy a tripped
guard halts with a typed :class:`~repro.resilience.TrainingDivergedError`,
rolls back to the last healthy in-memory snapshot, or retries the epoch
with RNG streams spawned from the base seed — deterministic, but not a
replay of the identical failing draw.  On fault-free runs the guard only
observes, so guarded and unguarded training produce identical models.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..autograd import Adagrad, Adam, Optimizer, SGD
from ..kg.graph import KnowledgeGraph
from ..obs import get_registry, span
from ..resilience import (
    GuardConfig,
    GuardReport,
    TrainingDivergedError,
    TrainingGuard,
    spawn_stream,
)
from ..resilience import faults
from .base import KGEModel, create_model
from .config import ModelConfig, TrainConfig
from .evaluation import evaluate_ranking
from .losses import (
    BCEWithLogitsLoss,
    MarginRankingLoss,
    SelfAdversarialLoss,
    create_loss,
)
from .negative_sampling import NegativeSampler

__all__ = ["TrainingResult", "train_model", "fit"]

logger = logging.getLogger(__name__)


@dataclass
class TrainingResult:
    """What a training run produced."""

    model: KGEModel
    losses: list[float] = field(default_factory=list)
    valid_mrr_history: list[float] = field(default_factory=list)
    best_valid_mrr: float = 0.0
    epochs_run: int = 0
    #: Guard observations (events, per-epoch gradient norms, rollback and
    #: retry counters); ``None`` when training ran unguarded.
    guard_report: GuardReport | None = None
    #: True when the rollback policy restored the last healthy snapshot
    #: and stopped early.
    rolled_back: bool = False


def _make_optimizer(model: KGEModel, config: TrainConfig) -> Optimizer:
    params = list(model.parameters())
    if config.optimizer == "adam":
        return Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "adagrad":
        return Adagrad(params, lr=config.lr)
    if config.optimizer == "sgd":
        return SGD(params, lr=config.lr, momentum=config.momentum)
    raise KeyError(f"unknown optimizer {config.optimizer!r}")


def _enable_sparse_grads(model: KGEModel, config: TrainConfig) -> None:
    """Flip entity-table parameters into row-sparse accumulation.

    ``"auto"`` restricts the fast path to the negative-sampling job: the
    kvsall/1vsall regimes score against *all* entities, so their entity
    gradients are inherently dense and the flag would only add a
    densify round-trip per step.  Lazy optimizers (Adam, SGD with
    momentum) stay enabled even for models whose ``post_batch_hook``
    mutates parameters directly (TransE): the per-batch ``flush()`` that
    hook forces leaves every stale row exactly one step behind, which
    the optimizers replay through a fused in-place kernel that costs no
    more than the dense sweep while still skipping the dense gradient
    materialisation.  ``"on"`` forces the flag regardless of job (still
    bit-identical, just not faster under kvsall/1vsall).
    """
    enable = config.sparse_grads == "on" or (
        config.sparse_grads == "auto" and config.job == "negative_sampling"
    )
    for param in model.sparse_entity_parameters():
        param.sparse_grad = enable
        # Drop any catch-up hook left by a previous training run's
        # optimizer; the new optimizer re-attaches on engagement.
        param._catch_up = None


def _negative_sampling_epoch(
    model: KGEModel,
    graph: KnowledgeGraph,
    sampler: NegativeSampler,
    loss_fn,
    optimizer: Optimizer,
    config: TrainConfig,
    rng: np.random.Generator,
    batch_flush: bool = False,
) -> float:
    triples = graph.train.array
    order = rng.permutation(len(triples))
    total = 0.0
    batches = 0
    registry = get_registry()
    for start in range(0, len(order), config.batch_size):
        batch = triples[order[start : start + config.batch_size]]
        negatives = sampler.sample(batch)
        flat_neg = negatives.reshape(-1, 3)

        optimizer.zero_grad()
        pos_scores = model.score_spo(batch[:, 0], batch[:, 1], batch[:, 2])
        neg_scores = model.score_spo(
            flat_neg[:, 0], flat_neg[:, 1], flat_neg[:, 2]
        ).reshape(len(batch), -1)

        if isinstance(loss_fn, (MarginRankingLoss, SelfAdversarialLoss)):
            loss = loss_fn(pos_scores, neg_scores)
        elif isinstance(loss_fn, BCEWithLogitsLoss):
            from ..autograd import concatenate

            logits = concatenate(
                [pos_scores, neg_scores.reshape(-1)], axis=0
            )
            targets = np.concatenate(
                [np.ones(len(batch)), np.zeros(neg_scores.size)]
            )
            loss = loss_fn(logits, targets)
        else:
            raise TypeError(
                f"negative_sampling job cannot use loss {type(loss_fn).__name__}"
            )
        loss.backward()
        with span("train.step"):
            optimizer.step()
            if batch_flush:
                # The hook below mutates parameters in place (e.g. TransE's
                # row renormalisation), so lazy rows must be settled first.
                optimizer.flush()
        model.post_batch_hook()
        registry.counter("train.batches_count").inc()
        total += loss.item()
        batches += 1
    return total / max(batches, 1)


def _kvsall_queries(graph: KnowledgeGraph) -> tuple[np.ndarray, list[np.ndarray]]:
    """Unique (s, r) and (o, r+K) queries with their true-answer id lists.

    Subject-side queries are folded in through reciprocal relation ids
    ``r + K`` — but only models trained with ``2·K`` relation rows use
    them; here we instead emit object-side queries only, matching the
    paper's object-corruption evaluation protocol.
    """
    index: dict[tuple[int, int], list[int]] = {}
    for s, r, o in graph.train.array:
        index.setdefault((int(s), int(r)), []).append(int(o))
    queries = np.asarray(list(index.keys()), dtype=np.int64)
    answers = [np.asarray(v, dtype=np.int64) for v in index.values()]
    return queries, answers


def _kvsall_epoch(
    model: KGEModel,
    queries: np.ndarray,
    answers: list[np.ndarray],
    loss_fn: BCEWithLogitsLoss,
    optimizer: Optimizer,
    config: TrainConfig,
    rng: np.random.Generator,
    batch_flush: bool = False,
) -> float:
    order = rng.permutation(len(queries))
    total = 0.0
    batches = 0
    n = model.num_entities
    registry = get_registry()
    for start in range(0, len(order), config.batch_size):
        rows = order[start : start + config.batch_size]
        batch = queries[rows]
        targets = np.zeros((len(rows), n))
        for i, row in enumerate(rows):
            targets[i, answers[row]] = 1.0

        optimizer.zero_grad()
        logits = model.score_sp(batch[:, 0], batch[:, 1])
        loss = loss_fn(logits, targets)
        loss.backward()
        with span("train.step"):
            optimizer.step()
            if batch_flush:
                optimizer.flush()
        model.post_batch_hook()
        registry.counter("train.batches_count").inc()
        total += loss.item()
        batches += 1
    return total / max(batches, 1)


def _one_vs_all_epoch(
    model: KGEModel,
    graph: KnowledgeGraph,
    loss_fn,
    optimizer: Optimizer,
    config: TrainConfig,
    rng: np.random.Generator,
    batch_flush: bool = False,
) -> float:
    from .losses import SoftmaxCrossEntropyLoss

    assert isinstance(loss_fn, SoftmaxCrossEntropyLoss)
    triples = graph.train.array
    order = rng.permutation(len(triples))
    total = 0.0
    batches = 0
    registry = get_registry()
    for start in range(0, len(order), config.batch_size):
        batch = triples[order[start : start + config.batch_size]]
        optimizer.zero_grad()
        logits = model.score_sp(batch[:, 0], batch[:, 1])
        loss = loss_fn(logits, batch[:, 2])
        loss.backward()
        with span("train.step"):
            optimizer.step()
            if batch_flush:
                optimizer.flush()
        model.post_batch_hook()
        registry.counter("train.batches_count").inc()
        total += loss.item()
        batches += 1
    return total / max(batches, 1)


def train_model(
    model: KGEModel,
    graph: KnowledgeGraph,
    config: TrainConfig,
    guard: GuardConfig | None = None,
) -> TrainingResult:
    """Train ``model`` on ``graph.train`` according to ``config``.

    Supports optional periodic validation (``eval_every``) with early
    stopping on validation MRR (``early_stopping_patience``), and
    optional per-epoch divergence guards (``guard``; see the module
    docstring for the halt / rollback / retry policies).
    """
    rng = np.random.default_rng(config.seed)
    result = TrainingResult(model=model)
    _enable_sparse_grads(model, config)
    # Models whose post-batch hook mutates parameters directly (TransE's
    # row renormalisation) need lazy optimizer rows settled every batch.
    batch_flush = type(model).post_batch_hook is not KGEModel.post_batch_hook

    sampler: NegativeSampler | None = None
    if config.job == "negative_sampling":
        sampler = NegativeSampler(
            graph.train,
            num_negatives=config.num_negatives,
            corrupt=config.corrupt,
            filter_true=config.filter_negatives,
            seed=config.seed,
        )
        if config.loss == "margin":
            loss_fn = MarginRankingLoss(margin=config.margin)
        elif config.loss == "self_adversarial":
            loss_fn = SelfAdversarialLoss(
                margin=config.margin,
                temperature=config.adversarial_temperature,
            )
        else:
            loss_fn = create_loss(config.loss, label_smoothing=config.label_smoothing)

        def run_epoch(epoch_rng: np.random.Generator, epoch_sampler) -> float:
            return _negative_sampling_epoch(
                model, graph, epoch_sampler, loss_fn, optimizer, config, epoch_rng,
                batch_flush=batch_flush,
            )

    elif config.job == "kvsall":
        if config.loss != "bce":
            raise ValueError("kvsall training requires the 'bce' loss")
        queries, answers = _kvsall_queries(graph)
        loss_fn = BCEWithLogitsLoss(label_smoothing=config.label_smoothing)

        def run_epoch(epoch_rng: np.random.Generator, epoch_sampler) -> float:
            return _kvsall_epoch(
                model, queries, answers, loss_fn, optimizer, config, epoch_rng,
                batch_flush=batch_flush,
            )

    else:  # 1vsall
        if config.loss != "softmax":
            raise ValueError("1vsall training requires the 'softmax' loss")
        from .losses import SoftmaxCrossEntropyLoss

        loss_fn = SoftmaxCrossEntropyLoss()

        def run_epoch(epoch_rng: np.random.Generator, epoch_sampler) -> float:
            return _one_vs_all_epoch(
                model, graph, loss_fn, optimizer, config, epoch_rng,
                batch_flush=batch_flush,
            )

    optimizer = _make_optimizer(model, config)
    guard_state: TrainingGuard | None = None
    if guard is not None and guard.policy != "off":
        guard_state = TrainingGuard(guard)
        result.guard_report = guard_state.report

    best_mrr = 0.0
    epochs_since_best = 0
    model.train()
    epoch = 0
    attempt = 0
    registry = get_registry()
    with span("train"):
        while epoch < config.epochs:
            faults.trigger("train_epoch", epoch)
            if (
                guard_state is not None
                and guard_state.wants_snapshots
                and attempt == 0
            ):
                # The state *entering* the epoch is the last-known-good state.
                guard_state.snapshot(model, optimizer)
            if attempt == 0:
                epoch_rng, epoch_sampler = rng, sampler
            else:
                epoch_rng = spawn_stream(config.seed, epoch, attempt)
                epoch_sampler = (
                    sampler.reseeded(spawn_stream(config.seed, epoch, attempt, 1))
                    if sampler is not None
                    else None
                )
            with span("train.epoch"):
                mean_loss = run_epoch(epoch_rng, epoch_sampler)
                # Settle lazily-deferred sparse rows before anything reads
                # or perturbs state: guard inspection, lr decay,
                # evaluation.  The replay is exact, so flushing here
                # cannot change the final bits.
                optimizer.flush()

            event = (
                guard_state.inspect(epoch, attempt, mean_loss, model, optimizer)
                if guard_state is not None
                else None
            )
            if event is not None:
                registry.counter("train.guard_events_count").inc()
                policy = guard_state.config.policy
                if (
                    policy == "retry"
                    and attempt < guard_state.config.max_epoch_retries
                ):
                    guard_state.restore(model, optimizer)
                    guard_state.mark(event, "retried")
                    logger.warning(
                        "epoch %d %s (%s); retrying with spawned streams "
                        "(attempt %d)",
                        epoch + 1, event.kind, event.detail, attempt + 1,
                    )
                    attempt += 1
                    continue
                if policy == "rollback":
                    guard_state.restore(model, optimizer)
                    guard_state.mark(event, "rolled_back")
                    result.rolled_back = True
                    logger.warning(
                        "epoch %d %s (%s); rolled back to last healthy state "
                        "after %d clean epochs",
                        epoch + 1, event.kind, event.detail, result.epochs_run,
                    )
                    break
                guard_state.mark(event, "halted")
                model.eval()
                raise TrainingDivergedError(
                    f"training diverged at epoch {epoch + 1} "
                    f"({event.kind}: {event.detail})",
                    report=guard_state.report,
                )

            result.losses.append(mean_loss)
            result.epochs_run = epoch + 1
            attempt = 0
            registry.counter("train.epochs_count").inc()
            registry.gauge("train.loss").set(mean_loss)
            if config.lr_decay < 1.0:
                optimizer.lr *= config.lr_decay
            logger.debug(
                "epoch %d/%d: loss=%.4f", epoch + 1, config.epochs, mean_loss
            )
            if config.verbose:
                print(f"epoch {epoch + 1}/{config.epochs}: loss={mean_loss:.4f}")

            should_eval = (
                config.eval_every > 0 and (epoch + 1) % config.eval_every == 0
            )
            if should_eval and len(graph.valid):
                model.eval()
                metrics = evaluate_ranking(model, graph, split="valid")
                model.train()
                mrr = metrics.mrr
                result.valid_mrr_history.append(mrr)
                if mrr > best_mrr:
                    best_mrr = mrr
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                if (
                    config.early_stopping_patience > 0
                    and epochs_since_best >= config.early_stopping_patience
                ):
                    logger.info(
                        "early stopping after epoch %d (best valid MRR %.4f)",
                        epoch + 1,
                        best_mrr,
                    )
                    break
            epoch += 1

    model.eval()
    result.best_valid_mrr = best_mrr
    logger.info(
        "trained %s for %d epochs on %s (final loss %.4f)",
        type(model).__name__,
        result.epochs_run,
        graph.name,
        result.losses[-1] if result.losses else float("nan"),
    )
    return result


def fit(
    graph: KnowledgeGraph,
    model_config: ModelConfig,
    train_config: TrainConfig,
    guard: GuardConfig | None = None,
) -> TrainingResult:
    """Build a model from its config and train it — the one-call API."""
    model = create_model(
        model_config.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=model_config.dim,
        seed=model_config.seed,
        **model_config.options,
    )
    return train_model(model, graph, train_config, guard=guard)
