"""Figure 3 — distribution of node clustering coefficients (paper §4.2.1).

For each dataset: a histogram of the local clustering coefficients and
the dataset average (the red line in the paper).  Expected shape:
WN18RR-like has by far the lowest average (the paper reports 0.059 for
the original), FB15K-237-like the highest.
"""

from __future__ import annotations

import numpy as np
from common import save_and_print

from repro.experiments import ascii_bars, format_table
from repro.kg import GraphStatistics, available_datasets, load_dataset

_BINS = np.linspace(0.0, 1.0, 11)


def test_fig3_clustering_distribution(benchmark):
    largest = load_dataset("yago310-like")
    benchmark.pedantic(
        lambda: GraphStatistics(largest.train).clustering_coefficient,
        rounds=3,
        iterations=1,
    )

    sections = []
    averages = {}
    for name in available_datasets():
        graph = load_dataset(name)
        stats = GraphStatistics(graph.train, backend="sparse")
        coeffs = stats.clustering_coefficient
        averages[name] = float(coeffs.mean())
        hist, _ = np.histogram(coeffs, bins=_BINS)
        labels = [f"[{a:.1f},{b:.1f})" for a, b in zip(_BINS[:-1], _BINS[1:])]
        sections.append(
            ascii_bars(
                labels,
                hist.astype(float),
                title=(
                    f"Figure 3 — clustering coefficients on {name} "
                    f"(average = {averages[name]:.3f})"
                ),
                precision=0,
            )
        )
    summary = format_table(
        [{"dataset": k, "average_clustering": round(v, 4)} for k, v in averages.items()],
        title="Figure 3 — dataset averages (the red lines)",
    )
    save_and_print("fig3_clustering", "\n\n".join(sections) + "\n\n" + summary)

    assert averages["wn18rr-like"] == min(averages.values())
    assert averages["fb15k237-like"] == max(averages.values())
    # The original WN18RR average is 0.059; the replica stays in that
    # sparse regime (an order of magnitude below the dense datasets).
    assert averages["wn18rr-like"] < 0.1
