"""TransE (Bordes et al., 2013): translation-based scoring.

``f(s, r, o) = -d(s + r, o)`` with an L1 or L2 distance; higher is better.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["TransE"]


@register_model("transe")
class TransE(KGEModel):
    """Translation embedding model with selectable distance norm."""

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        seed: int = 0,
        norm: str = "l1",
        normalize_entities: bool = True,
    ) -> None:
        super().__init__(num_entities, num_relations, dim, seed=seed)
        if norm not in ("l1", "l2"):
            raise ValueError(f"norm must be 'l1' or 'l2', got {norm!r}")
        self.norm = norm
        self.normalize_entities = normalize_entities
        if normalize_entities:
            self.entity_embeddings.normalize_rows_()

    def _distance(self, diff: Tensor) -> Tensor:
        if self.norm == "l1":
            return diff.abs().sum(axis=-1)
        return diff.l2_norm(axis=-1)

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        return -self._distance(s_e + r_e - o_e)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        translated = (s_e + r_e).reshape(len(s), 1, self.dim)
        all_entities = self.entity_embeddings.weight.reshape(
            1, self.num_entities, self.dim
        )
        return -self._distance(translated - all_entities)

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        target = (o_e - r_e).reshape(len(r), 1, self.dim)
        all_entities = self.entity_embeddings.weight.reshape(
            1, self.num_entities, self.dim
        )
        return -self._distance(all_entities - target)

    def post_batch_hook(self) -> None:
        if self.normalize_entities:
            self.entity_embeddings.normalize_rows_()

    def config_options(self) -> dict:
        return {"norm": self.norm, "normalize_entities": self.normalize_entities}

    # ------------------------------------------------------------------
    # Fast numpy inference paths
    # ------------------------------------------------------------------
    # The tape-based score_sp/score_po build a (B, N, d) broadcast tensor,
    # which is needed for gradients but ~8× slower than necessary during
    # pure inference (candidate ranking).  These overrides keep the
    # discovery runtime of TransE in line with the other models, matching
    # the paper's observation that the KGE model choice barely affects
    # the discovery runtime.

    def _distances_to_all(self, queries: np.ndarray) -> np.ndarray:
        entities = self.entity_matrix()
        if self.norm == "l1":
            return cdist(queries, entities, metric="cityblock")
        # Same epsilon as the differentiable path so both agree exactly.
        sq = (
            (queries**2).sum(axis=1, keepdims=True)
            + (entities**2).sum(axis=1)
            - 2.0 * queries @ entities.T
        )
        return np.sqrt(np.maximum(sq, 0.0) + 1e-12)

    def scores_sp(self, s: np.ndarray, r: np.ndarray) -> np.ndarray:
        ent, rel = self.entity_matrix(), self.relation_matrix()
        translated = ent[np.asarray(s, dtype=np.int64)] + rel[
            np.asarray(r, dtype=np.int64)
        ]
        return -self._distances_to_all(translated)

    def scores_po(self, r: np.ndarray, o: np.ndarray) -> np.ndarray:
        ent, rel = self.entity_matrix(), self.relation_matrix()
        target = ent[np.asarray(o, dtype=np.int64)] - rel[
            np.asarray(r, dtype=np.int64)
        ]
        return -self._distances_to_all(target)
