"""RESCAL (Nickel et al., 2011): full bilinear factorisation.

``f(s, r, o) = sᵀ R o`` where each relation owns a dense ``d × d`` matrix
``R`` (stored flattened in the relation embedding table).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["RESCAL"]


@register_model("rescal")
class RESCAL(KGEModel):
    """Bilinear model with a full relation matrix per relation."""

    def __init__(
        self, num_entities: int, num_relations: int, dim: int, seed: int = 0
    ) -> None:
        super().__init__(
            num_entities, num_relations, dim, seed=seed, relation_dim=dim * dim
        )

    def _relation_matrices(self, r: np.ndarray) -> Tensor:
        return self.relation_embeddings(r).reshape(len(r), self.dim, self.dim)

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        batch = len(s)
        s_e = self.entity_embeddings(s).reshape(batch, 1, self.dim)
        r_m = self._relation_matrices(r)
        o_e = self.entity_embeddings(o).reshape(batch, self.dim, 1)
        return (s_e @ r_m @ o_e).reshape(batch)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        batch = len(s)
        s_e = self.entity_embeddings(s).reshape(batch, 1, self.dim)
        r_m = self._relation_matrices(r)
        projected = (s_e @ r_m).reshape(batch, self.dim)  # sᵀR per row
        return projected @ self.entity_embeddings.weight.T

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        batch = len(r)
        r_m = self._relation_matrices(r)
        o_e = self.entity_embeddings(o).reshape(batch, self.dim, 1)
        projected = (r_m @ o_e).reshape(batch, self.dim)  # R·o per row
        return projected @ self.entity_embeddings.weight.T
