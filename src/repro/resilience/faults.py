"""Compatibility shim: fault injection moved to :mod:`repro.faults`.

The harness started life here as a test-only helper; once the parallel
fabric needed fault sites of its own (worker dispatch, shared-memory
attach, journal append) it was promoted to a first-class subsystem at
the bottom of the layering.  Existing imports —
``from repro.resilience import faults`` and
``from repro.resilience.faults import FaultPlan, inject`` — keep
working through this module; new code should import
:mod:`repro.faults` directly.
"""

from __future__ import annotations

from ..faults import (  # noqa: F401
    FAULT_PLAN_ENV,
    FaultPlan,
    active_plan,
    clear,
    corrupt_file,
    export_to_env,
    inject,
    install,
    install_from_env,
    stall_seconds,
    torn_append,
    trigger,
)

__all__ = [
    "FaultPlan",
    "FAULT_PLAN_ENV",
    "install",
    "clear",
    "active_plan",
    "inject",
    "trigger",
    "corrupt_file",
    "stall_seconds",
    "torn_append",
    "export_to_env",
    "install_from_env",
]
