"""RPR018 bad fixture: handler habits that break the serving contract."""

import json
from threading import Condition, Event

_PENDING = {}
_SEEN = set()
_TOTAL = 0


def wait_for_leader():
    done = Event()
    done.wait()  # unbounded: leader may have died
    return done


class Flight:
    def __init__(self):
        self._cond = Condition()

    def follow(self):
        with self._cond:
            self._cond.wait()  # unbounded: never re-checks the deadline


def record(key, value):
    global _TOTAL
    _TOTAL += 1
    _SEEN.add(key)
    _PENDING[key] = value
    return json.dumps({"ok": True, "key": key})
