"""RotatE (Sun et al., 2019): rotation in the complex plane.

Each entity is a complex vector, each relation a vector of phases; the
relation acts on the subject by elementwise rotation and the score is the
negative L1 distance of complex moduli::

    f(s, r, o) = -Σ_k | s_k · e^{iθ_k} − o_k |

RotatE models symmetry, antisymmetry, inversion and composition, which
none of the paper's five models can do simultaneously — it is included as
a natural extension of the model zoo.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["RotatE"]


@register_model("rotate")
class RotatE(KGEModel):
    """Complex-rotation model with phase-valued relations."""

    def __init__(
        self, num_entities: int, num_relations: int, dim: int, seed: int = 0
    ) -> None:
        if dim % 2 != 0:
            raise ValueError(f"RotatE needs an even dim (re/im halves), got {dim}")
        super().__init__(
            num_entities, num_relations, dim, seed=seed, relation_dim=dim // 2
        )
        self.rank = dim // 2
        # Phases initialised uniformly over the circle.
        self.relation_embeddings.weight.data[...] = self.rng.uniform(
            -np.pi, np.pi, size=(num_relations, self.rank)
        )

    def _split(self, emb: Tensor) -> tuple[Tensor, Tensor]:
        h = self.rank
        return emb[:, :h], emb[:, h:]

    def _rotated(self, s: np.ndarray, r: np.ndarray) -> tuple[Tensor, Tensor]:
        """Real/imag parts of s rotated by r's phases."""
        s_re, s_im = self._split(self.entity_embeddings(s))
        phases = self.relation_embeddings(r)
        cos, sin = phases.cos(), phases.sin()
        return s_re * cos - s_im * sin, s_re * sin + s_im * cos

    @staticmethod
    def _modulus_distance(
        re_a: Tensor, im_a: Tensor, re_b: Tensor, im_b: Tensor
    ) -> Tensor:
        d_re = re_a - re_b
        d_im = im_a - im_b
        return ((d_re * d_re + d_im * d_im) + 1e-12).sqrt().sum(axis=-1)

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        rot_re, rot_im = self._rotated(s, r)
        o_re, o_im = self._split(self.entity_embeddings(o))
        return -self._modulus_distance(rot_re, rot_im, o_re, o_im)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        rot_re, rot_im = self._rotated(s, r)
        batch = len(s)
        ent = self.entity_embeddings.weight
        h = self.rank
        all_re = ent[:, :h].reshape(1, self.num_entities, h)
        all_im = ent[:, h:].reshape(1, self.num_entities, h)
        return -self._modulus_distance(
            rot_re.reshape(batch, 1, h), rot_im.reshape(batch, 1, h),
            all_re, all_im,
        )

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        # Invert the rotation: s = o · e^{-iθ}.
        o_re, o_im = self._split(self.entity_embeddings(o))
        phases = self.relation_embeddings(r)
        cos, sin = phases.cos(), phases.sin()
        back_re = o_re * cos + o_im * sin
        back_im = -o_re * sin + o_im * cos
        batch = len(r)
        ent = self.entity_embeddings.weight
        h = self.rank
        all_re = ent[:, :h].reshape(1, self.num_entities, h)
        all_im = ent[:, h:].reshape(1, self.num_entities, h)
        return -self._modulus_distance(
            back_re.reshape(batch, 1, h), back_im.reshape(batch, 1, h),
            all_re, all_im,
        )

    # Fast numpy inference paths (same rationale as TransE's).
    def _fast_all_distance(self, re_q: np.ndarray, im_q: np.ndarray) -> np.ndarray:
        ent = self.entity_matrix()
        h = self.rank
        all_re = ent[:, :h]
        all_im = ent[:, h:]
        d_re = re_q[:, None, :] - all_re[None, :, :]
        d_im = im_q[:, None, :] - all_im[None, :, :]
        return np.sqrt(d_re**2 + d_im**2 + 1e-12).sum(axis=-1)

    def scores_sp(self, s: np.ndarray, r: np.ndarray) -> np.ndarray:
        ent, rel = self.entity_matrix(), self.relation_matrix()
        h = self.rank
        s = np.asarray(s, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        s_re, s_im = ent[s, :h], ent[s, h:]
        cos, sin = np.cos(rel[r]), np.sin(rel[r])
        return -self._fast_all_distance(
            s_re * cos - s_im * sin, s_re * sin + s_im * cos
        )

    def scores_po(self, r: np.ndarray, o: np.ndarray) -> np.ndarray:
        ent, rel = self.entity_matrix(), self.relation_matrix()
        h = self.rank
        o = np.asarray(o, dtype=np.int64)
        r = np.asarray(r, dtype=np.int64)
        o_re, o_im = ent[o, :h], ent[o, h:]
        cos, sin = np.cos(rel[r]), np.sin(rel[r])
        return -self._fast_all_distance(
            o_re * cos + o_im * sin, -o_re * sin + o_im * cos
        )
