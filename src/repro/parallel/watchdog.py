"""Watchdog primitives: crash/timeout errors and the worker heartbeat board.

The scheduler's supervision loop (:mod:`repro.parallel.scheduler`) has
to distinguish three ways a cell can fail to return:

* the worker **died** (``BrokenProcessPool``) → :class:`WorkerCrashError`;
* the cell **overshot its wall-clock deadline** → the watchdog kills the
  pool and records :class:`CellTimeoutError`;
* the whole pool went **quiet** (a worker wedged in a syscall, a
  deadlocked import) → heartbeat staleness, same kill path.

:class:`CellTimeoutError` deliberately subclasses
:class:`WorkerCrashError`: a timed-out cell is *mechanically* a killed
worker, so the scheduler's existing crash policy (retry within the
attempt budget in both ``on_error`` modes, degrade or raise once the
budget is spent) applies unchanged.

The :class:`HeartbeatBoard` is a tiny shared-memory array of per-slot
beat counters.  Workers bump their slot (``pid % slots``) around every
cell; the parent snapshots the board and treats "no slot moved while
work was in flight" as a stall.  Slot collisions between workers are
harmless — the board answers "is anyone alive", not "who".
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from .. import faults
from ..resilience import ResilienceError
from . import registry

__all__ = ["WorkerCrashError", "CellTimeoutError", "HeartbeatBoard"]


class WorkerCrashError(ResilienceError):
    """A worker process died (segfault, OOM-kill, os._exit) mid-cell."""


class CellTimeoutError(WorkerCrashError):
    """The watchdog killed a cell that overshot its deadline or stalled."""


class HeartbeatBoard:
    """A shared array of beat counters for pool-liveness detection."""

    SLOTS = 64
    _DTYPE = np.uint64

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._slots = np.ndarray((self.SLOTS,), dtype=self._DTYPE, buffer=shm.buf)

    @classmethod
    def create(cls) -> "HeartbeatBoard":
        """Parent side: allocate, zero, and register a fresh board."""
        size = cls.SLOTS * np.dtype(cls._DTYPE).itemsize
        shm = shared_memory.SharedMemory(
            create=True, name=registry.allocate_name(), size=size
        )
        registry.register_segment(shm)
        board = cls(shm, owner=True)
        board._slots[:] = 0
        return board

    @classmethod
    def attach(cls, name: str) -> "HeartbeatBoard":
        """Worker side: map an existing board by segment name."""
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def beat(self) -> None:
        """Bump this process's slot (not atomic; single writer per slot)."""
        slot = os.getpid() % self.SLOTS
        faults.trigger("heartbeat_emit", str(slot))
        self._slots[slot] += 1

    def snapshot(self) -> bytes:
        """The board state as comparable bytes (changed ⇒ someone beat)."""
        return self._slots.tobytes()

    def close(self) -> None:
        """Release the mapping; the owner also destroys the segment.

        Idempotent, and tolerant of the segment already being gone.
        """
        if self._closed:
            return
        self._closed = True
        # Views alias shm.buf; drop them before closing or mmap refuses.
        self._slots = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            registry.unregister_segment(self._shm.name)

    def __enter__(self) -> "HeartbeatBoard":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
