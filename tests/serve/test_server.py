"""HTTP endpoints end to end: typed responses, error envelopes, client mapping."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    ClassifyRequest,
    DiscoverRequest,
    RankRequest,
)
from repro.api.types import (
    SCHEMA_VERSION,
    BadRequestError,
    ModelNotFoundError,
    NotFoundError,
)
from repro.obs import MetricsRegistry, use_registry
from repro.serve import ServeApp, ServeClient, ServeClientError, start_server


@pytest.fixture()
def app(session):
    return ServeApp(session)


@pytest.fixture()
def server(session):
    with use_registry(MetricsRegistry()):
        server = start_server(
            session, port=0, max_workers=4, observability=False
        )
        try:
            yield server
        finally:
            server.close()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout_seconds=30.0)


def _decode(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))


class TestAppEnvelopes:
    """Transport-agnostic handling: every outcome is schema bytes."""

    def test_unknown_route_is_a_404_envelope(self, app):
        status, content_type, payload = app.handle("GET", "/nope", b"")
        assert status == 404
        assert content_type == "application/json"
        body = _decode(payload)
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["error"]["code"] == "not_found"

    def test_unknown_endpoint_404s_before_parsing(self, app):
        status, _, payload = app.handle("POST", "/v1/nope", b"{broken")
        assert status == 404
        assert _decode(payload)["error"]["code"] == "not_found"

    def test_invalid_json_body_is_a_400(self, app):
        status, _, payload = app.handle("POST", "/v1/rank", b"{broken")
        assert status == 400
        assert _decode(payload)["error"]["code"] == "bad_request"

    def test_non_object_body_is_a_400(self, app):
        status, _, payload = app.handle("POST", "/v1/rank", b"[1, 2]")
        assert status == 400
        assert "JSON object" in _decode(payload)["error"]["message"]

    def test_unknown_model_is_a_model_not_found(self, app, test_triples):
        body = json.dumps(
            {"model": "tiny/transe", "triples": list(map(list, test_triples))}
        ).encode()
        status, _, payload = app.handle("POST", "/v1/rank", body)
        assert status == 404
        assert _decode(payload)["error"]["code"] == "model_not_found"

    def test_unsupported_method_is_a_404(self, app):
        status, _, payload = app.handle("DELETE", "/v1/rank", b"")
        assert status == 404

    def test_healthz(self, app):
        status, _, payload = app.handle("GET", "/healthz", b"")
        assert status == 200
        body = _decode(payload)
        assert body["status"] == "ok"
        assert body["models_count"] == 1


class TestHttpEndpoints:
    def test_health_round_trip(self, client):
        health = client.health()
        assert health.status == "ok"
        assert health.models_count == 1

    def test_models_catalogue(self, client, model_id):
        models = client.models()
        (info,) = models.models
        assert info.model_id == model_id
        assert info.model == "distmult"
        assert info.entities_count == 40

    def test_rank_matches_in_process_session(
        self, client, session, model_id, test_triples
    ):
        request = RankRequest(model=model_id, triples=test_triples)
        served = client.rank(request)
        direct = session.rank(request)
        assert served == direct  # bit-identical across transports

    def test_rank_matches_offline_engine(
        self, client, model_id, test_triples, trained_distmult, tiny_graph
    ):
        from repro.kge.ranking import RankingEngine

        served = client.rank(RankRequest(model=model_id, triples=test_triples))
        offline = RankingEngine().compute_ranks(
            trained_distmult,
            np.asarray(test_triples, dtype=np.int64),
            filter_triples=tiny_graph.train,
            side="object",
        )
        np.testing.assert_array_equal(np.asarray(served.ranks), offline)

    def test_discover_matches_offline_protocol(
        self, client, model_id, trained_distmult, tiny_graph
    ):
        from repro.discovery import discover_facts

        request = DiscoverRequest(
            model=model_id, strategy="entity_frequency", top_n=15,
            max_candidates=100, seed=0,
        )
        served = client.discover(request)
        offline = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=15, max_candidates=100, seed=0,
        )
        assert served.facts == tuple(
            (int(s), int(r), int(o)) for s, r, o in offline.facts
        )
        np.testing.assert_array_equal(np.asarray(served.ranks), offline.ranks)
        assert served.candidates_generated_count == offline.candidates_generated

    def test_classify_labels_match_threshold(self, client, model_id, test_triples):
        response = client.classify(
            ClassifyRequest(model=model_id, triples=test_triples)
        )
        assert len(response.scores) == len(test_triples)
        for score, label in zip(response.scores, response.labels):
            assert label == (score >= response.threshold)

    def test_metrics_exposition(self, client, model_id, test_triples):
        client.rank(RankRequest(model=model_id, triples=test_triples))
        text = client.metrics()
        assert "# TYPE repro_serve_requests_count counter" in text
        assert "repro_serve_model_loads_count" in text

    def test_sequential_requests_reuse_the_connection_state(
        self, client, model_id, test_triples
    ):
        request = RankRequest(model=model_id, triples=test_triples)
        first = client.rank(request)
        second = client.rank(request)
        assert first == second


class TestClientErrorMapping:
    def test_unknown_model_raises_typed_error(self, client, test_triples):
        with pytest.raises(ModelNotFoundError):
            client.rank(RankRequest(model="tiny/transe", triples=test_triples))

    def test_unknown_endpoint_raises_not_found(self, client):
        with pytest.raises(NotFoundError):
            client.post("nope", {"model": "tiny/distmult"})

    def test_unknown_keys_raise_bad_request(self, client):
        with pytest.raises(BadRequestError, match="unknown keys"):
            client.post("rank", {"model": "tiny/distmult", "bogus": 1})

    def test_unreachable_server_raises_transport_error(self):
        dead = ServeClient("http://127.0.0.1:9", timeout_seconds=0.5)
        with pytest.raises(ServeClientError):
            dead.health()


class TestLifecycle:
    def test_close_is_idempotent_and_releases_the_port(self, session):
        with use_registry(MetricsRegistry()):
            server = start_server(session, port=0, observability=False)
            url = server.url
            client = ServeClient(url, timeout_seconds=5.0)
            assert client.health().status == "ok"
            server.close()
            server.close()  # second close is a no-op
            with pytest.raises(ServeClientError):
                client.health()

    def test_unstarted_server_close_does_not_hang(self, session):
        from repro.serve import DiscoveryServer

        server = DiscoveryServer(ServeApp(session))
        server.close()  # must return promptly without serve_forever running
