"""Gradient-descent optimizers for the autodiff engine.

The paper trains all embedding models with Adam; SGD and Adagrad are
provided for completeness since the paper lists them as the widely-used
alternatives.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011)."""

    def __init__(self, params: Iterable[Tensor], lr: float, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, accum in zip(self.params, self._accum):
            if param.grad is None:
                continue
            accum += param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
