"""RPR017 bad fixture: dense materialisation of graph-scale matrices."""

import numpy as np


def densify_adjacency(adj):
    return adj.toarray()  # finding 1: dense N×N copy


def matrix_power(adj):
    squared = (adj @ adj).todense()  # finding 2: dense two-hop matrix
    return squared


def score_all_pairs(n):
    scores = np.zeros((n, n))  # finding 3: square variable alloc
    return scores


def pair_mask(num_entities):
    mask = np.full((num_entities, num_entities), False)  # finding 4
    return mask
