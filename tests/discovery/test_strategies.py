"""Sampling-strategy tests: exact weight formulas on hand-built graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import GraphStatistics, TripleSet
from repro.kg.stats import OBJECT, SUBJECT
from repro.discovery import (
    STRATEGY_ABBREVIATIONS,
    available_strategies,
    create_strategy,
)


def stats_for(triples, n, k=1) -> GraphStatistics:
    return GraphStatistics(
        TripleSet(np.asarray(triples, dtype=np.int64), n, k), backend="sparse"
    )


class TestRegistry:
    def test_paper_strategies_first_in_paper_order(self):
        assert available_strategies()[:6] == [
            "uniform_random",
            "entity_frequency",
            "graph_degree",
            "cluster_coefficient",
            "cluster_triangles",
            "cluster_squares",
        ]

    def test_extension_strategies_registered(self):
        extensions = {"tempered_frequency", "inverse_frequency", "pagerank"}
        assert extensions <= set(available_strategies())

    def test_abbreviations_cover_all(self):
        assert set(STRATEGY_ABBREVIATIONS) == set(available_strategies())

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            create_strategy("betweenness")

    def test_use_before_prepare_raises(self):
        strategy = create_strategy("uniform_random")
        with pytest.raises(RuntimeError):
            strategy.distribution(SUBJECT)

    def test_invalid_side_raises(self):
        strategy = create_strategy("uniform_random")
        strategy.prepare(stats_for([[0, 0, 1]], 3))
        with pytest.raises(ValueError):
            strategy.distribution("middle")


class TestUniformRandom:
    def test_equal_weights_over_side_pool(self):
        # Subjects: {0, 1}; objects: {1, 2, 3}.
        strategy = create_strategy("uniform_random")
        strategy.prepare(stats_for([[0, 0, 1], [1, 0, 2], [1, 0, 3]], 5))
        pool_s, probs_s = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(pool_s, [0, 1])
        np.testing.assert_allclose(probs_s, 0.5)
        pool_o, probs_o = strategy.distribution(OBJECT)
        np.testing.assert_array_equal(pool_o, [1, 2, 3])
        np.testing.assert_allclose(probs_o, 1.0 / 3.0)

    def test_sides_may_differ(self):
        """The paper notes an entity's weight may differ per side."""
        strategy = create_strategy("uniform_random")
        strategy.prepare(stats_for([[0, 0, 1], [1, 0, 2], [1, 0, 3]], 5))
        _, probs_s = strategy.distribution(SUBJECT)
        _, probs_o = strategy.distribution(OBJECT)
        assert probs_s[0] != probs_o[0]


class TestEntityFrequency:
    def test_weights_proportional_to_counts(self):
        # Subject counts: 0 appears 3×, 1 appears 1×.
        strategy = create_strategy("entity_frequency")
        strategy.prepare(
            stats_for([[0, 0, 1], [0, 0, 2], [0, 0, 3], [1, 0, 2]], 5)
        )
        pool, probs = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(pool, [0, 1])
        np.testing.assert_allclose(probs, [0.75, 0.25])

    def test_is_side_aware(self):
        assert create_strategy("entity_frequency").side_aware


class TestGraphDegree:
    def test_weights_proportional_to_degree(self, star_triples):
        strategy = create_strategy("graph_degree")
        strategy.prepare(GraphStatistics(star_triples, backend="sparse"))
        pool, probs = strategy.distribution(SUBJECT)
        # Hub degree 4, leaves degree 1 each: total 8.
        hub = probs[pool == 0]
        np.testing.assert_allclose(hub, 0.5)

    def test_sides_identical(self, star_triples):
        strategy = create_strategy("graph_degree")
        strategy.prepare(GraphStatistics(star_triples, backend="sparse"))
        pool_s, probs_s = strategy.distribution(SUBJECT)
        pool_o, probs_o = strategy.distribution(OBJECT)
        np.testing.assert_array_equal(pool_s, pool_o)
        np.testing.assert_array_equal(probs_s, probs_o)

    def test_not_side_aware(self):
        assert not create_strategy("graph_degree").side_aware


class TestClusteringTriangles:
    def test_triangle_nodes_weighted(self, triangle_triples):
        strategy = create_strategy("cluster_triangles")
        strategy.prepare(GraphStatistics(triangle_triples, backend="sparse"))
        pool, probs = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(pool, [0, 1, 2])
        np.testing.assert_allclose(probs, 1.0 / 3.0)

    def test_triangle_free_graph_falls_back_to_uniform(self, star_triples):
        strategy = create_strategy("cluster_triangles")
        strategy.prepare(GraphStatistics(star_triples, backend="sparse"))
        pool, probs = strategy.distribution(SUBJECT)
        assert len(pool) == 5
        np.testing.assert_allclose(probs, 0.2)


class TestClusteringCoefficient:
    def test_star_hub_gets_zero_weight(self):
        """The paper's core criticism: popular hub, clustering weight 0."""
        # Star (hub 0) plus a triangle among 5, 6, 7 so not all weights
        # vanish.
        triples = [[0, 0, 1], [0, 0, 2], [0, 0, 3], [0, 0, 4],
                   [5, 0, 6], [6, 0, 7], [7, 0, 5]]
        strategy = create_strategy("cluster_coefficient")
        strategy.prepare(stats_for(triples, 8))
        pool, probs = strategy.distribution(SUBJECT)
        assert 0 not in pool  # hub excluded: weight zero
        np.testing.assert_array_equal(pool, [5, 6, 7])


class TestClusteringSquares:
    def test_square_nodes_weighted(self, square_triples):
        strategy = create_strategy("cluster_squares")
        strategy.prepare(GraphStatistics(square_triples, backend="sparse"))
        pool, probs = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(pool, [0, 1, 2, 3])
        np.testing.assert_allclose(probs, 0.25)


class TestRelationScopedFrequency:
    def test_scoped_pools_match_relation_domain_range(self):
        # Relation 0: subjects {0, 1}, objects {5}.  Relation 1: subjects
        # {2}, objects {6, 7}.
        triples = [[0, 0, 5], [1, 0, 5], [2, 1, 6], [2, 1, 7]]
        strategy = create_strategy("relation_frequency")
        strategy.prepare(stats_for(triples, 10, k=2))
        pool_s, _ = strategy.distribution(SUBJECT, relation=0)
        np.testing.assert_array_equal(pool_s, [0, 1])
        pool_o, _ = strategy.distribution(OBJECT, relation=0)
        np.testing.assert_array_equal(pool_o, [5])
        pool_s1, _ = strategy.distribution(SUBJECT, relation=1)
        np.testing.assert_array_equal(pool_s1, [2])

    def test_weights_proportional_to_scoped_counts(self):
        triples = [[0, 0, 5], [0, 0, 6], [0, 0, 7], [1, 0, 5]]
        strategy = create_strategy("relation_frequency")
        strategy.prepare(stats_for(triples, 10, k=1))
        pool, probs = strategy.distribution(SUBJECT, relation=0)
        by_entity = dict(zip(pool.tolist(), probs.tolist()))
        assert by_entity[0] == pytest.approx(0.75)
        assert by_entity[1] == pytest.approx(0.25)

    def test_unknown_relation_falls_back_to_global(self):
        triples = [[0, 0, 5], [1, 0, 6]]
        strategy = create_strategy("relation_frequency")
        strategy.prepare(stats_for(triples, 10, k=3))
        scoped = strategy.distribution(SUBJECT, relation=2)  # never observed
        global_dist = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(scoped[0], global_dist[0])

    def test_no_relation_argument_is_global(self):
        triples = [[0, 0, 5], [1, 1, 6]]
        strategy = create_strategy("relation_frequency")
        strategy.prepare(stats_for(triples, 10, k=2))
        pool, _ = strategy.distribution(SUBJECT)
        np.testing.assert_array_equal(pool, [0, 1])

    def test_discovery_candidates_respect_domain_range(
        self, trained_distmult, tiny_graph
    ):
        from repro.discovery import RuleFilter, discover_facts

        result = discover_facts(
            trained_distmult, tiny_graph, strategy="relation_frequency",
            top_n=tiny_graph.num_entities, max_candidates=100, seed=0,
        )
        if result.num_facts:
            rules = RuleFilter(tiny_graph.train, functional_threshold=0.0)
            # Domain/range rules only (threshold 0 disables functional).
            for relation in np.unique(result.facts[:, 1]):
                rel_facts = result.facts[result.facts[:, 1] == relation]
                assert np.isin(rel_facts[:, 0], rules.domain(int(relation))).all()
                assert np.isin(rel_facts[:, 2], rules.range(int(relation))).all()


class TestSampling:
    def test_sample_without_replacement_when_pool_allows(self):
        strategy = create_strategy("uniform_random")
        strategy.prepare(stats_for([[i, 0, (i + 1) % 10] for i in range(10)], 10))
        rng = np.random.default_rng(0)
        sample = strategy.sample(SUBJECT, 5, rng)
        assert len(sample) == 5
        assert len(np.unique(sample)) == 5

    def test_sample_caps_at_pool_size(self):
        strategy = create_strategy("uniform_random")
        strategy.prepare(stats_for([[0, 0, 1], [1, 0, 2]], 5))
        rng = np.random.default_rng(0)
        sample = strategy.sample(SUBJECT, 100, rng)
        assert set(sample) == {0, 1}

    def test_frequency_sampling_prefers_frequent(self):
        triples = [[0, 0, i] for i in range(1, 9)] + [[1, 0, 2]]
        strategy = create_strategy("entity_frequency")
        strategy.prepare(stats_for(triples, 10))
        rng = np.random.default_rng(0)
        draws = [strategy.sample(SUBJECT, 1, rng)[0] for _ in range(200)]
        counts = np.bincount(draws, minlength=2)
        assert counts[0] > counts[1]
