"""Compare all sampling strategies on one dataset — a mini Figure 4/6.

Trains one model and runs every strategy (including the expensive
CLUSTERING SQUARES that the paper excludes from its main experiments),
then prints the quality/efficiency comparison.

Usage::

    python examples/strategy_comparison.py [dataset] [model]

defaults: fb15k237-like distmult
"""

from __future__ import annotations

import sys

from repro.discovery import STRATEGY_ABBREVIATIONS, available_strategies, discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset


def main(dataset: str = "fb15k237-like", model_name: str = "distmult") -> None:
    print(f"dataset={dataset}, model={model_name}")
    graph = load_dataset(dataset)
    model = get_trained_model(dataset, model_name, graph=graph)

    rows = []
    for strategy in available_strategies():
        # Fresh statistics per run: each strategy pays its own weight cost,
        # as in the paper's runtime measurements.
        result = discover_facts(
            model,
            graph,
            strategy=strategy,
            top_n=50,
            max_candidates=500,
            seed=0,
            stats=GraphStatistics(graph.train),
        )
        rows.append(
            {
                "strategy": f"{STRATEGY_ABBREVIATIONS[strategy]} ({strategy})",
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "weight_s": round(result.weight_seconds, 3),
                "runtime_s": round(result.runtime_seconds, 3),
                "facts_per_hour": round(result.efficiency_facts_per_hour()),
            }
        )

    rows.sort(key=lambda r: r["mrr"], reverse=True)
    print()
    print(format_table(rows, title=f"Sampling strategies on {dataset} + {model_name}"))
    print(
        "\nExpected shape (paper §4.2): EF/CT/GD at the top on MRR, "
        "UR/CC at the bottom; CS pays the largest weight cost."
    )


if __name__ == "__main__":
    main(*sys.argv[1:3])
