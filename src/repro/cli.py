"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``datasets`` — list the built-in replica datasets with shape statistics;
* ``analyze`` — full structural report of a dataset, including relation
  cardinalities and inverse-relation test-leakage detection;
* ``protocol`` — held-out discovery evaluation (hide → train → discover →
  recall/precision);
* ``train`` — train a KGE model on a dataset and checkpoint it;
* ``evaluate`` — link-prediction metrics of a checkpoint on a split;
* ``discover`` — run fact discovery with a checkpointed model;
* ``compare`` — compare sampling strategies on one dataset/model;
* ``grid`` — sweep the ``top_n`` × ``max_candidates`` hyperparameter grid;
* ``journal`` — summarise a campaign run-journal (completed / failed /
  in-flight cells with failure fingerprints);
* ``chaos`` — run a seeded fault schedule (worker SIGKILL, poisoned
  shared-memory attach, torn journal write) against a small campaign and
  assert the recovery invariants: no orphaned shared-memory segments,
  a replayable journal, and post-recovery results bit-identical to a
  fault-free run;
* ``serve`` — serve checkpoints over HTTP: a long-lived query server with
  a model registry, request coalescing and live ``/metrics``;
* ``query`` — one-shot typed client against a running ``repro serve``;
* ``lint`` — run the domain-aware static analyser (``repro.lint``) over
  the codebase; all arguments are forwarded to ``repro-lint``.

Long campaigns are resumable: ``repro reproduce --journal run.jsonl``
journals every matrix cell, and re-running the same command after a
crash skips completed cells and re-attempts failed ones (see
:mod:`repro.resilience`).

Any ``DATASET`` argument accepts either a registry name
(``fb15k237-like``, …) or a path to a directory of
``train.txt``/``valid.txt``/``test.txt`` TSV files.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .discovery import (
    STRATEGY_ABBREVIATIONS,
    available_strategies,
    create_strategy,
    discover_facts,
)
from .experiments import format_table, hyperparameter_grid
from .kg import (
    DATASET_PROFILES,
    GraphStatistics,
    KnowledgeGraph,
    load_dataset,
)
from .kge import (
    ModelConfig,
    TrainConfig,
    available_models,
    evaluate_ranking,
    fit,
    load_model,
    save_model,
)

__all__ = ["main", "build_parser"]


@contextmanager
def _metrics_sink(path: str | None):
    """Enable observability for one command and write the snapshot on exit.

    A fresh registry keeps the snapshot scoped to this command (nothing
    from imports or earlier runs leaks in).  The snapshot is written even
    when the command fails, so a crashed run still leaves its telemetry.
    """
    if path is None:
        yield
        return
    from .obs import MetricsRegistry, use_registry, write_snapshot

    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            yield
    finally:
        write_snapshot(registry, path)
        print(f"metrics snapshot written to {path}")


def _load_graph(name: str) -> KnowledgeGraph:
    """Resolve a dataset argument: registry name, TSV dir, or KG store."""
    from .kg import resolve_dataset

    try:
        return resolve_dataset(name)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_PROFILES:
        graph = load_dataset(name)
        stats = GraphStatistics(graph.train)
        rows.append(
            {
                "dataset": name,
                "entities": graph.num_entities,
                "relations": graph.num_relations,
                "train": len(graph.train),
                "valid": len(graph.valid),
                "test": len(graph.test),
                "avg_clustering": round(stats.average_clustering, 4),
                "complement": graph.complement_size(),
            }
        )
    print(format_table(rows, title="Built-in dataset replicas"))
    return 0


def _cmd_store_generate(args: argparse.Namespace) -> int:
    from .kg import (
        DATASET_PROFILES,
        FULL_SCALE_PROFILES,
        generate_kg_streaming,
        kg_store_exists,
        scale_profile,
    )

    profile = FULL_SCALE_PROFILES.get(args.profile) or DATASET_PROFILES.get(
        args.profile
    )
    if profile is None:
        raise SystemExit(
            f"error: unknown profile {args.profile!r}; available: "
            f"{sorted(DATASET_PROFILES) + sorted(FULL_SCALE_PROFILES)}"
        )
    if args.scale != 1.0:
        profile = scale_profile(profile, args.scale)
    out = Path(args.out)
    if kg_store_exists(out) and not args.force:
        raise SystemExit(
            f"error: {out} already holds a KG store (use --force to regenerate)"
        )
    graph = generate_kg_streaming(profile, out, chunk_size=args.chunk_size)
    print(
        f"wrote {graph.name}: {graph.num_entities} entities, "
        f"{graph.num_relations} relations, "
        f"{len(graph.train)}/{len(graph.valid)}/{len(graph.test)} "
        f"train/valid/test triples -> {out}"
    )
    print(f"use it as dataset argument: store:{out}")
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    from .kg import kg_store_exists, load_kg_store

    directory = Path(args.directory)
    if not kg_store_exists(directory):
        raise SystemExit(f"error: {directory} is not a complete KG store")
    graph = load_kg_store(directory, verify=not args.no_verify)
    size_bytes = sum(
        p.stat().st_size for p in directory.iterdir() if p.is_file()
    )
    rows = [
        {
            "dataset": graph.name,
            "entities": graph.num_entities,
            "relations": graph.num_relations,
            "train": len(graph.train),
            "valid": len(graph.valid),
            "test": len(graph.test),
            "size_mib": round(size_bytes / (1 << 20), 1),
        }
    ]
    print(format_table(rows, title=f"KG store at {directory}"))
    if not args.no_verify:
        print("checksums: OK (all columns verified against manifest)")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate the paper's headline tables without pytest."""
    import numpy as np

    from .discovery import STRATEGY_ABBREVIATIONS
    from .experiments import group_rows, run_matrix
    from .kg import PAPER_METADATA

    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)

    datasets = tuple(args.datasets) if args.datasets else None
    from .experiments import PAPER_DATASETS, PAPER_MODELS, PAPER_STRATEGIES

    print("running the dataset × model × strategy matrix "
          "(first run trains the models; later runs reuse .model_cache/)...")
    if args.journal:
        print(f"  journalling cells to {args.journal} (resumable; rerun the "
              "same command after a crash to continue)")
    rows = run_matrix(
        datasets=datasets or PAPER_DATASETS,
        models=PAPER_MODELS if not args.quick else ("distmult", "transe"),
        strategies=PAPER_STRATEGIES,
        top_n=args.top_n,
        max_candidates=args.max_candidates,
        seed=args.seed,
        journal_path=args.journal,
        max_cell_attempts=args.max_cell_attempts,
        on_error="degrade" if args.journal else "raise",
        procs=args.procs,
        cell_deadline=args.cell_deadline,
    )
    failed = [r for r in rows if r.status != "ok"]
    if failed:
        print(f"  {len(failed)} cell(s) failed and were degraded to "
              "partial rows:")
        for row in failed:
            print(f"    {row.dataset}/{row.model}/{row.strategy}: {row.error}")
        rows = [r for r in rows if r.status == "ok"]

    def write(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"  wrote {out_dir / (name + '.txt')}")

    # Table 1.
    table1 = [
        {
            "Dataset": meta.name,
            "Training": meta.training,
            "Entities": meta.entities,
            "Relations": meta.relations,
        }
        for meta in PAPER_METADATA.values()
    ]
    write("table1", format_table(table1, title="Table 1 (paper originals)"))

    # Figures 2/4/6 as tables per dataset.
    for figure, attribute, title in (
        ("fig2_runtime", "runtime_seconds", "Figure 2 — runtime (s)"),
        ("fig4_mrr", "mrr", "Figure 4 — discovery MRR"),
        ("fig6_efficiency", "efficiency_facts_per_hour", "Figure 6 — facts/hour"),
    ):
        sections = []
        for dataset, dataset_rows in group_rows(rows, "dataset").items():
            table = []
            for strategy, srows in group_rows(dataset_rows, "strategy").items():
                row = {"strategy": STRATEGY_ABBREVIATIONS[strategy]}
                for r in srows:
                    value = getattr(r, attribute)
                    row[r.model] = round(value, 4 if attribute == "mrr" else 3)
                table.append(row)
            sections.append(format_table(table, title=f"{title} on {dataset}"))
        write(figure, "\n\n".join(sections))

    # Summary of findings.
    summary = []
    for strategy, srows in group_rows(rows, "strategy").items():
        summary.append(
            {
                "strategy": STRATEGY_ABBREVIATIONS[strategy],
                "mean_mrr": round(float(np.mean([r.mrr for r in srows])), 4),
                "mean_facts": round(float(np.mean([r.num_facts for r in srows]))),
                "mean_facts_per_hour": round(
                    float(np.mean([r.efficiency_facts_per_hour for r in srows]))
                ),
            }
        )
    write("summary", format_table(summary, title="§4.2.4 — summary of findings"))
    print("done; benchmark assertions live in benchmarks/ (pytest benchmarks/)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .kg import dataset_report, detect_inverse_leakage, relation_profiles

    graph = _load_graph(args.dataset)
    report = dataset_report(graph)
    cardinalities = report.pop("cardinalities")
    rows = [{"property": k, "value": v} for k, v in report.items()]
    print(format_table(rows, title=f"Dataset report: {graph.name}"))
    print()
    print(
        format_table(
            [{"cardinality": k, "relations": v} for k, v in cardinalities.items()],
            title="Relation cardinalities",
        )
    )
    if args.relations:
        print()
        rel_rows = [
            {
                "relation": graph.relations.label_of(p.relation),
                "triples": p.num_triples,
                "tails_per_head": round(p.tails_per_head, 2),
                "heads_per_tail": round(p.heads_per_tail, 2),
                "cardinality": p.cardinality,
            }
            for p in relation_profiles(graph.train)
        ]
        print(format_table(rel_rows, title="Per-relation profiles"))
    leaks = detect_inverse_leakage(graph, threshold=args.leak_threshold)
    if leaks:
        print()
        leak_rows = [
            {
                "relation": graph.relations.label_of(l.relation),
                "inverse": graph.relations.label_of(l.inverse),
                "overlap": round(l.overlap, 3),
            }
            for l in leaks
        ]
        print(
            format_table(
                leak_rows,
                title=f"Inverse-relation leakage (threshold {args.leak_threshold})",
            )
        )
    else:
        print(f"\nno inverse-relation leakage at threshold {args.leak_threshold}")
    return 0


def _cmd_protocol(args: argparse.Namespace) -> int:
    from .discovery import heldout_discovery_protocol

    graph = _load_graph(args.dataset)
    job = "negative_sampling" if args.model in ("transe", "rotate") else "kvsall"
    loss = "margin" if job == "negative_sampling" else "bce"
    result = heldout_discovery_protocol(
        graph,
        ModelConfig(args.model, dim=args.dim, seed=args.seed),
        TrainConfig(
            job=job, loss=loss, epochs=args.epochs, batch_size=128, lr=args.lr,
            label_smoothing=0.1 if job == "kvsall" else 0.0, seed=args.seed,
        ),
        strategy=args.strategy,
        hide_fraction=args.hide_fraction,
        top_n=args.top_n,
        max_candidates=args.max_candidates,
        seed=args.seed,
    )
    rows = [{"metric": k, "value": round(v, 4) if isinstance(v, float) else v}
            for k, v in result.summary().items()]
    print(
        format_table(
            rows,
            title=f"Held-out protocol: {args.strategy} on {graph.name} "
            f"({args.hide_fraction:.0%} hidden)",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .resilience import GuardConfig

    graph = _load_graph(args.dataset)
    job = args.job
    if job == "auto":
        job = "negative_sampling" if args.model in ("transe", "rotate") else "kvsall"
    loss = {"negative_sampling": "margin", "kvsall": "bce", "1vsall": "softmax"}[job]
    config = TrainConfig(
        job=job,
        loss=loss,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        label_smoothing=args.label_smoothing if job == "kvsall" else 0.0,
        seed=args.seed,
        verbose=args.verbose,
    )
    guard = (
        None
        if args.guard == "off"
        else GuardConfig(policy=args.guard, max_epoch_retries=args.max_epoch_retries)
    )
    print(f"training {args.model} (dim={args.dim}) on {graph.name} with {job}...")
    result = fit(
        graph, ModelConfig(args.model, dim=args.dim, seed=args.seed), config,
        guard=guard,
    )
    if result.guard_report is not None and not result.guard_report.clean:
        summary = result.guard_report.summary()
        print(f"guard: {summary['guard_events_count']} event(s), "
              f"{summary['guard_epoch_retries_count']} epoch retr(ies), "
              f"{summary['guard_rollbacks_count']} rollback(s)")
    print(f"final loss: {result.losses[-1]:.4f} after {result.epochs_run} epochs")
    metrics = evaluate_ranking(result.model, graph, split="valid")
    print(f"validation MRR: {metrics.mrr:.4f}, Hits@10: {metrics.hits[10]:.4f}")
    save_model(result.model, args.output)
    print(f"checkpoint written to {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.dataset)
    model = load_model(args.checkpoint)
    metrics = evaluate_ranking(
        model, graph, split=args.split, filtered=not args.raw
    )
    rows = [
        {
            "split": args.split,
            "MRR": round(metrics.mrr, 4),
            "MR": round(metrics.mean_rank, 1),
            **{f"Hits@{k}": round(v, 4) for k, v in sorted(metrics.hits.items())},
        }
    ]
    print(format_table(rows, title=f"{args.checkpoint} on {graph.name}"))
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    graph = _load_graph(args.dataset)
    model = load_model(args.checkpoint)
    relations = None
    if args.relations:
        relations = [graph.relations.id_of(label) for label in args.relations]
    result = discover_facts(
        model,
        graph,
        strategy=args.strategy,
        top_n=args.top_n,
        max_candidates=args.max_candidates,
        relations=relations,
        seed=args.seed,
        procs=args.procs,
        cell_deadline=args.cell_deadline,
    )
    print(
        f"{result.num_facts} facts discovered "
        f"(MRR={result.mrr():.4f}, runtime={result.runtime_seconds:.2f}s, "
        f"{result.efficiency_facts_per_hour():,.0f} facts/hour)"
    )
    order = np.argsort(result.ranks)
    limit = len(order) if args.limit == 0 else args.limit
    lines = []
    for idx in order[:limit]:
        s, r, o = graph.label_triple(tuple(result.facts[idx]))
        lines.append(f"{s}\t{r}\t{o}\t{result.ranks[idx]:.0f}")
    if args.output:
        Path(args.output).write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"facts written to {args.output}")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args.dataset)
    model = load_model(args.checkpoint)
    strategies = args.strategies or [
        s for s in available_strategies() if s != "cluster_squares"
    ]
    rows = []
    for name in strategies:
        result = discover_facts(
            model,
            graph,
            strategy=create_strategy(name),
            top_n=args.top_n,
            max_candidates=args.max_candidates,
            seed=args.seed,
            stats=GraphStatistics(graph.train),
        )
        rows.append(
            {
                "strategy": f"{STRATEGY_ABBREVIATIONS.get(name, '??')} ({name})",
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "runtime_s": round(result.runtime_seconds, 3),
                "facts_per_hour": round(result.efficiency_facts_per_hour()),
            }
        )
    rows.sort(key=lambda r: r["mrr"], reverse=True)
    print(format_table(rows, title=f"Sampling strategies on {graph.name}"))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    graph = _load_graph(args.dataset)
    model = load_model(args.checkpoint)
    points = hyperparameter_grid(
        model,
        graph,
        strategy=args.strategy,
        top_n_values=tuple(args.top_n_values),
        max_candidates_values=tuple(args.max_candidates_values),
        seed=args.seed,
        procs=args.procs,
        cell_deadline=args.cell_deadline,
    )
    rows = [p.to_dict() for p in points]
    print(
        format_table(
            rows,
            columns=[
                "top_n", "max_candidates", "num_facts", "mrr",
                "runtime_seconds", "efficiency_facts_per_hour",
            ],
            title=f"Hyperparameter grid: {args.strategy} on {graph.name}",
        )
    )
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    from .experiments import CampaignState
    from .resilience import RunJournal

    journal = RunJournal(args.journal)
    if not journal.path.is_file():
        raise SystemExit(f"error: no journal at {args.journal}")
    view = journal.read()
    state = CampaignState.from_journal(journal)
    in_flight = sorted(
        key
        for key, count in state.attempts.items()
        if key not in state.completed and count > 0
    )
    print(
        format_table(
            [
                {"property": "records", "value": len(view.records)},
                {"property": "torn/corrupt lines", "value": view.corrupt_lines},
                {"property": "cells completed", "value": len(state.completed)},
                {"property": "cells started, unfinished", "value": len(in_flight)},
            ],
            title=f"Campaign journal: {args.journal}",
        )
    )
    if in_flight:
        print()
        print(
            format_table(
                [
                    {
                        "cell": key,
                        "attempts": state.attempts[key],
                        "last_error": state.last_error.get(key, "(interrupted)"),
                    }
                    for key in in_flight
                ],
                title="Unfinished cells (re-attempted on resume)",
            )
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection acceptance run: break the fabric, then prove recovery.

    Three passes over one small campaign:

    1. a fault-free baseline;
    2. a chaos pass under a seeded :class:`~repro.faults.FaultPlan`
       (worker SIGKILL at dispatch, poisoned shared-memory attach, torn
       journal append) that is allowed to crash and restart;
    3. a recovery pass with faults cleared and a raised attempt budget,
       resuming the chaos journal.

    The invariants asserted at the end are the ones the execution fabric
    promises: zero orphaned shared-memory segments, a replayable journal
    (torn tails quarantined, every cell completed), and recovery rows
    bit-identical to the baseline on every deterministic field.
    """
    import tempfile

    from .experiments import run_matrix
    from .faults import FaultPlan, clear, install
    from .parallel import orphaned_segments, reap_orphans
    from .resilience import RunJournal

    def deterministic_fields(rows):
        # repr() round-trips floats bit-exactly and makes NaN comparable;
        # *_seconds timings and span traces legitimately differ per run.
        return [
            (r.dataset, r.model, r.strategy, r.status, r.num_facts,
             repr(r.mrr), repr(r.test_mrr))
            for r in rows
        ]

    stale = reap_orphans()
    if stale:
        print(f"reaped {len(stale)} orphaned segment(s) from earlier runs: "
              f"{', '.join(stale)}")

    campaign = dict(
        datasets=("wn18rr-like",),
        models=("distmult",),
        strategies=("uniform_random", "entity_frequency"),
        top_n=args.top_n,
        max_candidates=args.max_candidates,
        seed=args.seed,
        procs=args.procs,
    )

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        journal_path = Path(workdir) / "chaos.jsonl"

        print("pass 1/3: fault-free baseline...")
        baseline = run_matrix(**campaign)

        plan = (
            FaultPlan()
            .kill("worker_dispatch", match="*uniform_random*", times=1)
            .fail("shared_attach", times=1)
            .torn(match="cell_succeeded", times=1)
            .fail("matrix_cell", match="*entity_frequency*", times=1)
        )
        print(f"pass 2/3: chaos pass ({len(plan.faults)} faults armed, "
              f"journal {journal_path.name})...")
        install(plan)
        restarts = 0
        try:
            while True:
                try:
                    run_matrix(
                        journal_path=journal_path,
                        max_cell_attempts=args.max_cell_attempts,
                        on_error="degrade",
                        **campaign,
                    )
                    break
                except Exception as error:
                    restarts += 1
                    if restarts > 5:
                        raise SystemExit(
                            f"error: chaos campaign did not survive 5 "
                            f"restarts (last: {error})"
                        )
                    print(f"  campaign crashed ({type(error).__name__}: "
                          f"{error}); restarting from the journal")
        finally:
            clear()
        print(f"  {plan.fired()} parent-side fault(s) fired, "
              f"{restarts} restart(s)")

        print("pass 3/3: recovery pass (faults cleared, attempt budget "
              f"raised to {args.max_cell_attempts + 3})...")
        recovered = run_matrix(
            journal_path=journal_path,
            max_cell_attempts=args.max_cell_attempts + 3,
            on_error="degrade",
            **campaign,
        )

        view = RunJournal(journal_path).read()
        orphans = orphaned_segments()
        failures: list[str] = []
        if orphans:
            failures.append(
                f"orphaned shared-memory segments left behind: {orphans}"
            )
        bad_rows = [
            f"{r.dataset}/{r.model}/{r.strategy}"
            for r in recovered
            if r.status != "ok"
        ]
        if bad_rows:
            failures.append(f"cells still failed after recovery: {bad_rows}")
        if view.corrupt_lines:
            failures.append(
                f"journal replay skipped {view.corrupt_lines} corrupt "
                f"line(s) — torn tails must be quarantined, not skipped"
            )
        if deterministic_fields(recovered) != deterministic_fields(baseline):
            failures.append(
                "recovered rows differ from the fault-free baseline on "
                "deterministic fields"
            )

        checks = [
            {"invariant": "no orphaned /dev/shm segments",
             "status": "FAIL" if orphans else "ok"},
            {"invariant": "journal replayable (no corrupt lines)",
             "status": "FAIL" if view.corrupt_lines else "ok"},
            {"invariant": "all cells recovered",
             "status": "FAIL" if bad_rows else "ok"},
            {"invariant": "recovery bit-identical to baseline",
             "status": "FAIL"
             if deterministic_fields(recovered) != deterministic_fields(baseline)
             else "ok"},
        ]
        print()
        print(format_table(
            checks,
            title=f"Chaos invariants ({len(view.records)} journal records, "
                  f"journal v{view.version})",
        ))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("all chaos invariants hold")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Re-render a ``--metrics-out`` snapshot in another exporter format."""
    import json

    from .obs import EXPORTER_FORMATS

    path = Path(args.snapshot)
    if not path.is_file():
        raise SystemExit(f"error: no snapshot at {args.snapshot}")
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SystemExit(
            f"error: {args.snapshot} is not a JSON metrics snapshot ({error})"
        )
    text = EXPORTER_FORMATS[args.format](snapshot)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve registered checkpoints over HTTP until interrupted."""
    import time

    from .api import Session
    from .serve import start_server

    session = Session(capacity=args.capacity, cache_size=args.cache_size)
    for spec in args.models:
        dataset, sep, checkpoint = spec.partition("=")
        if not sep or not dataset or not checkpoint:
            raise SystemExit(
                f"error: --models entries must be DATASET=CHECKPOINT, got {spec!r}"
            )
        ref = session.add_model(dataset, checkpoint)
        print(f"registered {ref.model_id} <- {checkpoint}")

    server = start_server(
        session,
        host=args.host,
        port=args.port,
        max_workers=args.procs,
        deadline_seconds=args.cell_deadline,
    )
    print(
        f"serving {len(session.registry)} model(s) on {server.url} "
        f"({args.procs} workers"
        + (f", {args.cell_deadline}s request deadline" if args.cell_deadline else "")
        + "); endpoints: /healthz /metrics /v1/models /v1/rank /v1/discover "
        "/v1/classify"
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(0.5)
    except KeyboardInterrupt:
        print("\ninterrupt: draining in-flight requests...")
    finally:
        server.close()
        print("server stopped")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """One-shot typed client against a running ``repro serve`` instance."""
    import json

    from .api.types import ApiError, request_type_for
    from .serve import ServeClient

    client = ServeClient(args.url, timeout_seconds=args.timeout)
    try:
        if args.endpoint == "metrics":
            print(client.metrics(), end="")
            return 0
        if args.endpoint == "health":
            print(client.health().to_json(indent=2))
            return 0
        if args.endpoint == "models":
            print(client.models().to_json(indent=2))
            return 0
        try:
            payload = json.loads(args.data) if args.data else {}
        except json.JSONDecodeError as error:
            raise SystemExit(f"error: --data is not valid JSON ({error})")
        request = request_type_for(args.endpoint).from_dict(payload)
        call = {
            "rank": client.rank,
            "discover": client.discover,
            "classify": client.classify,
        }[args.endpoint]
        print(call(request).to_json(indent=2))
        return 0
    except ApiError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    forwarded = args.lint_args
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fact discovery from knowledge graph embeddings (EDBT 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset replicas").set_defaults(
        func=_cmd_datasets
    )

    store = sub.add_parser(
        "store", help="out-of-core KG stores (generate / inspect)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_gen = store_sub.add_parser(
        "generate", help="stream a replica profile into a mmap-backed store"
    )
    store_gen.add_argument("profile",
                           help="profile name (replica or full-scale, e.g. "
                                "yago310-full)")
    store_gen.add_argument("-o", "--out", required=True,
                           help="store directory to create")
    store_gen.add_argument("--scale", type=float, default=1.0,
                           help="scale entity/triple counts by this factor")
    store_gen.add_argument("--chunk-size", type=int, default=1 << 18,
                           help="triples sampled per streaming chunk")
    store_gen.add_argument("--force", action="store_true",
                           help="regenerate even if the store already exists")
    store_gen.set_defaults(func=_cmd_store_generate)
    store_info = store_sub.add_parser(
        "info", help="summarise a KG store and verify its checksums"
    )
    store_info.add_argument("directory")
    store_info.add_argument("--no-verify", action="store_true",
                            help="skip checksum verification")
    store_info.set_defaults(func=_cmd_store_info)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate the paper's headline tables"
    )
    reproduce.add_argument("-o", "--output", default="results")
    reproduce.add_argument("--datasets", nargs="*", default=None)
    reproduce.add_argument("--quick", action="store_true",
                           help="two models instead of five")
    reproduce.add_argument("--top-n", type=int, default=50)
    reproduce.add_argument("--max-candidates", type=int, default=500)
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.add_argument("--journal", default=None,
                           help="JSONL run-journal path; makes the campaign "
                                "resumable and degrades failed cells instead "
                                "of aborting")
    reproduce.add_argument("--max-cell-attempts", type=int, default=3,
                           help="times a cell may be started (crashes count) "
                                "before it is reported as failed")
    reproduce.add_argument("--procs", type=int, default=1,
                           help="worker processes for parallel execution (1 = serial; results are identical either way)")
    reproduce.add_argument("--cell-deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="wall-clock budget per matrix cell; overruns "
                                "are journalled as cell_timeout and charged "
                                "against the attempt budget (with --procs > 1 "
                                "the watchdog kills the overdue worker — size "
                                "the budget above the ~1-2s pool spawn cost)")
    reproduce.add_argument("--metrics-out", default=None, metavar="PATH",
                           help="write a JSON metrics/span snapshot of the "
                                "run (re-render with `repro obs`)")
    reproduce.set_defaults(func=_cmd_reproduce)

    analyze = sub.add_parser("analyze", help="structural report of a dataset")
    analyze.add_argument("dataset")
    analyze.add_argument("--relations", action="store_true",
                         help="include per-relation profiles")
    analyze.add_argument("--leak-threshold", type=float, default=0.8)
    analyze.set_defaults(func=_cmd_analyze)

    protocol = sub.add_parser(
        "protocol", help="held-out discovery evaluation (hide→train→discover→score)"
    )
    protocol.add_argument("dataset")
    protocol.add_argument("model", choices=available_models())
    protocol.add_argument("--strategy", default="entity_frequency",
                          choices=available_strategies())
    protocol.add_argument("--hide-fraction", type=float, default=0.15)
    protocol.add_argument("--dim", type=int, default=32)
    protocol.add_argument("--epochs", type=int, default=40)
    protocol.add_argument("--lr", type=float, default=0.05)
    protocol.add_argument("--top-n", type=int, default=50)
    protocol.add_argument("--max-candidates", type=int, default=500)
    protocol.add_argument("--seed", type=int, default=0)
    protocol.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="write a JSON metrics/span snapshot of the "
                               "run (re-render with `repro obs`)")
    protocol.set_defaults(func=_cmd_protocol)

    train = sub.add_parser("train", help="train a model and save a checkpoint")
    train.add_argument("dataset")
    train.add_argument("model", choices=available_models())
    train.add_argument("--dim", type=int, default=32)
    train.add_argument(
        "--job", choices=["auto", "negative_sampling", "kvsall", "1vsall"],
        default="auto",
    )
    train.add_argument("--epochs", type=int, default=60)
    train.add_argument("--batch-size", type=int, default=128)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--label-smoothing", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--verbose", action="store_true")
    train.add_argument("--guard", choices=["off", "halt", "rollback", "retry"],
                       default="retry",
                       help="divergence-guard policy (default: retry the "
                            "epoch with re-seeded negatives)")
    train.add_argument("--max-epoch-retries", type=int, default=2)
    train.add_argument("-o", "--output", default="model.npz")
    train.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics/span snapshot of the "
                            "run (re-render with `repro obs`)")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="link-prediction metrics of a checkpoint")
    evaluate.add_argument("checkpoint")
    evaluate.add_argument("dataset")
    evaluate.add_argument("--split", choices=["train", "valid", "test"], default="test")
    evaluate.add_argument("--raw", action="store_true", help="raw (unfiltered) ranking")
    evaluate.set_defaults(func=_cmd_evaluate)

    discover = sub.add_parser("discover", help="discover facts with a checkpoint")
    discover.add_argument("checkpoint")
    discover.add_argument("dataset")
    discover.add_argument("--strategy", default="entity_frequency",
                          choices=available_strategies())
    discover.add_argument("--top-n", type=int, default=50)
    discover.add_argument("--max-candidates", type=int, default=500)
    discover.add_argument("--relations", nargs="*", default=None,
                          help="relation labels to discover facts for "
                               "(default: all)")
    discover.add_argument("--seed", type=int, default=0)
    discover.add_argument("--limit", type=int, default=20,
                          help="facts to print (0 = all)")
    discover.add_argument("--procs", type=int, default=1,
                          help="worker processes for parallel execution (1 = serial; results are identical either way)")
    discover.add_argument("--cell-deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget per relation when --procs "
                               "> 1 (watchdog-enforced; ignored serially)")
    discover.add_argument("-o", "--output", default=None,
                          help="write facts as TSV instead of printing")
    discover.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="write a JSON metrics/span snapshot of the "
                               "run (re-render with `repro obs`)")
    discover.set_defaults(func=_cmd_discover)

    compare = sub.add_parser("compare", help="compare sampling strategies")
    compare.add_argument("checkpoint")
    compare.add_argument("dataset")
    compare.add_argument("--strategies", nargs="*", choices=available_strategies())
    compare.add_argument("--top-n", type=int, default=50)
    compare.add_argument("--max-candidates", type=int, default=500)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    grid = sub.add_parser("grid", help="hyperparameter grid sweep")
    grid.add_argument("checkpoint")
    grid.add_argument("dataset")
    grid.add_argument("--strategy", default="uniform_random",
                      choices=available_strategies())
    grid.add_argument("--top-n-values", type=int, nargs="+",
                      default=[10, 20, 30, 40, 50, 70])
    grid.add_argument("--max-candidates-values", type=int, nargs="+",
                      default=[50, 100, 200, 300, 400, 500])
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--procs", type=int, default=1,
                      help="worker processes for parallel execution (1 = serial; results are identical either way)")
    grid.add_argument("--cell-deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="wall-clock budget per grid point (cooperative "
                           "serially, watchdog-enforced with --procs > 1)")
    grid.set_defaults(func=_cmd_grid)

    journal = sub.add_parser(
        "journal", help="summarise a campaign run-journal"
    )
    journal.add_argument("journal", help="path to a JSONL run-journal")
    journal.set_defaults(func=_cmd_journal)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection acceptance run against a small campaign",
        description="Runs a fault-free baseline, a chaos pass under a "
        "seeded fault schedule (worker SIGKILL, poisoned shared-memory "
        "attach, torn journal write), and a recovery pass resuming the "
        "same journal — then asserts zero orphaned segments, a "
        "replayable journal, and bit-identical recovered results.",
    )
    chaos.add_argument("--procs", type=int, default=2,
                       help="worker processes (2 exercises the worker-side "
                            "fault sites; 1 runs the serial schedule only)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--top-n", type=int, default=50)
    chaos.add_argument("--max-candidates", type=int, default=100)
    chaos.add_argument("--max-cell-attempts", type=int, default=2,
                       help="attempt budget during the chaos pass (the "
                            "recovery pass raises it by 3)")
    chaos.set_defaults(func=_cmd_chaos)

    obs = sub.add_parser(
        "obs", help="re-render a --metrics-out snapshot"
    )
    obs.add_argument("snapshot", help="path to a JSON metrics snapshot")
    obs.add_argument("--format", choices=["json", "prometheus", "table"],
                     default="table")
    obs.add_argument("-o", "--output", default=None,
                     help="write instead of printing")
    obs.set_defaults(func=_cmd_obs)

    serve = sub.add_parser(
        "serve",
        help="serve checkpoints over HTTP (discovery-as-a-service)",
        description="Load checksummed checkpoints into the model registry "
        "and answer /v1/rank, /v1/discover and /v1/classify queries from "
        "concurrent clients, with live Prometheus metrics at /metrics. "
        "Responses are bit-identical to the offline discover/evaluate "
        "commands (see docs/api.md for the wire schema).",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--models", nargs="+", required=True,
                       metavar="DATASET=CHECKPOINT",
                       help="checkpoints to register, e.g. "
                            "fb15k237-like=model.npz (repeatable)")
    serve.add_argument("--procs", type=int, default=8,
                       help="bounded worker threads handling requests")
    serve.add_argument("--cell-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request deadline; overruns answer a typed "
                            "504 deadline_exceeded envelope")
    serve.add_argument("--capacity", type=int, default=4,
                       help="models kept loaded at once (LRU-evicted, "
                            "in-flight models are never dropped)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="score rows cached per model across requests")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="serve for this long then drain and exit "
                            "(default: until Ctrl-C)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics/span snapshot on shutdown "
                            "(re-render with `repro obs`)")
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query",
        help="one-shot client for a running `repro serve` server",
    )
    query.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8350")
    query.add_argument("endpoint",
                       choices=["health", "models", "metrics", "rank",
                                "discover", "classify"])
    query.add_argument("--data", default=None, metavar="JSON",
                       help="request body for rank/discover/classify, e.g. "
                            "'{\"model\": \"...\", \"triples\": [[0, 1, 2]]}'")
    query.add_argument("--timeout", type=float, default=30.0,
                       help="client-side HTTP timeout in seconds")
    query.set_defaults(func=_cmd_query)

    lint = sub.add_parser(
        "lint",
        help="domain-aware static analysis of the codebase",
        description="All arguments are forwarded to repro-lint "
        "(see `repro lint -- --help`).",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro-lint")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    with _metrics_sink(getattr(args, "metrics_out", None)):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
