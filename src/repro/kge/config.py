"""Configuration objects and grid-search helpers.

In the spirit of LibKGE's yaml job definitions (which the paper singles
out as the reason for choosing that library), experiments are described by
small declarative configs that can be expanded into grids.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Iterator

__all__ = ["ModelConfig", "TrainConfig", "expand_grid"]


@dataclass(frozen=True)
class ModelConfig:
    """Which model to build and how large.

    ``options`` carries model-specific keyword arguments (e.g. TransE's
    ``norm``, ConvE's ``num_filters``).
    """

    name: str = "transe"
    dim: int = 32
    seed: int = 0
    options: dict[str, Any] = field(default_factory=dict)

    def with_(self, **changes) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True, kw_only=True)
class TrainConfig:
    """How to train a model.

    All fields are keyword-only: positional construction silently breaks
    whenever a field is inserted, so ``TrainConfig(epochs=5)`` is the only
    supported spelling.

    ``job`` selects the training regime: ``"negative_sampling"`` (margin
    or BCE loss on corrupted triples), ``"kvsall"`` (BCE against all
    entities per (s, r) query, ConvE-style), or ``"1vsall"`` (softmax
    cross-entropy where the true object competes with every entity).

    ``sparse_grads`` selects the row-sparse embedding fast path:
    ``"auto"`` (default) enables it for entity embeddings under the
    negative-sampling job — the only regime where entity gradients are
    actually row-sparse — except where a lazy optimizer meets a
    per-batch parameter hook and the fast path cannot win (see
    ``repro.kge.training._enable_sparse_grads``); ``"on"`` forces the
    flag regardless of job, and ``"off"`` keeps the classic dense
    accumulation everywhere.  All three settings train to bit-identical
    parameters.
    """

    job: str = "negative_sampling"
    loss: str = "margin"
    epochs: int = 50
    batch_size: int = 256
    lr: float = 0.05
    lr_decay: float = 1.0
    optimizer: str = "adam"
    momentum: float = 0.0
    sparse_grads: str = "auto"
    num_negatives: int = 8
    margin: float = 1.0
    adversarial_temperature: float = 1.0
    label_smoothing: float = 0.0
    weight_decay: float = 0.0
    corrupt: str = "both"
    filter_negatives: bool = True
    eval_every: int = 0
    early_stopping_patience: int = 0
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.job not in ("negative_sampling", "kvsall", "1vsall"):
            raise ValueError(f"unknown training job {self.job!r}")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.sparse_grads not in ("auto", "on", "off"):
            raise ValueError(
                f"sparse_grads must be 'auto', 'on' or 'off', got {self.sparse_grads!r}"
            )

    def with_(self, **changes) -> "TrainConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrainConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` so stale serialized configs
        fail loudly instead of silently dropping settings.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown TrainConfig keys: {sorted(unknown)}"
            )
        return cls(**data)


def expand_grid(space: dict[str, list[Any]]) -> Iterator[dict[str, Any]]:
    """Expand ``{param: [values...]}`` into the cartesian product of dicts.

    The iteration order is deterministic: parameters vary slowest-first in
    the order given (like LibKGE's grid-search syntax).
    """
    if not space:
        yield {}
        return
    keys = list(space)
    for values in itertools.product(*(space[k] for k in keys)):
        yield dict(zip(keys, values))
