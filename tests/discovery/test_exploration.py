"""Tests for the exploration-aware extension strategies (§6)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.discovery import (
    EntityFrequency,
    InverseFrequency,
    MixtureStrategy,
    PageRankStrategy,
    TemperedFrequency,
    UniformRandom,
    create_strategy,
    long_tail_coverage,
    pagerank,
)
from repro.kg import GraphStatistics, TripleSet
from repro.kg.stats import OBJECT, SUBJECT


def stats_for(triples, n, k=1) -> GraphStatistics:
    return GraphStatistics(
        TripleSet(np.asarray(triples, dtype=np.int64), n, k), backend="sparse"
    )


@pytest.fixture()
def skewed_stats() -> GraphStatistics:
    # Subject 0 appears 8×, subject 1 twice, subject 2 once.
    triples = [[0, 0, i] for i in range(3, 11)] + [[1, 0, 3], [1, 0, 4], [2, 0, 3]]
    return stats_for(triples, 12)


class TestTemperedFrequency:
    def test_alpha_one_equals_entity_frequency(self, skewed_stats):
        tempered = TemperedFrequency(alpha=1.0)
        plain = EntityFrequency()
        tempered.prepare(skewed_stats)
        plain.prepare(skewed_stats)
        for side in (SUBJECT, OBJECT):
            pool_t, probs_t = tempered.distribution(side)
            pool_p, probs_p = plain.distribution(side)
            np.testing.assert_array_equal(pool_t, pool_p)
            np.testing.assert_allclose(probs_t, probs_p)

    def test_alpha_zero_is_uniform_over_pool(self, skewed_stats):
        tempered = TemperedFrequency(alpha=0.0)
        tempered.prepare(skewed_stats)
        _, probs = tempered.distribution(SUBJECT)
        np.testing.assert_allclose(probs, probs[0])

    def test_negative_alpha_inverts_popularity(self, skewed_stats):
        tempered = TemperedFrequency(alpha=-1.0)
        tempered.prepare(skewed_stats)
        pool, probs = tempered.distribution(SUBJECT)
        by_entity = dict(zip(pool.tolist(), probs.tolist()))
        assert by_entity[2] > by_entity[1] > by_entity[0]

    def test_registered_default(self):
        strategy = create_strategy("tempered_frequency")
        assert isinstance(strategy, TemperedFrequency)
        assert strategy.alpha == 0.5


class TestInverseFrequency:
    def test_registered(self):
        assert isinstance(create_strategy("inverse_frequency"), InverseFrequency)

    def test_prefers_rare_entities(self, skewed_stats):
        strategy = create_strategy("inverse_frequency")
        strategy.prepare(skewed_stats)
        pool, probs = strategy.distribution(SUBJECT)
        by_entity = dict(zip(pool.tolist(), probs.tolist()))
        assert by_entity[2] == max(by_entity.values())


class TestMixture:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            MixtureStrategy([UniformRandom()], [0.5, 0.5])
        with pytest.raises(ValueError):
            MixtureStrategy([], [])
        with pytest.raises(ValueError):
            MixtureStrategy([UniformRandom()], [0.0])

    def test_mixture_is_convex_combination(self, skewed_stats):
        ef = EntityFrequency()
        ur = UniformRandom()
        mix = MixtureStrategy([EntityFrequency(), UniformRandom()], [0.5, 0.5])
        for strategy in (ef, ur, mix):
            strategy.prepare(skewed_stats)
        pool_m, probs_m = mix.distribution(SUBJECT)
        expected = np.zeros(12)
        for strategy in (ef, ur):
            pool, probs = strategy.distribution(SUBJECT)
            expected[pool] += 0.5 * probs
        np.testing.assert_allclose(probs_m, expected[pool_m])

    def test_name_reflects_components(self):
        mix = MixtureStrategy([EntityFrequency(), UniformRandom()], [1, 1])
        assert "entity_frequency" in mix.name
        assert "uniform_random" in mix.name

    def test_distribution_sums_to_one(self, skewed_stats):
        mix = MixtureStrategy(
            [EntityFrequency(), UniformRandom(), InverseFrequency()], [2, 1, 1]
        )
        mix.prepare(skewed_stats)
        for side in (SUBJECT, OBJECT):
            _, probs = mix.distribution(side)
            assert probs.sum() == pytest.approx(1.0)


class TestPageRank:
    def test_matches_networkx(self, small_graph):
        stats = GraphStatistics(small_graph.train, backend="sparse")
        mine = pagerank(stats.adjacency, damping=0.85)
        reference = nx.pagerank(stats.nx_graph, alpha=0.85, tol=1e-12)
        ref_arr = np.asarray([reference[i] for i in range(small_graph.num_entities)])
        np.testing.assert_allclose(mine, ref_arr, atol=1e-6)

    def test_sums_to_one(self, triangle_triples):
        ranks = pagerank(GraphStatistics(triangle_triples).adjacency)
        assert ranks.sum() == pytest.approx(1.0)

    def test_symmetric_graph_uniform(self, triangle_triples):
        ranks = pagerank(GraphStatistics(triangle_triples).adjacency)
        np.testing.assert_allclose(ranks, 1 / 3)

    def test_hub_ranks_highest(self, star_triples):
        ranks = pagerank(GraphStatistics(star_triples).adjacency)
        assert ranks[0] == max(ranks)

    def test_invalid_damping(self, triangle_triples):
        with pytest.raises(ValueError):
            pagerank(GraphStatistics(triangle_triples).adjacency, damping=1.0)

    def test_strategy_registered(self, skewed_stats):
        strategy = create_strategy("pagerank")
        assert isinstance(strategy, PageRankStrategy)
        strategy.prepare(skewed_stats)
        pool, probs = strategy.distribution(SUBJECT)
        assert probs.sum() == pytest.approx(1.0)


class TestLongTailCoverage:
    def test_known_value(self):
        degree = np.asarray([10, 10, 10, 1, 1, 1])
        facts = np.asarray([[0, 0, 1], [0, 0, 3], [4, 0, 5]])
        # Threshold at median of positive degrees: tail = {3, 4, 5}.
        coverage = long_tail_coverage(facts, degree, quantile=0.5)
        assert coverage == pytest.approx(2 / 3)

    def test_empty_facts(self):
        assert long_tail_coverage(np.zeros((0, 3)), np.asarray([1, 2])) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            long_tail_coverage(np.asarray([[0, 0, 1]]), np.asarray([1, 1]), quantile=0.0)

    def test_exploration_beats_exploitation_on_tail(
        self, trained_distmult, tiny_graph
    ):
        """InverseFrequency reaches more long-tail entities than EF."""
        from repro.discovery import discover_facts

        stats = GraphStatistics(tiny_graph.train)
        results = {}
        for name in ("entity_frequency", "inverse_frequency"):
            result = discover_facts(
                trained_distmult, tiny_graph, strategy=name,
                top_n=tiny_graph.num_entities, max_candidates=200, seed=0,
                stats=stats,
            )
            results[name] = long_tail_coverage(result.facts, stats.degree)
        assert results["inverse_frequency"] >= results["entity_frequency"]
