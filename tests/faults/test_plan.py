"""FaultPlan wire format: payload round-trips, versioning, exception paths."""

from __future__ import annotations

import json

import pytest

from repro.faults import PAYLOAD_VERSION, FaultPlan
from repro.faults.plan import _resolve_exception
from repro.resilience import FaultInjectedError


class TestPayloadRoundTrip:
    def test_every_fault_kind_survives(self):
        plan = (
            FaultPlan()
            .fail("train_epoch", match="3", times=2, exc=MemoryError)
            .kill("worker_dispatch", match="*distmult*")
            .corrupt(match="*.npz", mode="truncate", times=-1)
            .stall("matrix_cell", 7.5, match="*transe*", wall=True)
            .torn(match="cell_succeeded")
        )
        rebuilt = FaultPlan.from_payload(plan.to_payload())
        assert [f.to_dict() for f in rebuilt.faults] == [
            f.to_dict() for f in plan.faults
        ]

    def test_counters_arrive_fresh(self):
        plan = FaultPlan().fail("site", times=1)
        payload = plan.to_payload()
        plan._consume("fail", "site", "x")
        assert plan.fired() == 1
        rebuilt = FaultPlan.from_payload(payload)
        assert rebuilt.fired() == 0
        assert rebuilt.faults[0].times == 1

    def test_payload_is_json(self):
        payload = FaultPlan().fail("site").to_payload()
        data = json.loads(payload)
        assert data["version"] == PAYLOAD_VERSION
        assert len(data["faults"]) == 1

    def test_unknown_version_rejected(self):
        payload = json.dumps({"version": PAYLOAD_VERSION + 1, "faults": []})
        with pytest.raises(ValueError, match="payload version"):
            FaultPlan.from_payload(payload)

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="payload version"):
            FaultPlan.from_payload(json.dumps({"faults": []}))


class TestExceptionPaths:
    def test_custom_exception_round_trips(self):
        plan = FaultPlan().fail("site", exc=MemoryError)
        rebuilt = FaultPlan.from_payload(plan.to_payload())
        assert rebuilt.faults[0].exception() is MemoryError

    def test_default_exception_is_fault_injected(self):
        rebuilt = FaultPlan.from_payload(FaultPlan().fail("site").to_payload())
        assert rebuilt.faults[0].exc is None
        assert rebuilt.faults[0].exception() is FaultInjectedError

    def test_unresolvable_path_degrades_to_default(self):
        # A worker whose environment lacks the exception module must not
        # fail plan installation — the fault degrades to the default type.
        assert _resolve_exception("no.such.module:Boom") is None
        assert _resolve_exception("os.path:join") is None  # not an Exception
        assert _resolve_exception(None) is None

    def test_nested_qualname_resolves(self):
        path = f"{FaultInjectedError.__module__}:{FaultInjectedError.__qualname__}"
        assert _resolve_exception(path) is FaultInjectedError


class TestMatching:
    def test_exhausted_fault_stops_matching(self):
        plan = FaultPlan().fail("site", times=1)
        assert plan._consume("fail", "site", "x") is not None
        assert plan._consume("fail", "site", "x") is None
        assert plan.fired() == 1

    def test_negative_times_never_exhausts(self):
        plan = FaultPlan().fail("site", times=-1)
        for _ in range(10):
            assert plan._consume("fail", "site", "") is not None
        assert plan.fired() == 10

    def test_kind_site_and_token_all_gate(self):
        plan = FaultPlan().kill("worker_dispatch", match="*distmult*")
        assert plan._consume("fail", "worker_dispatch", "a/distmult/b") is None
        assert plan._consume("kill", "matrix_cell", "a/distmult/b") is None
        assert plan._consume("kill", "worker_dispatch", "a/transe/b") is None
        assert plan._consume("kill", "worker_dispatch", "a/distmult/b") is not None
