"""§4.3 — CLUSTERING SQUARES is excluded for its prohibitive cost.

The paper measured ~54 hours for one CLUSTERING SQUARES configuration on
the 14.5k-entity FB15K-237 (98 facts/hour) against 2–3 hours for the
other strategies.  That blow-up is a *scale* effect: the squares
coefficient costs Θ(Σ_v deg(v)²·avg_deg) while the linear strategies cost
Θ(M).  On the ~100×-downscaled replicas the absolute gap compresses, so
this benchmark demonstrates the mechanism the paper hit:

1. CS is the most expensive weight computation on the largest replica;
2. CS is orders of magnitude above the linear strategies (UR/EF/GD);
3. CS's cost grows faster with graph size than every other strategy's,
   which is exactly what made it infeasible at the paper's scale.
"""

from __future__ import annotations

import time

from common import save_and_print

from repro.discovery import available_strategies, create_strategy
from repro.experiments import format_table
from repro.kg import GraphStatistics, KGProfile, generate_kg, load_dataset


def _weight_time(graph, name: str) -> float:
    stats = GraphStatistics(graph.train)  # fresh: no cached metrics
    strategy = create_strategy(name)
    start = time.perf_counter()
    strategy.prepare(stats)
    return time.perf_counter() - start


def _scaled_graph(num_entities: int):
    return generate_kg(
        KGProfile(
            name=f"scale-{num_entities}",
            num_entities=num_entities,
            num_relations=8,
            num_triples=num_entities * 9,
            num_types=6,
            popularity_exponent=0.9,
            triangle_closure_prob=0.2,
            seed=99,
        )
    )


def test_squares_weight_cost_dominates(benchmark):
    graph = load_dataset("yago310-like")
    benchmark.pedantic(
        lambda: _weight_time(graph, "cluster_squares"), rounds=1, iterations=1
    )

    timings = {name: _weight_time(graph, name) for name in available_strategies()}
    rows = [
        {"strategy": name, "weight_seconds": round(seconds, 4)}
        for name, seconds in timings.items()
    ]

    # Scaling sweep: CS cost vs graph size against CT (its nearest rival).
    sizes = (150, 400, 1000)
    scaling_rows = []
    cs_times, ct_times = [], []
    for size in sizes:
        scaled = _scaled_graph(size)
        cs = _weight_time(scaled, "cluster_squares")
        ct = _weight_time(scaled, "cluster_triangles")
        cs_times.append(cs)
        ct_times.append(ct)
        scaling_rows.append(
            {
                "entities": size,
                "squares_seconds": round(cs, 4),
                "triangles_seconds": round(ct, 4),
                "ratio": round(cs / max(ct, 1e-9), 1),
            }
        )

    save_and_print(
        "squares_infeasibility",
        format_table(
            rows, title="§4.3 — weight-computation cost per strategy (yago310-like)"
        )
        + "\n\n"
        + format_table(
            scaling_rows,
            title="§4.3 — CLUSTERING SQUARES cost scaling with graph size",
        ),
    )

    # 1. CS is the single most expensive strategy to prepare.
    assert timings["cluster_squares"] == max(timings.values())
    # 2. Orders of magnitude above the linear strategies.
    linear = max(
        timings[s] for s in ("uniform_random", "entity_frequency", "graph_degree")
    )
    assert timings["cluster_squares"] > 20 * linear
    # 3. The CS/CT cost ratio widens as the graph grows — the paper-scale
    # infeasibility mechanism.
    assert cs_times[-1] / ct_times[-1] > cs_times[0] / ct_times[0]
