"""Shared fixtures: small graphs and trained models, built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import KGProfile, KnowledgeGraph, TripleSet, generate_kg
from repro.kge import ModelConfig, TrainConfig, fit


@pytest.fixture(scope="session")
def tiny_graph() -> KnowledgeGraph:
    """A small but learnable KG (~40 entities) for fast unit tests."""
    profile = KGProfile(
        name="tiny",
        num_entities=40,
        num_relations=4,
        num_triples=420,
        num_types=4,
        popularity_exponent=0.8,
        triangle_closure_prob=0.2,
        seed=7,
    )
    return generate_kg(profile)


@pytest.fixture(scope="session")
def small_graph() -> KnowledgeGraph:
    """A medium KG (~120 entities) for integration-style tests."""
    profile = KGProfile(
        name="small",
        num_entities=120,
        num_relations=8,
        num_triples=1500,
        num_types=6,
        popularity_exponent=0.85,
        triangle_closure_prob=0.25,
        seed=11,
    )
    return generate_kg(profile)


@pytest.fixture(scope="session")
def trained_distmult(tiny_graph):
    """A DistMult model trained to usable quality on the tiny graph."""
    result = fit(
        tiny_graph,
        ModelConfig("distmult", dim=16, seed=0),
        TrainConfig(
            job="kvsall",
            loss="bce",
            epochs=40,
            batch_size=64,
            lr=0.05,
            label_smoothing=0.1,
        ),
    )
    return result.model


@pytest.fixture(scope="session")
def trained_transe(tiny_graph):
    """A TransE model trained with margin loss on the tiny graph."""
    result = fit(
        tiny_graph,
        ModelConfig("transe", dim=16, seed=0, options={"norm": "l1"}),
        TrainConfig(
            job="negative_sampling",
            loss="margin",
            epochs=40,
            batch_size=64,
            lr=0.01,
            num_negatives=4,
            margin=2.0,
        ),
    )
    return result.model


@pytest.fixture()
def triangle_triples() -> TripleSet:
    """3 entities in a directed triangle: known statistics by hand."""
    return TripleSet(
        np.asarray([[0, 0, 1], [1, 0, 2], [2, 0, 0]]),
        num_entities=3,
        num_relations=1,
    )


@pytest.fixture()
def star_triples() -> TripleSet:
    """A 5-node star (hub = 0): hub degree 4, clustering coefficient 0."""
    return TripleSet(
        np.asarray([[0, 0, 1], [0, 0, 2], [0, 0, 3], [0, 0, 4]]),
        num_entities=5,
        num_relations=1,
    )


@pytest.fixture()
def square_triples() -> TripleSet:
    """A 4-cycle: every node is in exactly one square, no triangles."""
    return TripleSet(
        np.asarray([[0, 0, 1], [1, 0, 2], [2, 0, 3], [3, 0, 0]]),
        num_entities=4,
        num_relations=1,
    )
