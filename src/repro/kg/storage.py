"""Pluggable storage backends for the knowledge-graph substrate.

Every column the substrate persists — triple arrays, sorted membership
keys, entity-type vectors — is a named numpy array living behind a
:class:`StorageBackend`.  Two stdlib-only implementations ship:

* :class:`InMemoryBackend` — plain dict of arrays; the default, with the
  exact semantics the substrate always had.
* :class:`MmapBackend` — each array is a ``.npy`` file inside one store
  directory, written through the atomic temp→fsync→rename discipline of
  :mod:`repro.resilience.atomic` and read back as a *read-only
  memory-mapped view*.  A ``manifest.json`` records a sha256 content
  digest (plus dtype and shape) per array; digests are re-verified the
  first time each array is opened, so a torn or bit-flipped column is a
  typed :class:`StorageCorruptError` instead of silent garbage.

Mmap views make the multiprocess story free: a worker that unpickles a
mmap-backed :class:`~repro.kg.triples.TripleSet` re-opens the same files
and shares the page cache with every other process — no per-process
copies of the triple arrays (see ``spec()`` / :func:`open_backend`).

Large arrays can also be *streamed* into a backend chunk-by-chunk via
:meth:`StorageBackend.writer`, which is how the streaming dataset
generators emit million-triple replicas under a bounded resident set:
the ``.npy`` header is patched with the final row count on close, and
the content digest is accumulated per chunk along the way.
"""

from __future__ import annotations

import hashlib
import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator

import numpy as np

from ..resilience.atomic import atomic_write, atomic_write_bytes

__all__ = [
    "StorageBackend",
    "InMemoryBackend",
    "MmapBackend",
    "ArrayWriter",
    "StorageCorruptError",
    "content_digest",
    "open_backend",
]

_MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1
#: Chunk size (bytes) for digest computation over mmap views.
_DIGEST_CHUNK = 4 << 20


class StorageCorruptError(RuntimeError):
    """A stored array failed its manifest checksum or shape check."""


def _content_digest_chunks(chunks: Iterator[np.ndarray], dtype: np.dtype) -> str:
    """sha256 over dtype + raw row bytes, accumulated chunk by chunk."""
    digest = hashlib.sha256()
    digest.update(str(np.dtype(dtype)).encode("utf-8"))
    for chunk in chunks:
        digest.update(np.ascontiguousarray(chunk).tobytes())
    return digest.hexdigest()


def content_digest(array: np.ndarray) -> str:
    """sha256 content digest of one array (dtype + bytes, shape-agnostic).

    Computed over bounded slices so a memory-mapped multi-gigabyte column
    never has to be resident all at once.
    """
    array = np.asarray(array)
    flat = array.reshape(-1)
    step = max(1, _DIGEST_CHUNK // max(array.itemsize, 1))
    return _content_digest_chunks(
        (flat[i : i + step] for i in range(0, flat.shape[0], step)), array.dtype
    )


class StorageBackend(ABC):
    """Named-array storage behind :class:`~repro.kg.triples.TripleSet`.

    The contract every implementation honours:

    * :meth:`get` returns a **read-only** array view; callers never
      mutate stored columns in place.
    * :meth:`put` replaces a column wholesale (atomically, for durable
      backends).
    * :meth:`writer` streams a column in chunks for data too large to
      materialise.
    * :meth:`spec` returns a picklable descriptor from which
      :func:`open_backend` reconstructs an equivalent read view — the
      hook that lets worker processes attach a store without copying it.
    """

    @abstractmethod
    def get(self, name: str) -> np.ndarray:
        """Read-only view of the named array; ``KeyError`` if missing."""

    @abstractmethod
    def put(self, name: str, array: np.ndarray) -> None:
        """Store (replace) the named array."""

    @abstractmethod
    def writer(self, name: str, dtype, columns: int | None = None) -> "ArrayWriter":
        """Open a chunked writer for the named array.

        ``columns=None`` streams a 1-D array; an integer streams a 2-D
        ``(rows, columns)`` array.
        """

    @abstractmethod
    def names(self) -> list[str]:
        """Sorted names of the stored arrays."""

    @abstractmethod
    def spec(self) -> dict:
        """Picklable descriptor accepted by :func:`open_backend`."""

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def close(self) -> None:
        """Release resources (idempotent; in-memory stores no-op)."""


class ArrayWriter:
    """Chunk-by-chunk column writer returned by :meth:`StorageBackend.writer`.

    Usage::

        with backend.writer("train.triples", np.int64, columns=3) as w:
            for chunk in chunks:          # (m, 3) arrays
                w.append(chunk)

    Subclasses implement ``_append`` / ``_close``; the base class tracks
    the row count and validates chunk shapes.
    """

    def __init__(self, dtype, columns: int | None) -> None:
        self.dtype = np.dtype(dtype)
        self.columns = columns
        self.rows = 0
        self._closed = False

    def append(self, chunk: np.ndarray) -> None:
        chunk = np.asarray(chunk, dtype=self.dtype)
        if self.columns is None:
            if chunk.ndim != 1:
                raise ValueError(f"expected 1-D chunk, got shape {chunk.shape}")
        else:
            if chunk.ndim != 2 or chunk.shape[1] != self.columns:
                raise ValueError(
                    f"expected (m, {self.columns}) chunk, got shape {chunk.shape}"
                )
        if chunk.shape[0]:
            self._append(np.ascontiguousarray(chunk))
            self.rows += chunk.shape[0]

    def _append(self, chunk: np.ndarray) -> None:
        raise NotImplementedError

    def _close(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "ArrayWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._abort()

    def _abort(self) -> None:
        """Discard partial output after an error (best effort)."""


# ----------------------------------------------------------------------
# In-memory backend
# ----------------------------------------------------------------------
class _MemoryWriter(ArrayWriter):
    def __init__(self, backend: "InMemoryBackend", name: str, dtype, columns) -> None:
        super().__init__(dtype, columns)
        self._backend = backend
        self._name = name
        self._chunks: list[np.ndarray] = []

    def _append(self, chunk: np.ndarray) -> None:
        self._chunks.append(chunk.copy())

    def _close(self) -> None:
        shape = (0,) if self.columns is None else (0, self.columns)
        if self._chunks:
            array = np.concatenate(self._chunks, axis=0)
        else:
            array = np.zeros(shape, dtype=self.dtype)
        self._backend.put(self._name, array)
        self._chunks.clear()


class InMemoryBackend(StorageBackend):
    """Arrays held in RAM — the substrate's historical behaviour."""

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def put(self, name: str, array: np.ndarray) -> None:
        array = np.asarray(array)
        if array.flags.writeable:
            array = array.copy()
            array.setflags(write=False)
        self._arrays[name] = array

    def writer(self, name: str, dtype, columns: int | None = None) -> ArrayWriter:
        return _MemoryWriter(self, name, dtype, columns)

    def names(self) -> list[str]:
        return sorted(self._arrays)

    def spec(self) -> dict:
        raise TypeError(
            "InMemoryBackend holds process-local arrays and has no "
            "picklable spec; persist to a MmapBackend to share across "
            "processes"
        )

    def __repr__(self) -> str:
        return f"InMemoryBackend(arrays={len(self._arrays)})"


# ----------------------------------------------------------------------
# Memory-mapped .npy backend
# ----------------------------------------------------------------------
#: Fixed-size .npy v1 header: magic(6) + version(2) + hlen(2) + body.
_NPY_MAGIC = b"\x93NUMPY\x01\x00"
_NPY_HEADER_TOTAL = 128


def _npy_header_bytes(dtype: np.dtype, shape: tuple[int, ...]) -> bytes:
    """A v1 ``.npy`` header padded to exactly 128 bytes.

    The fixed size is what lets a streaming writer patch the true row
    count over the placeholder shape on close without moving the data.
    """
    descr = np.lib.format.dtype_to_descr(dtype)
    shape_repr = "(" + ", ".join(str(int(d)) for d in shape) + ("," if len(shape) == 1 else "") + ")"
    body = (
        "{'descr': %r, 'fortran_order': False, 'shape': %s, }"
        % (descr, shape_repr)
    ).encode("latin1")
    pad = _NPY_HEADER_TOTAL - len(_NPY_MAGIC) - 2 - len(body) - 1
    if pad < 0:
        raise ValueError(f"npy header too large for fixed 128-byte slot: {shape}")
    header = body + b" " * pad + b"\n"
    return _NPY_MAGIC + len(header).to_bytes(2, "little") + header


class _MmapWriter(ArrayWriter):
    """Streams chunks straight into the temp ``.npy`` file, digesting as
    it goes, then patches the header and publishes atomically."""

    def __init__(self, backend: "MmapBackend", name: str, dtype, columns) -> None:
        super().__init__(dtype, columns)
        self._backend = backend
        self._name = name
        self._path = backend._array_path(name)
        self._tmp = self._path.with_name(f"{self._path.name}.{os.getpid()}.tmp")
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._tmp, "wb")
        placeholder = (0,) if columns is None else (0, columns)
        self._handle.write(_npy_header_bytes(self.dtype, placeholder))
        self._digest = hashlib.sha256()
        self._digest.update(str(self.dtype).encode("utf-8"))

    def _append(self, chunk: np.ndarray) -> None:
        data = chunk.tobytes()
        self._handle.write(data)
        self._digest.update(data)

    def _close(self) -> None:
        shape = (self.rows,) if self.columns is None else (self.rows, self.columns)
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(_npy_header_bytes(self.dtype, shape))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._tmp, self._path)
        self._backend._register(
            self._name, self._digest.hexdigest(), self.dtype, shape
        )

    def _abort(self) -> None:
        try:
            self._handle.close()
        finally:
            self._tmp.unlink(missing_ok=True)


class MmapBackend(StorageBackend):
    """``.npy`` columns in a store directory, read as read-only mmaps.

    Parameters
    ----------
    directory:
        The store directory; created on first write.
    mode:
        ``"r"`` opens an existing store read-only (missing directory is
        an error); ``"r+"`` (default) also allows writes.
    verify:
        Re-check each array's sha256 content digest against the manifest
        the first time it is opened in this backend instance.
    """

    def __init__(
        self, directory: Path | str, mode: str = "r+", verify: bool = True
    ) -> None:
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        self.directory = Path(directory)
        self.mode = mode
        self.verify = verify
        self._verified: set[str] = set()
        self._views: dict[str, np.ndarray] = {}
        if mode == "r" and not self.directory.is_dir():
            raise FileNotFoundError(f"store directory not found: {self.directory}")
        self._manifest = self._load_manifest()

    # -- manifest ------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def _load_manifest(self) -> dict:
        path = self._manifest_path()
        if not path.exists():
            return {"format_version": _FORMAT_VERSION, "arrays": {}}
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version != _FORMAT_VERSION:
            raise StorageCorruptError(
                f"{path}: unsupported store format_version {version!r}"
            )
        return manifest

    def _save_manifest(self) -> None:
        atomic_write_bytes(
            self._manifest_path(),
            (json.dumps(self._manifest, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )

    def _register(self, name: str, digest: str, dtype, shape: tuple[int, ...]) -> None:
        self._manifest["arrays"][name] = {
            "sha256": digest,
            "dtype": str(np.dtype(dtype)),
            "shape": list(int(d) for d in shape),
        }
        self._save_manifest()
        self._verified.add(name)
        self._views.pop(name, None)

    def _array_path(self, name: str) -> Path:
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid array name {name!r}")
        return self.directory / f"{name}.npy"

    # -- StorageBackend API --------------------------------------------
    def get(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is not None:
            return view
        entry = self._manifest["arrays"].get(name)
        if entry is None:
            raise KeyError(name)
        path = self._array_path(name)
        try:
            view = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise StorageCorruptError(f"{path}: unreadable array: {exc}") from exc
        expected_shape = tuple(entry["shape"])
        if view.shape != expected_shape or str(view.dtype) != entry["dtype"]:
            raise StorageCorruptError(
                f"{path}: manifest says {entry['dtype']}{expected_shape}, "
                f"file has {view.dtype}{view.shape}"
            )
        if self.verify and name not in self._verified:
            actual = content_digest(view)
            if actual != entry["sha256"]:
                raise StorageCorruptError(
                    f"{path}: content digest mismatch "
                    f"(manifest {entry['sha256'][:12]}…, file {actual[:12]}…)"
                )
            self._verified.add(name)
        self._views[name] = view
        return view

    def put(self, name: str, array: np.ndarray) -> None:
        self._check_writable()
        array = np.ascontiguousarray(array)
        path = self._array_path(name)
        with atomic_write(path) as tmp:
            with open(tmp, "wb") as handle:
                np.save(handle, array)
                handle.flush()
                os.fsync(handle.fileno())
        self._register(name, content_digest(array), array.dtype, array.shape)

    def writer(self, name: str, dtype, columns: int | None = None) -> ArrayWriter:
        self._check_writable()
        return _MmapWriter(self, name, dtype, columns)

    def names(self) -> list[str]:
        return sorted(self._manifest["arrays"])

    def spec(self) -> dict:
        return {
            "kind": "mmap",
            "directory": str(self.directory),
            "verify": self.verify,
        }

    def close(self) -> None:
        # Views are plain mmap objects collected with the arrays; drop
        # our references so the maps can be released promptly.
        self._views.clear()

    def _check_writable(self) -> None:
        if self.mode == "r":
            raise PermissionError(
                f"store {self.directory} was opened read-only (mode='r')"
            )

    def __repr__(self) -> str:
        return (
            f"MmapBackend(directory={str(self.directory)!r}, mode={self.mode!r}, "
            f"arrays={len(self._manifest['arrays'])})"
        )


def open_backend(spec: dict) -> StorageBackend:
    """Reconstruct a read view of a backend from its picklable spec.

    This is the cross-process attach path: a worker that receives a spec
    opens the same store files read-only and shares the page cache with
    every sibling — zero per-process copies.
    """
    kind = spec.get("kind")
    if kind == "mmap":
        return MmapBackend(
            spec["directory"], mode="r", verify=bool(spec.get("verify", True))
        )
    raise ValueError(f"unknown backend spec kind {kind!r}")
