"""Base class and registry for knowledge-graph embedding models.

Every model exposes three scoring entry points used throughout the library:

* :meth:`KGEModel.score_spo` — score a batch of concrete triples;
* :meth:`KGEModel.score_sp` — score ``(s, r, ?)`` against **all** entities,
  the operation behind the paper's object-side corruption ranking;
* :meth:`KGEModel.score_po` — score ``(?, r, o)`` against all entities.

Higher scores mean more plausible triples for every model (distances are
negated).
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from ..autograd import Embedding, Module, Tensor, no_grad

__all__ = ["KGEModel", "register_model", "create_model", "available_models"]

_REGISTRY: dict[str, Type["KGEModel"]] = {}


def register_model(name: str) -> Callable[[Type["KGEModel"]], Type["KGEModel"]]:
    """Class decorator adding a model to the factory registry."""

    def decorator(cls: Type["KGEModel"]) -> Type["KGEModel"]:
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        _REGISTRY[name] = cls
        cls.model_name = name
        return cls

    return decorator


def available_models() -> list[str]:
    """Registered model names, in registration order."""
    return list(_REGISTRY)


def create_model(
    name: str,
    num_entities: int,
    num_relations: int,
    dim: int,
    seed: int = 0,
    **kwargs,
) -> "KGEModel":
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[name](
        num_entities=num_entities,
        num_relations=num_relations,
        dim=dim,
        seed=seed,
        **kwargs,
    )


class KGEModel(Module):
    """Common scaffolding for all embedding models.

    Subclasses must implement :meth:`score_spo` and :meth:`score_sp`;
    :meth:`score_po` has a generic (slower) fallback that subclasses
    override when a vectorised form exists.
    """

    model_name = "base"

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        seed: int = 0,
        entity_init: str = "xavier_uniform",
        relation_init: str = "xavier_uniform",
        relation_dim: int | None = None,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError(f"embedding dim must be >= 1, got {dim}")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.entity_embeddings = Embedding(
            num_entities, dim, self.rng, init=entity_init
        )
        self.relation_embeddings = Embedding(
            num_relations, relation_dim or dim, self.rng, init=relation_init
        )

    # ------------------------------------------------------------------
    # Scoring interface
    # ------------------------------------------------------------------
    def score_spo(
        self, s: np.ndarray, r: np.ndarray, o: np.ndarray
    ) -> Tensor:
        """Scores of concrete triples; all args are id arrays of length B."""
        raise NotImplementedError

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        """``(B, N)`` scores of ``(s_i, r_i, e)`` for every entity ``e``."""
        raise NotImplementedError

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        """``(B, N)`` scores of ``(e, r_i, o_i)`` for every entity ``e``.

        Generic fallback: a single vectorised :meth:`score_spo` call over
        the tiled ``(B · N,)`` id arrays — every entity as subject of
        every query — reshaped to ``(B, N)``.  The output keeps whatever
        dtype :meth:`score_spo` produces.  Override for an
        implementation that avoids materialising the tiled batch.
        """
        r = np.asarray(r, dtype=np.int64)
        o = np.asarray(o, dtype=np.int64)
        batch = r.shape[0]
        n = self.num_entities
        all_entities = np.arange(n, dtype=np.int64)
        with no_grad():
            scores = self.score_spo(
                np.tile(all_entities, batch), np.repeat(r, n), np.repeat(o, n)
            )
        return Tensor(scores.data.reshape(batch, n))

    # ------------------------------------------------------------------
    # Convenience numpy wrappers (inference paths)
    # ------------------------------------------------------------------
    def scores_spo(self, triples: np.ndarray) -> np.ndarray:
        """Numpy scores of an ``(M, 3)`` triple array (no gradient tape)."""
        triples = np.asarray(triples, dtype=np.int64)
        with no_grad():
            return self.score_spo(
                triples[:, 0], triples[:, 1], triples[:, 2]
            ).data.copy()

    def scores_sp(self, s: np.ndarray, r: np.ndarray) -> np.ndarray:
        """Numpy ``(B, N)`` object-side scores (no gradient tape)."""
        with no_grad():
            return self.score_sp(
                np.asarray(s, dtype=np.int64), np.asarray(r, dtype=np.int64)
            ).data.copy()

    def scores_po(self, r: np.ndarray, o: np.ndarray) -> np.ndarray:
        """Numpy ``(B, N)`` subject-side scores (no gradient tape)."""
        with no_grad():
            return self.score_po(
                np.asarray(r, dtype=np.int64), np.asarray(o, dtype=np.int64)
            ).data.copy()

    # ------------------------------------------------------------------
    # Embedding access
    # ------------------------------------------------------------------
    def entity_matrix(self) -> np.ndarray:
        """The raw ``(N, d)`` entity embedding array."""
        return self.entity_embeddings.weight.data

    def relation_matrix(self) -> np.ndarray:
        """The raw ``(K, d_r)`` relation embedding array."""
        return self.relation_embeddings.weight.data

    def post_batch_hook(self) -> None:
        """Called by training jobs after each optimizer step.

        TransE overrides this to renormalise entity embeddings.
        """

    def sparse_entity_parameters(self) -> tuple:
        """Parameters eligible for the row-sparse gradient fast path.

        These are the per-entity tables indexed by gathered id arrays
        during scoring; the training loop toggles their ``sparse_grad``
        flag when :attr:`TrainConfig.sparse_grads` enables the fast
        path.  ConvE extends this with its per-entity output bias.
        """
        return (self.entity_embeddings.weight,)

    def config_options(self) -> dict:
        """Model-specific constructor options, for checkpointing.

        Overridden by models with extra constructor arguments (e.g.
        TransE's ``norm``); must return JSON-serialisable values that
        :func:`repro.kge.create_model` accepts as keyword arguments.
        """
        return {}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entities={self.num_entities}, "
            f"relations={self.num_relations}, dim={self.dim})"
        )
