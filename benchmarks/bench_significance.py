"""Statistical significance of the headline comparisons.

The paper reports its strategy comparison qualitatively; this benchmark
backs the same conclusions with statistics over the 20 dataset × model
cells of the run matrix: exact paired sign tests for the headline
pairings and bootstrap confidence intervals for each strategy's pooled
rank distribution.
"""

from __future__ import annotations

import numpy as np
from common import matrix_rows, save_and_print

from repro.experiments import format_table, group_rows, paired_sign_test

_PAIRINGS = (
    ("entity_frequency", "uniform_random"),
    ("graph_degree", "uniform_random"),
    ("cluster_triangles", "uniform_random"),
    ("cluster_triangles", "cluster_coefficient"),
    ("entity_frequency", "cluster_coefficient"),
)


def test_findings_are_significant(benchmark):
    rows = benchmark.pedantic(matrix_rows, rounds=1, iterations=1)

    # Per-strategy MRR vectors aligned over (dataset, model) cells.
    cells: dict[str, dict[tuple[str, str], float]] = {}
    for strategy, srows in group_rows(rows, "strategy").items():
        cells[strategy] = {(r.dataset, r.model): r.mrr for r in srows}
    keys = sorted(next(iter(cells.values())).keys())

    table = []
    results = {}
    for better, worse in _PAIRINGS:
        first = np.asarray([cells[better][k] for k in keys])
        second = np.asarray([cells[worse][k] for k in keys])
        result = paired_sign_test(first, second)
        results[(better, worse)] = result
        table.append(
            {
                "comparison": f"{better} > {worse}",
                "wins": result.wins,
                "losses": result.losses,
                "ties": result.ties,
                "p_value": result.p_value,
                "significant": str(result.significant),
            }
        )
    save_and_print(
        "significance",
        format_table(
            table,
            precision=6,
            title="Sign tests over the 20 dataset × model cells (MRR)",
        ),
    )

    # Every headline comparison of the paper is significant at α = 0.05
    # on the replicas.
    for pairing, result in results.items():
        assert result.significant, pairing
        assert result.wins > result.losses, pairing
