"""RPR001 — no global random-number-generator state.

Every sampling strategy in the paper draws from *seeded* distributions;
the reproduction guarantees bit-for-bit determinism by threading explicit
``numpy.random.Generator`` objects through every code path.  A single
call into the legacy global RNG (``np.random.seed`` / ``np.random.rand``
/ ...) or the stdlib ``random`` module silently couples results to
process-global state and import order, so this rule bans them outright.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, numpy_aliases, register_rule

__all__ = ["GlobalRngRule"]

#: The explicit-generator surface of ``numpy.random`` that stays legal.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Stdlib ``random`` attributes that do not touch the global generator.
_ALLOWED_STDLIB_RANDOM = frozenset({"Random", "SystemRandom"})


@register_rule
class GlobalRngRule(Rule):
    rule_id = "RPR001"
    name = "no-global-rng"
    description = (
        "global RNG calls (np.random.seed/rand/choice/... or stdlib random.*) "
        "are banned; thread an explicit np.random.Generator instead"
    )
    rationale = (
        "Every sampling strategy's weights, negatives, and splits must "
        "replay bit-identically from a seed.  Global-state RNG calls "
        "share one hidden stream across the whole process, so any "
        "reordering — a new import, a thread, a different strategy "
        "running first — silently changes every draw after it."
    )
    example = (
        "weights = np.random.rand(n)          # RPR001: global stream\n"
        "rng = np.random.default_rng(seed)\n"
        "weights = rng.random(n)              # explicit, replayable\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        np_names = set(numpy_aliases(ctx.tree))
        np_random_names = set()
        stdlib_names = set()

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random":
                        if alias.asname:
                            np_random_names.add(alias.asname)
                        else:
                            # `import numpy.random` binds the name `numpy`.
                            np_names.add("numpy")
                    elif alias.name == "random":
                        stdlib_names.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_names.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM:
                            yield self.finding(
                                ctx,
                                node,
                                f"import of numpy.random.{alias.name} uses the "
                                "global RNG; use np.random.default_rng(seed)",
                            )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_STDLIB_RANDOM:
                            yield self.finding(
                                ctx,
                                node,
                                f"import of random.{alias.name} uses global RNG "
                                "state; use an explicit np.random.Generator",
                            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            target = self._global_rng_attribute(
                node, np_names, np_random_names, stdlib_names
            )
            if target is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{target} relies on global RNG state; pass an explicit "
                    "np.random.Generator (np.random.default_rng(seed))",
                )

    @staticmethod
    def _global_rng_attribute(
        node: ast.Attribute,
        np_names: set[str],
        np_random_names: set[str],
        stdlib_names: set[str],
    ) -> str | None:
        """Dotted name of a banned RNG access, or None if ``node`` is fine."""
        value = node.value
        # np.random.<attr> — two-level chain rooted at a numpy alias.
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in np_names
            and node.attr not in _ALLOWED_NP_RANDOM
        ):
            return f"{value.value.id}.random.{node.attr}"
        if isinstance(value, ast.Name):
            # <np_random_alias>.<attr> from `import numpy.random as npr`
            # or `from numpy import random`.
            if value.id in np_random_names and node.attr not in _ALLOWED_NP_RANDOM:
                return f"{value.id}.{node.attr}"
            if value.id in stdlib_names and node.attr not in _ALLOWED_STDLIB_RANDOM:
                return f"{value.id}.{node.attr}"
        return None
