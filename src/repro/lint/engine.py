"""The analysis engine: file collection, parallel walking, suppression.

Each file is parsed once and every enabled rule runs over the shared AST.
Files are analysed in a thread pool (``ast.parse`` dominates and is
C-level work, so threads pay off without process-spawn overhead) and the
combined finding list is sorted, keeping output deterministic regardless
of scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from fnmatch import fnmatch
from pathlib import Path

from .config import LintConfig
from .findings import PARSE_ERROR_ID, Finding
from .rules import ModuleContext, Rule, all_rules
from .suppress import filter_suppressed

__all__ = ["LintEngine"]


class LintEngine:
    """Run the enabled rules over sources, files, or directory trees."""

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config or LintConfig()
        self.rules = self._resolve_rules(self.config)

    @staticmethod
    def _resolve_rules(config: LintConfig) -> list[Rule]:
        rules = all_rules()
        known = {rule.rule_id for rule in rules}
        unknown = (set(config.enable) | set(config.disable)) - known
        if unknown:
            raise ValueError(f"unknown rule ids in config: {sorted(unknown)}")
        if config.enable:
            rules = [rule for rule in rules if rule.rule_id in config.enable]
        return [rule for rule in rules if rule.rule_id not in config.disable]

    # ------------------------------------------------------------------
    # Single-module entry points
    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module: str | None = None
    ) -> list[Finding]:
        """Analyse one module given as text."""
        try:
            ctx = ModuleContext.from_source(source, path=path, module=module)
        except SyntaxError as error:
            return [
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 1,
                    message=f"syntax error: {error.msg}",
                )
            ]
        findings = [
            finding for rule in self.rules for finding in rule.check(ctx)
        ]
        return sorted(filter_suppressed(findings, source), key=Finding.sort_key)

    def lint_file(self, path: Path | str, module: str | None = None) -> list[Finding]:
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"), path=str(path), module=module
        )

    # ------------------------------------------------------------------
    # Tree walking
    # ------------------------------------------------------------------
    def collect_files(self, paths: list[Path | str]) -> list[Path]:
        """Expand files/directories into a sorted, de-duplicated file list."""
        files: list[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            elif entry.suffix == ".py":
                files.append(entry)
            else:
                raise FileNotFoundError(f"not a python file or directory: {entry}")
        unique = sorted(set(files))
        return [file for file in unique if not self._excluded(file)]

    def _excluded(self, path: Path) -> bool:
        posix = path.as_posix()
        return any(fnmatch(posix, pattern) for pattern in self.config.exclude)

    def lint_paths(
        self, paths: list[Path | str], jobs: int | None = None
    ) -> list[Finding]:
        """Analyse every file under ``paths`` in parallel."""
        files = self.collect_files(paths)
        if not files:
            return []
        workers = jobs or min(len(files), os.cpu_count() or 1)
        if workers <= 1:
            results = [self.lint_file(file) for file in files]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(self.lint_file, files))
        return sorted(
            (finding for result in results for finding in result),
            key=Finding.sort_key,
        )
