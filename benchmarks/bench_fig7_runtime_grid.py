"""Figure 7 — runtime vs max_candidates, one line per top_n
(paper §4.3.1, FB15K-237 + TransE, UNIFORM RANDOM).

Expected shape: the lines for different top_n overlap (top_n is a pure
filter and costs nothing), while runtime grows monotonically with
max_candidates (more candidates must be scored).
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_GRID,
    TOP_N_GRID,
    grid_points,
    save_and_print,
)

from repro.experiments import format_series


def test_fig7_runtime_grid(benchmark):
    points = benchmark.pedantic(
        lambda: grid_points("uniform_random"), rounds=1, iterations=1
    )

    series = {}
    for top_n in TOP_N_GRID:
        series[f"top_n={top_n}"] = [
            round(p.runtime_seconds, 3)
            for p in points
            if p.top_n == top_n
        ]
    text = format_series(
        "max_candidates",
        list(MAX_CANDIDATES_GRID),
        series,
        title="Figure 7 — runtime (s) vs max_candidates on fb15k237-like + TransE (UR)",
    )
    save_and_print("fig7_runtime_grid", text)

    # Shape check 1: top_n has practically no impact on runtime — the
    # lines overlap at the typical grid point.  The median relative
    # spread is used because individual cells are single timed runs and
    # occasionally catch a scheduler hiccup.
    runtimes = np.asarray([list(v) for v in series.values()])  # (topn, cand)
    spread = runtimes.max(axis=0) - runtimes.min(axis=0)
    relative_spread = spread / runtimes.mean(axis=0)
    assert np.median(relative_spread) < 0.4

    # Shape check 2: runtime grows with max_candidates (compare the two
    # ends of each line, averaging over top_n).
    means = runtimes.mean(axis=0)
    assert means[-1] > means[0]
