"""RPR006 bad fixture: narrow dtypes, mutable default, bare except."""

import numpy as np


def collect(values=[], dtype=np.float32):
    try:
        return np.asarray(values, dtype="float32")
    except:
        return None
