"""Row-sparse gradients for embedding parameters.

A minibatch of KGE triples references a few hundred embedding rows out of
a vocabulary of thousands, yet the classic tape implementation
scatter-adds every batch gradient into a dense ``(num_rows, dim)`` array
and the optimizers then sweep the full table.  :class:`SparseGrad` is the
compact alternative: the deduplicated row ids touched by the batch plus
one accumulated value row per id.

Bit-identity contract
---------------------
Everything here is constructed so that a sparse training run produces
**the same floating-point bits** as the dense run it replaces:

* deduplication uses ``np.unique(..., return_inverse=True)`` followed by
  an ``np.add.at`` segment-sum, which adds duplicate contributions in
  exactly the same element order as the dense ``np.add.at(full, indices,
  grad)`` scatter it stands in for;
* merging two sparse gradients (a parameter gathered twice in one
  forward pass) adds the operands in arrival order, matching the dense
  tape's ``grad += contribution`` accumulation order;
* adding into an existing dense gradient touches only the present rows —
  the dense path would add exact zeros everywhere else, which is a
  bitwise no-op.

The only tolerated divergence is the sign of floating-point zeros
(``-0.0 + 0.0`` is ``+0.0`` on the dense path), which ``==`` and
``np.array_equal`` cannot observe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseGrad"]


class SparseGrad:
    """A row-sparse gradient: ``k`` unique rows of a ``shape`` array.

    Parameters
    ----------
    rows:
        Sorted, deduplicated ``int64`` row indices, shape ``(k,)``.
    values:
        Accumulated gradient rows, shape ``(k,) + shape[1:]``.
    shape:
        The dense shape this gradient is sparse over (first axis is the
        row axis).

    Instances are created by :meth:`from_indices` (the tape's scatter
    replacement) and combined by the accumulation helpers below; the
    constructor trusts its arguments and is not a public entry point.
    """

    __slots__ = ("rows", "values", "shape")

    def __init__(self, rows: np.ndarray, values: np.ndarray, shape: tuple[int, ...]) -> None:
        self.rows = rows
        self.values = values
        self.shape = tuple(shape)

    @classmethod
    def from_indices(
        cls, indices: np.ndarray, values: np.ndarray, shape: tuple[int, ...]
    ) -> "SparseGrad":
        """Build from possibly-duplicated ``indices`` with segment-sum dedup.

        ``indices`` is the 1-D row-id array of a ``gather_rows`` call and
        ``values`` the upstream gradient (one leading batch axis).
        Duplicate rows are summed in occurrence order — the exact order
        ``np.add.at`` would use on a dense target — so the result is
        bitwise equal to the dense scatter, row for row.

        ``np.add.at`` loops element by element, so the hot path assigns
        each row's *first* occurrence with a vectorised fancy index and
        scatter-adds only the duplicate occurrences.  Per row that
        computes ``(v₁ + v₂) + v₃`` where the dense scatter computes
        ``((0 + v₁) + v₂) + v₃`` — identical bits apart from the sign of
        a ``-0.0`` first occurrence, the divergence this module already
        tolerates.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        rows, inverse, counts = np.unique(
            indices, return_inverse=True, return_counts=True
        )
        compact = np.empty((rows.shape[0],) + tuple(shape[1:]), dtype=np.float64)
        if rows.shape[0] == indices.shape[0]:
            compact[inverse] = values
            return cls(rows, compact, shape)
        # Stable sort groups occurrences by row while keeping each group
        # in occurrence order; the group heads are the first occurrences.
        order = np.argsort(inverse, kind="stable")
        heads = np.zeros(indices.shape[0], dtype=bool)
        heads[np.cumsum(counts[:-1])] = True
        heads[0] = True
        first = order[heads]
        compact[inverse[first]] = values[first]
        rest = order[~heads]
        np.add.at(compact, inverse[rest], values[rest])
        return cls(rows, compact, shape)

    @property
    def nnz_rows(self) -> int:
        """Number of distinct rows carrying gradient."""
        return int(self.rows.shape[0])

    def to_dense(self) -> np.ndarray:
        """Materialise the full dense gradient array."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.rows] = self.values
        return out

    def add_into_dense(self, dense: np.ndarray) -> None:
        """Accumulate into an existing dense gradient, in place.

        Equivalent to ``dense += self.to_dense()`` without the
        materialisation: absent rows would contribute exact zeros.
        """
        dense[self.rows] += self.values

    def merged_with(self, other: "SparseGrad") -> "SparseGrad":
        """Return the sum of two sparse gradients over the same shape.

        ``self`` is added first, then ``other`` — the same order the
        dense tape would apply the two contributions.
        """
        if other.shape != self.shape:
            raise ValueError(
                f"cannot merge SparseGrad of shape {other.shape} into {self.shape}"
            )
        rows = np.unique(np.concatenate([self.rows, other.rows]))
        out = np.zeros((rows.shape[0],) + self.shape[1:], dtype=np.float64)
        out[np.searchsorted(rows, self.rows)] += self.values
        out[np.searchsorted(rows, other.rows)] += other.values
        return SparseGrad(rows, out, self.shape)

    def norm_squared(self) -> float:
        """Sum of squared entries (absent rows contribute zero)."""
        return float(np.sum(np.square(self.values)))

    def __repr__(self) -> str:
        return (
            f"SparseGrad(rows={self.nnz_rows}/{self.shape[0]}, "
            f"shape={self.shape})"
        )
