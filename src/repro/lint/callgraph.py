"""Pass 2 substrate: name resolution, import graph, and the call graph.

:class:`ProjectIndex` holds every :class:`~repro.lint.index.ModuleInfo`
of a run and answers the cross-module questions pass 1 cannot: what an
absolute dotted name resolves to (following binding chains through
package ``__init__`` re-exports), which project modules a module
imports, and which modules transitively depend on a changed one.

:class:`CallGraph` layers call-edge resolution on top: direct calls,
``self.method()`` dispatch with base-class lookup across modules,
``self.attr.method()`` through inferred attribute types, locally-typed
instances (``x = Foo(); x.m()``), and functions handed to executors.
It provides reachability with witness paths (RPR010/RPR011) and a
transitive raise-set fixpoint (RPR014).

Everything here is recomputed per run from the (cached) per-module
records — only pass 1 is persisted, so resolution never goes stale.
"""

from __future__ import annotations

from .index import CallSite, FunctionInfo, ModuleInfo

__all__ = ["CallGraph", "ProjectIndex", "node_key", "split_node"]


def node_key(module: str, qual: str) -> str:
    return f"{module}:{qual}"


def split_node(key: str) -> tuple[str, str]:
    module, _, qual = key.partition(":")
    return module, qual


class ProjectIndex:
    """All module fact records of one run, with cross-module resolution."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = dict(modules)
        #: Top-level package names present in the index ("repro", ...).
        self.roots = frozenset(
            name.split(".")[0] for name in self.modules
        )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, target: str) -> tuple[str, str]:
        """Resolve an absolute dotted ``target`` through binding chains.

        Returns ``(kind, qual)`` where kind is one of:

        - ``"module"``  — qual is the module name;
        - ``"symbol"``  — qual is ``"module:Sym"`` or ``"module:Cls.attr"``;
        - ``"missing"`` — the owning module is indexed but the symbol
          chain breaks there (the RPR013 signal);
        - ``"unknown"`` — project-rooted but the module is not indexed
          (partial index, e.g. single-file linting) — never flagged;
        - ``"external"`` — outside the project entirely.
        """
        seen: set[str] = set()
        while True:
            if target in seen:
                return ("missing", target)
            seen.add(target)
            parts = target.split(".")
            matched = None
            for cut in range(len(parts), 0, -1):
                module = ".".join(parts[:cut])
                if module in self.modules:
                    matched = (module, parts[cut:])
                    break
            if matched is None:
                if parts[0] in self.roots:
                    return ("unknown", target)
                return ("external", target)
            module, rest = matched
            if not rest:
                return ("module", module)
            info = self.modules[module]
            head = rest[0]
            if head in info.definitions and info.definitions[head] != "import":
                return ("symbol", node_key(module, ".".join(rest)))
            if head in info.bindings:
                binding = info.bindings[head]
                target = ".".join([binding.target] + rest[1:])
                continue
            return ("missing", target)

    def resolve_class(
        self, module: str, dotted: tuple[str, ...]
    ) -> tuple[str, str] | None:
        """Resolve a dotted class reference *as seen from* ``module``."""
        info = self.modules.get(module)
        if info is None:
            return None
        root = dotted[0]
        if len(dotted) == 1 and root in info.classes:
            return (module, root)
        if root in info.bindings:
            target = ".".join([info.bindings[root].target] + list(dotted[1:]))
            kind, qual = self.resolve(target)
            if kind == "symbol":
                owner, sym = split_node(qual)
                if "." not in sym and sym in self.modules[owner].classes:
                    return (owner, sym)
        return None

    # ------------------------------------------------------------------
    # Exception hierarchy
    # ------------------------------------------------------------------
    def exception_ancestry(self, module: str, cls_name: str) -> frozenset[str]:
        """The class, its project ancestors (``mod:Cls``), and builtin bases.

        Builtin bases appear by bare name (``"ValueError"``); every chain
        implicitly ends at ``Exception``/``BaseException``.
        """
        out: set[str] = set()
        stack = [(module, cls_name)]
        while stack:
            mod, name = stack.pop()
            key = node_key(mod, name)
            if key in out:
                continue
            out.add(key)
            info = self.modules.get(mod)
            cls = info.classes.get(name) if info else None
            if cls is None:
                continue
            for base in cls.bases:
                resolved = self.resolve_class(mod, base)
                if resolved is not None:
                    stack.append(resolved)
                else:
                    out.add(base[-1])
        out.update(("Exception", "BaseException"))
        return frozenset(out)

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------
    def import_graph(self) -> dict[str, frozenset[str]]:
        """Project modules each module's bindings reach into."""
        graph: dict[str, frozenset[str]] = {}
        for name, info in self.modules.items():
            deps: set[str] = set()
            for binding in info.bindings.values():
                kind, qual = self.resolve(binding.target)
                if kind == "module":
                    deps.add(qual)
                elif kind == "symbol":
                    deps.add(split_node(qual)[0])
                elif kind == "missing":
                    parts = qual.split(".")
                    for cut in range(len(parts), 0, -1):
                        prefix = ".".join(parts[:cut])
                        if prefix in self.modules:
                            deps.add(prefix)
                            break
            deps.discard(name)
            graph[name] = frozenset(deps)
        return graph

    def transitive_importers(self, changed: set[str]) -> frozenset[str]:
        """``changed`` plus every module that (transitively) imports one.

        This is the cache-invalidation frontier: a re-export or signature
        change in module M can only alter analysis results in modules
        that can reach M through their imports.
        """
        reverse: dict[str, set[str]] = {name: set() for name in self.modules}
        for importer, deps in self.import_graph().items():
            for dep in deps:
                if dep in reverse:
                    reverse[dep].add(importer)
        out = set(changed) & set(self.modules)
        queue = list(out)
        while queue:
            current = queue.pop()
            for importer in reverse.get(current, ()):
                if importer not in out:
                    out.add(importer)
                    queue.append(importer)
        return frozenset(out)


class CallGraph:
    """Resolved call edges over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.nodes: dict[str, tuple[str, FunctionInfo]] = {}
        for module, info in index.modules.items():
            for qual, fn in info.functions.items():
                self.nodes[node_key(module, qual)] = (module, fn)
        self.edges: dict[str, list[tuple[str, CallSite]]] = {}
        for key, (module, fn) in self.nodes.items():
            edges: list[tuple[str, CallSite]] = []
            for site in fn.calls:
                for target in self.resolve_call(module, fn, site.parts):
                    edges.append((target, site))
            for parts in fn.submitted:
                for target in self.resolve_call(module, fn, parts):
                    edges.append(
                        (target, CallSite(parts, fn.lineno, fn.col))
                    )
            self.edges[key] = edges

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def _method_node(
        self, module: str, cls_name: str, method: str
    ) -> str | None:
        """Look ``method`` up on a class, walking project base classes."""
        seen: set[tuple[str, str]] = set()
        stack = [(module, cls_name)]
        while stack:
            mod, name = stack.pop(0)
            if (mod, name) in seen:
                continue
            seen.add((mod, name))
            info = self.index.modules.get(mod)
            cls = info.classes.get(name) if info else None
            if cls is None:
                continue
            if method in cls.methods:
                return node_key(mod, cls.methods[method])
            for base in cls.bases:
                resolved = self.index.resolve_class(mod, base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def _node_for_symbol(self, module: str, sym: str) -> str | None:
        info = self.index.modules.get(module)
        if info is None:
            return None
        parts = sym.split(".")
        if len(parts) == 1:
            if sym in info.functions:
                return node_key(module, sym)
            if sym in info.classes:
                return self._method_node(module, sym, "__init__")
            return None
        if parts[0] in info.classes and len(parts) == 2:
            return self._method_node(module, parts[0], parts[1])
        return None

    def resolve_call(
        self, module: str, fn: FunctionInfo, parts: tuple[str, ...]
    ) -> list[str]:
        info = self.index.modules.get(module)
        if info is None or not parts:
            return []
        root = parts[0]
        # self.method() / cls.method() / self.attr.method()
        if root in ("self", "cls") and fn.cls is not None:
            if len(parts) == 2:
                target = self._method_node(module, fn.cls, parts[1])
                return [target] if target else []
            if len(parts) >= 3:
                cls_info = info.classes.get(fn.cls)
                ctor = cls_info.attr_types.get(parts[1]) if cls_info else None
                if ctor is not None:
                    resolved = self.index.resolve_class(module, ctor)
                    if resolved is not None:
                        target = self._method_node(
                            resolved[0], resolved[1], parts[-1]
                        )
                        return [target] if target else []
            return []
        # Closures defined in this function.
        if root in fn.nested and len(parts) == 1:
            return [node_key(module, fn.nested[root])]
        # Locally-typed instances: x = Foo(); x.m()
        if root in fn.local_types and len(parts) == 2:
            resolved = self.index.resolve_class(module, fn.local_types[root])
            if resolved is not None:
                target = self._method_node(resolved[0], resolved[1], parts[1])
                return [target] if target else []
            return []
        # Names defined in this module.
        if root in info.definitions and info.definitions[root] != "import":
            target = self._node_for_symbol(module, ".".join(parts))
            return [target] if target else []
        # Imported names — follow the binding chain.
        if root in info.bindings:
            absolute = ".".join([info.bindings[root].target] + list(parts[1:]))
            kind, qual = self.index.resolve(absolute)
            if kind == "symbol":
                owner, sym = split_node(qual)
                target = self._node_for_symbol(owner, sym)
                return [target] if target else []
        return []

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable(self, entries: list[str]) -> dict[str, str | None]:
        """BFS from ``entries``; maps each reached node to its parent."""
        parents: dict[str, str | None] = {}
        queue: list[str] = []
        for entry in entries:
            if entry in self.nodes and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for target, _site in self.edges.get(current, ()):
                if target not in parents:
                    parents[target] = current
                    queue.append(target)
        return parents

    def witness_path(
        self, parents: dict[str, str | None], key: str
    ) -> list[str]:
        """Entry-to-node chain of function names, for rule messages."""
        chain: list[str] = []
        cursor: str | None = key
        while cursor is not None:
            chain.append(split_node(cursor)[1])
            cursor = parents.get(cursor)
        return list(reversed(chain))

    # ------------------------------------------------------------------
    # Raise sets
    # ------------------------------------------------------------------
    def resolve_exception(
        self, module: str, parts: tuple[str, ...]
    ) -> str | None:
        """Exception reference → ``mod:Cls`` (project) or bare name."""
        resolved = self.index.resolve_class(module, parts)
        if resolved is not None:
            return node_key(*resolved)
        info = self.index.modules.get(module)
        if info is not None and parts[0] in info.bindings:
            kind, qual = self.index.resolve(
                ".".join([info.bindings[parts[0]].target] + list(parts[1:]))
            )
            if kind == "symbol":
                owner, sym = split_node(qual)
                if "." not in sym and sym in self.index.modules[owner].classes:
                    return node_key(owner, sym)
        if parts[0] in ("self", "cls"):
            return None
        # ``raise exc`` re-raising a local variable carries no static type;
        # only class-cased names (ValueError, zipfile.BadZipFile) are kept.
        name = parts[-1]
        return name if name[:1].isupper() else None

    def transitive_raises(self) -> dict[str, frozenset[str]]:
        """Fixpoint of raise sets over call edges (handles cycles)."""
        result: dict[str, set[str]] = {}
        for key, (module, fn) in self.nodes.items():
            own: set[str] = set()
            for site in fn.raises:
                resolved = self.resolve_exception(module, site.parts)
                if resolved is not None:
                    own.add(resolved)
            result[key] = own
        changed = True
        while changed:
            changed = False
            for key, edges in self.edges.items():
                mine = result[key]
                before = len(mine)
                for target, _site in edges:
                    mine.update(result.get(target, ()))
                if len(mine) != before:
                    changed = True
        return {key: frozenset(value) for key, value in result.items()}
