"""Analyzer runtime guard — the full-tree scan must stay interactive.

The self-clean test in tier-1 runs the analyzer over ``src/repro`` on
every pytest invocation, so the scan has to stay cheap.  This benchmark
times the full-tree scan and asserts a generous ceiling (5 s) far above
the expected cost (well under a second), guarding against accidentally
quadratic rules or a runaway file walk.
"""

from __future__ import annotations

import time
from pathlib import Path

from common import save_and_print

from repro.experiments import format_table
from repro.lint import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_lint_full_tree_runtime(benchmark):
    config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
    engine = LintEngine(config)
    paths = list(config.paths)
    files = engine.collect_files(paths)

    findings = benchmark.pedantic(
        lambda: engine.lint_paths(paths), rounds=3, iterations=1
    )

    start = time.perf_counter()
    engine.lint_paths(paths)
    elapsed = time.perf_counter() - start

    table = format_table(
        [
            {
                "files": len(files),
                "findings": len(findings),
                "seconds": round(elapsed, 3),
                "files_per_second": round(len(files) / max(elapsed, 1e-9)),
            }
        ],
        title="repro.lint — full-tree scan runtime",
    )
    save_and_print("lint_runtime", table)

    assert findings == []
    assert elapsed < 5.0
