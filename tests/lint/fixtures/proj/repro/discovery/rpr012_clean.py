"""RPR012 clean fixture: canonical *_seconds/*_count summary keys."""


class SamplingReport:
    def summary(self):
        return {
            "rank_seconds": self.rank,
            "train_seconds": self.train,
            "facts_count": self.facts,
        }

    def to_dict(self):
        return self.summary()

    def to_json(self):
        return "{}"
