"""Hypothesis property tests for the autodiff engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, circular_correlation

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def small_arrays(shape):
    return arrays(np.float64, shape, elements=finite_floats)


@given(small_arrays((3, 4)), small_arrays((3, 4)))
def test_addition_commutes(a, b):
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_array_equal(left, right)


@given(small_arrays((2, 3)), small_arrays((2, 3)), small_arrays((2, 3)))
def test_addition_associates(a, b, c):
    left = ((Tensor(a) + Tensor(b)) + Tensor(c)).data
    right = (Tensor(a) + (Tensor(b) + Tensor(c))).data
    np.testing.assert_allclose(left, right, rtol=1e-12, atol=1e-12)


@given(small_arrays((4,)))
def test_double_negation_is_identity(a):
    np.testing.assert_array_equal((-(-Tensor(a))).data, a)


@given(small_arrays((3, 5)))
def test_sum_gradient_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_array_equal(x.grad, np.ones_like(a))

@given(small_arrays((3, 5)))
def test_linearity_of_gradient(a):
    """grad of (2x + 3x) equals grad of 5x."""
    x1 = Tensor(a.copy(), requires_grad=True)
    (x1 * 2 + x1 * 3).sum().backward()
    x2 = Tensor(a.copy(), requires_grad=True)
    (x2 * 5).sum().backward()
    np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-12)


@given(small_arrays((2, 6)))
def test_sigmoid_bounded(a):
    # At |x| ~ 100 float64 saturates to exactly 0/1, so bounds are inclusive.
    out = Tensor(a).sigmoid().data
    assert np.all(out >= 0.0)
    assert np.all(out <= 1.0)
    moderate = np.abs(a) < 30
    assert np.all(out[moderate] > 0.0)
    assert np.all(out[moderate] < 1.0)


@given(small_arrays((2, 6)))
def test_relu_nonnegative_and_idempotent(a):
    once = Tensor(a).relu()
    twice = once.relu()
    assert np.all(once.data >= 0.0)
    np.testing.assert_array_equal(once.data, twice.data)


@given(small_arrays((3, 4)))
def test_reshape_roundtrip_preserves_gradient(a):
    x = Tensor(a, requires_grad=True)
    y = x.reshape(12).reshape(3, 4)
    (y * 2).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 2.0))


@settings(max_examples=25)
@given(small_arrays((2, 8)), small_arrays((2, 8)))
def test_circular_correlation_parseval_consistency(a, b):
    """Σ_k (a ⋆ b)_k == (Σ a)(Σ b) — summing the correlation telescopes."""
    out = circular_correlation(Tensor(a), Tensor(b)).data
    np.testing.assert_allclose(
        out.sum(axis=1), a.sum(axis=1) * b.sum(axis=1), rtol=1e-8, atol=1e-8
    )


@given(small_arrays((4, 3)))
def test_mean_equals_sum_over_count(a):
    np.testing.assert_allclose(
        Tensor(a).mean(axis=0).data, Tensor(a).sum(axis=0).data / 4.0
    )


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_matmul_shapes(n, m):
    a = Tensor(np.zeros((n, 3)))
    b = Tensor(np.zeros((3, m)))
    assert (a @ b).shape == (n, m)
