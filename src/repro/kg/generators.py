"""Deterministic synthetic knowledge-graph generation.

The paper evaluates on four public benchmark KGs that are not available in
this offline environment.  The generator here produces *replica* graphs
whose shape statistics — entity/relation counts, density (triples per
entity), popularity skew, clustering level — can be dialled to match each
benchmark's profile (see :mod:`repro.kg.datasets`).

Two properties matter for a faithful reproduction:

1. **Learnability.**  Each entity carries a latent type and each relation
   connects specific (source type, target type) pairs.  KGE models can
   recover this structure, so held-out true triples rank well — without it
   every MRR in the study would be noise.
2. **Popularity skew.**  Entity participation follows a Zipf law, giving
   the long-tail structure on which the frequency/degree-based sampling
   strategies rely to beat UNIFORM RANDOM.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from .graph import KnowledgeGraph
from .io import finalize_kg_store
from .storage import MmapBackend
from .triples import TripleSet, encode_keys
from .vocabulary import Vocabulary

__all__ = [
    "KGProfile",
    "generate_kg",
    "generate_kg_streaming",
    "scale_profile",
]


@dataclass(frozen=True)
class KGProfile:
    """Shape parameters for a synthetic knowledge graph.

    Attributes
    ----------
    name:
        Dataset name recorded on the resulting graph.
    num_entities, num_relations:
        Id space sizes.
    num_triples:
        Target total triple count before splitting (deduplicated).
    valid_fraction, test_fraction:
        Split fractions; the remainder is training data.
    num_types:
        Number of latent entity types (the learnable signal).
    popularity_exponent:
        Zipf exponent of entity popularity; larger = heavier head.
    triangle_closure_prob:
        Fraction of triples created by closing open wedges, which directly
        controls the clustering-coefficient level of the graph.
    relation_skew:
        Zipf exponent of the per-relation triple share.
    pairs_per_relation:
        How many (source type, target type) pairs each relation connects.
    seed:
        RNG seed; generation is fully deterministic given the profile.
    """

    name: str
    num_entities: int
    num_relations: int
    num_triples: int
    valid_fraction: float = 0.05
    test_fraction: float = 0.05
    num_types: int = 8
    popularity_exponent: float = 0.9
    triangle_closure_prob: float = 0.15
    relation_skew: float = 0.8
    pairs_per_relation: int = 2
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_entities < 2:
            raise ValueError("need at least 2 entities")
        if self.num_relations < 1:
            raise ValueError("need at least 1 relation")
        if self.num_triples < 1:
            raise ValueError("need at least 1 triple")
        if not 0.0 <= self.triangle_closure_prob <= 1.0:
            raise ValueError("triangle_closure_prob must be in [0, 1]")
        if self.valid_fraction + self.test_fraction >= 1.0:
            raise ValueError("split fractions must leave room for training data")
        capacity = self.num_entities**2 * self.num_relations
        if self.num_triples > 0.5 * capacity:
            raise ValueError(
                f"num_triples={self.num_triples} exceeds half the id-space "
                f"capacity ({capacity}); the generator cannot avoid duplicates"
            )


def _zipf_weights(count: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Normalised Zipf weights over ``count`` items, randomly permuted."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return rng.permutation(weights)


def _sample_type_pairs(
    num_relations: int,
    num_types: int,
    pairs_per_relation: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """For each relation, the (source, target) type pairs it connects."""
    pairs: list[np.ndarray] = []
    for _ in range(num_relations):
        count = min(pairs_per_relation, num_types * num_types)
        chosen = rng.choice(num_types * num_types, size=count, replace=False)
        pairs.append(np.stack([chosen // num_types, chosen % num_types], axis=1))
    return pairs


def _close_wedges(
    triples: np.ndarray,
    relation: np.ndarray,
    count: int,
    num_entities: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Create ``count`` triples that close open wedges (u—v—w → u—w).

    Operates on the undirected projection: for a random centre node v with
    at least two neighbours, connect two of its neighbours with a random
    relation drawn from ``relation`` (a pool of relation ids to reuse).
    """
    if len(triples) == 0 or count <= 0:
        return np.zeros((0, 3), dtype=np.int64)
    neighbours: dict[int, list[int]] = {}
    for s, _, o in triples:
        if s != o:
            neighbours.setdefault(int(s), []).append(int(o))
            neighbours.setdefault(int(o), []).append(int(s))
    centres = [v for v, ns in neighbours.items() if len(ns) >= 2]
    if not centres:
        return np.zeros((0, 3), dtype=np.int64)
    centres_arr = np.asarray(centres)
    out = np.zeros((count, 3), dtype=np.int64)
    picked_centres = rng.choice(centres_arr, size=count)
    picked_relations = rng.choice(relation, size=count)
    for i in range(count):
        ns = neighbours[int(picked_centres[i])]
        u, w = rng.choice(len(ns), size=2, replace=False)
        out[i] = (ns[u], picked_relations[i], ns[w])
    return out


def generate_kg(profile: KGProfile) -> KnowledgeGraph:
    """Generate a deterministic synthetic knowledge graph from a profile."""
    rng = np.random.default_rng(profile.seed)
    n, k = profile.num_entities, profile.num_relations

    entity_types = rng.integers(0, profile.num_types, size=n)
    popularity = _zipf_weights(n, profile.popularity_exponent, rng)
    relation_share = _zipf_weights(k, profile.relation_skew, rng)
    type_pairs = _sample_type_pairs(
        k, profile.num_types, profile.pairs_per_relation, rng
    )

    # Pre-compute popularity restricted to each type.
    entities_of_type = [np.flatnonzero(entity_types == t) for t in range(profile.num_types)]
    type_popularity = []
    for members in entities_of_type:
        if members.size:
            w = popularity[members]
            type_popularity.append(w / w.sum())
        else:
            type_popularity.append(np.zeros(0))

    closure_count = int(round(profile.num_triples * profile.triangle_closure_prob))
    base_count = profile.num_triples - closure_count

    # Oversample to survive deduplication, then trim.
    oversample = int(base_count * 1.5) + 16
    relations = rng.choice(k, size=oversample, p=relation_share)
    subjects = np.zeros(oversample, dtype=np.int64)
    objects = np.zeros(oversample, dtype=np.int64)
    for r in range(k):
        idx = np.flatnonzero(relations == r)
        if idx.size == 0:
            continue
        pairs = type_pairs[r]
        picks = pairs[rng.integers(0, len(pairs), size=idx.size)]
        for row, (src_t, dst_t) in zip(idx, picks):
            src_pool = entities_of_type[src_t]
            dst_pool = entities_of_type[dst_t]
            if src_pool.size == 0 or dst_pool.size == 0:
                subjects[row] = rng.integers(0, n)
                objects[row] = rng.integers(0, n)
                continue
            subjects[row] = rng.choice(src_pool, p=type_popularity[src_t])
            objects[row] = rng.choice(dst_pool, p=type_popularity[dst_t])

    base = np.stack([subjects, relations, objects], axis=1)
    base = _dedup(base, n, k)[:base_count]

    closures = _close_wedges(
        base, rng.choice(k, size=max(closure_count, 1), p=relation_share),
        closure_count, n, rng,
    )
    combined = _dedup(np.concatenate([base, closures], axis=0), n, k)
    combined = combined[: profile.num_triples]
    combined = combined[rng.permutation(len(combined))]

    train_arr, valid_arr, test_arr = _split(
        combined, profile.valid_fraction, profile.test_fraction
    )

    metadata = dict(profile.metadata)
    metadata.update(
        {
            "profile": profile.name,
            "num_types": profile.num_types,
            "popularity_exponent": profile.popularity_exponent,
            "triangle_closure_prob": profile.triangle_closure_prob,
            "seed": profile.seed,
            "entity_types": entity_types,
        }
    )
    return KnowledgeGraph.from_arrays(
        name=profile.name,
        num_entities=n,
        num_relations=k,
        train=train_arr,
        valid=valid_arr,
        test=test_arr,
        metadata=metadata,
    )


def _dedup(triples: np.ndarray, num_entities: int, num_relations: int) -> np.ndarray:
    """Drop duplicate rows, preserving first-occurrence order."""
    if len(triples) == 0:
        return triples.reshape(0, 3).astype(np.int64)
    keys = encode_keys(triples, num_entities, num_relations)
    _, first = np.unique(keys, return_index=True)
    return triples[np.sort(first)]


def _split(
    triples: np.ndarray, valid_fraction: float, test_fraction: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split triples so valid/test never contain entities unseen in train.

    This mirrors the construction of CoDEx and the filtered benchmark
    datasets: any held-out triple referencing an entity or relation absent
    from the training split is moved back into training.
    """
    total = len(triples)
    n_valid = int(total * valid_fraction)
    n_test = int(total * test_fraction)
    n_train = total - n_valid - n_test

    train = triples[:n_train]
    heldout = triples[n_train:]

    seen_entities = set(train[:, 0].tolist()) | set(train[:, 2].tolist())
    seen_relations = set(train[:, 1].tolist())
    ok = np.asarray(
        [
            (s in seen_entities and o in seen_entities and r in seen_relations)
            for s, r, o in heldout
        ],
        dtype=bool,
    )
    train = np.concatenate([train, heldout[~ok]], axis=0)
    heldout = heldout[ok]

    n_valid = min(n_valid, len(heldout))
    valid = heldout[:n_valid]
    test = heldout[n_valid:]
    return train, valid, test


# ----------------------------------------------------------------------
# Streaming generation (out-of-core substrate)
# ----------------------------------------------------------------------


def scale_profile(
    profile: KGProfile,
    factor: float,
    name: str | None = None,
    seed: int | None = None,
) -> KGProfile:
    """Scale a profile's entity and triple counts by ``factor``.

    Shape parameters (skew exponents, closure probability, split
    fractions) are preserved, so a scaled replica keeps the statistical
    character of the original at a different size — this is how the
    substrate benchmarks sweep 1× → 50× without hand-tuning profiles.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    return replace(
        profile,
        name=name or f"{profile.name}-x{factor:g}",
        num_entities=max(2, int(round(profile.num_entities * factor))),
        num_triples=max(1, int(round(profile.num_triples * factor))),
        seed=profile.seed if seed is None else seed,
    )


def _cdf(weights: np.ndarray) -> np.ndarray:
    return np.cumsum(weights, dtype=np.float64)


def _draw(cdf: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Vectorised inverse-CDF sampling: map uniforms to indices."""
    return np.minimum(
        np.searchsorted(cdf, u, side="right"), cdf.shape[0] - 1
    ).astype(np.int64)


def _novel_mask(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Mask of ``keys`` not present in the sorted accumulator."""
    if sorted_keys.size == 0:
        return np.ones(keys.shape[0], dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, keys), sorted_keys.size - 1)
    return sorted_keys[pos] != keys


class _ChunkSampler:
    """Vectorised re-implementation of the base-triple sampling step.

    Where :func:`generate_kg` draws one entity at a time through
    ``rng.choice`` (fine at replica scale, hopeless at a million
    triples), this draws whole chunks through per-type inverse-CDF
    lookups: every random draw is a uniform array mapped through a
    precomputed cumulative table with ``searchsorted``.
    """

    def __init__(self, profile: KGProfile, rng: np.random.Generator) -> None:
        n, k = profile.num_entities, profile.num_relations
        self.n, self.k = n, k
        self.rng = rng
        self.entity_types = rng.integers(0, profile.num_types, size=n)
        popularity = _zipf_weights(n, profile.popularity_exponent, rng)
        self.relation_cdf = _cdf(
            _zipf_weights(k, profile.relation_skew, rng)
        )
        type_pairs = _sample_type_pairs(
            k, profile.num_types, profile.pairs_per_relation, rng
        )
        self.num_types = profile.num_types
        self.members = [
            np.flatnonzero(self.entity_types == t)
            for t in range(profile.num_types)
        ]
        self.type_cdf = []
        for members in self.members:
            if members.size:
                w = popularity[members]
                self.type_cdf.append(_cdf(w / w.sum()))
            else:
                self.type_cdf.append(np.zeros(0))
        # Pad the per-relation type pairs into rectangular lookup tables
        # so a chunk of relation draws maps to type pairs with one fancy
        # index (padding rows are never selected: pair_idx < counts[r]).
        counts = np.asarray([len(p) for p in type_pairs], dtype=np.int64)
        width = int(counts.max())
        self.pair_counts = counts
        self.pair_src = np.zeros((k, width), dtype=np.int64)
        self.pair_dst = np.zeros((k, width), dtype=np.int64)
        for r, pairs in enumerate(type_pairs):
            self.pair_src[r, : len(pairs)] = pairs[:, 0]
            self.pair_dst[r, : len(pairs)] = pairs[:, 1]

    def _sample_entities(self, types: np.ndarray) -> np.ndarray:
        out = np.empty(types.shape[0], dtype=np.int64)
        u = self.rng.random(types.shape[0])
        for t in range(self.num_types):
            mask = types == t
            if not mask.any():
                continue
            members = self.members[t]
            if members.size == 0:
                out[mask] = self.rng.integers(
                    0, self.n, size=int(mask.sum())
                )
            else:
                out[mask] = members[_draw(self.type_cdf[t], u[mask])]
        return out

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` candidate triples as an ``(size, 3)`` array."""
        rel = _draw(self.relation_cdf, self.rng.random(size))
        pair_idx = (
            self.rng.random(size) * self.pair_counts[rel]
        ).astype(np.int64)
        src_t = self.pair_src[rel, pair_idx]
        dst_t = self.pair_dst[rel, pair_idx]
        return np.stack(
            [self._sample_entities(src_t), rel, self._sample_entities(dst_t)],
            axis=1,
        )


def _neighbour_csr(
    subjects: np.ndarray, objects: np.ndarray, num_entities: int
) -> tuple[np.ndarray, np.ndarray]:
    """Undirected neighbour lists as ``(indptr, neighbours)`` arrays."""
    mask = subjects != objects
    nodes = np.concatenate([subjects[mask], objects[mask]])
    neigh = np.concatenate([objects[mask], subjects[mask]])
    order = np.argsort(nodes, kind="stable")
    counts = np.bincount(nodes, minlength=num_entities)
    indptr = np.zeros(num_entities + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, neigh[order]


def generate_kg_streaming(
    profile: KGProfile,
    directory: Path | str,
    chunk_size: int = 1 << 18,
    max_rounds: int = 200,
) -> KnowledgeGraph:
    """Generate a synthetic KG directly into a mmap-backed store.

    The out-of-core twin of :func:`generate_kg`: candidate triples are
    drawn in vectorised chunks, deduplicated against an in-RAM sorted
    key index (8 bytes per accepted triple — the only state that grows
    with graph size), and streamed through
    :class:`~repro.kg.storage.MmapBackend` writers.  The resident
    footprint is ``O(num_triples · 8 B)`` for the key index plus
    ``O(chunk_size)`` scratch, never the full triple table — a
    full-scale YAGO3-10 replica (~123k entities, ~1.09M triples)
    generates comfortably under a 256 MiB budget.

    Deterministic given the profile, but *not* draw-for-draw compatible
    with :func:`generate_kg`: the chunked sampler consumes the RNG
    stream differently.  The 1× replicas therefore keep using
    :func:`generate_kg`, bit-identical to every release so far.

    Returns the graph backed by read-only mmap views of the new store
    (as if ``load_kg_store(directory)`` had been called).
    """
    directory = Path(directory)
    rng = np.random.default_rng(profile.seed)
    n, k = profile.num_entities, profile.num_relations
    sampler = _ChunkSampler(profile, rng)

    closure_count = int(round(profile.num_triples * profile.triangle_closure_prob))
    base_count = profile.num_triples - closure_count

    scratch_dir = directory / ".gen-scratch"
    scratch = MmapBackend(scratch_dir, mode="r+")
    sorted_keys = np.zeros(0, dtype=np.int64)

    def accept(candidates: np.ndarray, writer, limit: int) -> int:
        """Dedup a candidate chunk and stream the novel rows out."""
        nonlocal sorted_keys
        keys = encode_keys(candidates, n, k)
        unique_keys, first = np.unique(keys, return_index=True)
        novel = _novel_mask(sorted_keys, unique_keys)
        take = min(limit, int(novel.sum()))
        if take == 0:
            return 0
        rows = first[novel][:take]
        writer.append(candidates[rows])
        sorted_keys = np.sort(
            np.concatenate([sorted_keys, unique_keys[novel][:take]])
        )
        return take

    # Phase 1: base triples, chunk by chunk.
    accepted = 0
    with scratch.writer("base", np.int64, columns=3) as base_writer:
        stalls = 0
        for _ in range(max_rounds):
            remaining = base_count - accepted
            if remaining <= 0:
                break
            size = min(chunk_size, int(remaining * 1.4) + 16)
            got = accept(sampler.sample(size), base_writer, remaining)
            accepted += got
            stalls = 0 if got else stalls + 1
            if stalls >= 3:
                break
    base_arr = scratch.get("base") if accepted else np.zeros((0, 3), np.int64)

    # Phase 2: wedge closures over the base graph's undirected projection.
    indptr, neigh = _neighbour_csr(base_arr[:, 0], base_arr[:, 2], n)
    deg = np.diff(indptr)
    eligible = np.flatnonzero(deg >= 2)
    closed = 0
    with scratch.writer("closures", np.int64, columns=3) as closure_writer:
        stalls = 0
        for _ in range(max_rounds):
            remaining = profile.num_triples - accepted - closed
            if remaining <= 0 or eligible.size == 0:
                break
            size = min(chunk_size, int(remaining * 1.6) + 16)
            centres = eligible[rng.integers(0, eligible.size, size=size)]
            d = deg[centres]
            i = (rng.random(size) * d).astype(np.int64)
            j = (rng.random(size) * (d - 1)).astype(np.int64)
            j += j >= i  # second distinct neighbour slot
            candidates = np.stack(
                [
                    neigh[indptr[centres] + i],
                    _draw(sampler.relation_cdf, rng.random(size)),
                    neigh[indptr[centres] + j],
                ],
                axis=1,
            )
            got = accept(candidates, closure_writer, remaining)
            closed += got
            stalls = 0 if got else stalls + 1
            if stalls >= 3:
                break
    closure_arr = (
        scratch.get("closures") if closed else np.zeros((0, 3), np.int64)
    )
    total = accepted + closed

    def gather(idx: np.ndarray) -> np.ndarray:
        """Fetch rows by global index across the two scratch columns."""
        out = np.empty((idx.shape[0], 3), dtype=np.int64)
        in_base = idx < accepted
        out[in_base] = base_arr[idx[in_base]]
        out[~in_base] = closure_arr[idx[~in_base] - accepted]
        return out

    # Phase 3: permutation and split (vectorised twin of _split).
    perm = rng.permutation(total)
    n_valid = int(total * profile.valid_fraction)
    n_test = int(total * profile.test_fraction)
    n_train = total - n_valid - n_test
    train_idx, heldout_idx = perm[:n_train], perm[n_train:]

    seen_entities = np.zeros(n, dtype=bool)
    seen_relations = np.zeros(k, dtype=bool)
    for lo in range(0, train_idx.shape[0], chunk_size):
        rows = gather(train_idx[lo : lo + chunk_size])
        seen_entities[rows[:, 0]] = True
        seen_entities[rows[:, 2]] = True
        seen_relations[rows[:, 1]] = True
    ok = np.zeros(heldout_idx.shape[0], dtype=bool)
    for lo in range(0, heldout_idx.shape[0], chunk_size):
        rows = gather(heldout_idx[lo : lo + chunk_size])
        ok[lo : lo + rows.shape[0]] = (
            seen_entities[rows[:, 0]]
            & seen_entities[rows[:, 2]]
            & seen_relations[rows[:, 1]]
        )
    train_idx = np.concatenate([train_idx, heldout_idx[~ok]])
    heldout_idx = heldout_idx[ok]
    n_valid = min(n_valid, heldout_idx.shape[0])
    split_indices = {
        "train": train_idx,
        "valid": heldout_idx[:n_valid],
        "test": heldout_idx[n_valid:],
    }

    # Phase 4: stream each split's canonical (key-sorted) columns into
    # the final store, then drop the scratch columns.
    backend = MmapBackend(directory, mode="r+")
    splits: dict[str, TripleSet] = {}
    for split_name, idx in split_indices.items():
        keys = np.empty(idx.shape[0], dtype=np.int64)
        for lo in range(0, idx.shape[0], chunk_size):
            rows = gather(idx[lo : lo + chunk_size])
            keys[lo : lo + rows.shape[0]] = encode_keys(rows, n, k)
        order = np.argsort(keys)
        with backend.writer(
            f"{split_name}.triples", np.int64, columns=3
        ) as triples_writer:
            for lo in range(0, idx.shape[0], chunk_size):
                triples_writer.append(gather(idx[order[lo : lo + chunk_size]]))
        with backend.writer(f"{split_name}.keys", np.int64) as keys_writer:
            for lo in range(0, idx.shape[0], chunk_size):
                keys_writer.append(keys[order[lo : lo + chunk_size]])
        splits[split_name] = TripleSet.from_backend(
            backend, n, k, prefix=f"{split_name}."
        )
    scratch.close()
    shutil.rmtree(scratch_dir)

    metadata = dict(profile.metadata)
    metadata.update(
        {
            "profile": profile.name,
            "num_types": profile.num_types,
            "popularity_exponent": profile.popularity_exponent,
            "triangle_closure_prob": profile.triangle_closure_prob,
            "seed": profile.seed,
            "entity_types": sampler.entity_types,
            "streaming": True,
        }
    )
    graph = KnowledgeGraph(
        name=profile.name,
        entities=Vocabulary.from_range("e", n),
        relations=Vocabulary.from_range("r", k),
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
        metadata=metadata,
    )
    finalize_kg_store(backend, graph)
    return graph
