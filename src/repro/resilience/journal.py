"""Append-only JSONL run journals for resumable campaigns.

Each record is one JSON object on one line, flushed and fsynced at
append time, so a killed process loses at most the line it was writing.
Readers tolerate exactly that: a torn trailing line (or any undecodable
line) is counted in :attr:`JournalView.corrupt_lines` and skipped
instead of poisoning the whole campaign state.

The journal is deliberately generic — records carry an ``event`` name
plus arbitrary JSON fields — and :mod:`repro.experiments.runner` layers
the campaign semantics (``cell_started`` / ``cell_succeeded`` /
``cell_failed``) on top.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RunJournal", "JournalView", "error_fingerprint"]


def error_fingerprint(error: BaseException, limit: int = 200) -> str:
    """A compact, stable identifier for a failure: ``Type: first line``."""
    first_line = str(error).splitlines()[0] if str(error) else ""
    return f"{type(error).__name__}: {first_line}"[:limit]


@dataclass
class JournalView:
    """Parsed journal contents."""

    records: list[dict] = field(default_factory=list)
    corrupt_lines: int = 0

    def by_event(self, event: str) -> list[dict]:
        return [record for record in self.records if record.get("event") == event]


class RunJournal:
    """Crash-safe JSONL event log at a fixed path."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def append(self, event: str, **fields: object) -> dict:
        """Durably append one record; returns the record written."""
        record = {"event": event, **fields}
        line = json.dumps(record, ensure_ascii=False)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def read(self) -> JournalView:
        """All decodable records; torn/corrupt lines are skipped, counted."""
        view = JournalView()
        if not self.path.is_file():
            return view
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                view.corrupt_lines += 1
                continue
            if isinstance(record, dict):
                view.records.append(record)
            else:
                view.corrupt_lines += 1
        return view
