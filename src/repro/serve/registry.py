"""The model registry: lazy-loading, LRU-bounded, pin-safe.

Models are registered as ``(dataset, model, config-digest)`` coordinates
pointing at checksummed checkpoints (:mod:`repro.kge.checkpoint`).  The
first request touching a model loads it — checksum-verified — and builds
its warm serving state: the dataset graph, a per-model
:class:`~repro.kge.ranking.RankingEngine` whose ``ScoreRowCache``
persists across requests, lazily-computed graph statistics, and tuned
classification thresholds.  Loaded entries live in an LRU of bounded
capacity.

Concurrency contract:

- concurrent first requests for the same model elect one loader; the
  rest wait on a condition variable in bounded slices (their deadline
  still fires while the leader loads);
- every request *pins* its entry for the duration of the call
  (:meth:`ModelRegistry.acquire` is a context manager), and eviction
  only ever removes entries with zero pins — an in-flight request can
  never have its model dropped out from under it, even if that leaves
  the registry temporarily over capacity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..api.types import BadRequestError, ModelInfo, ModelNotFoundError, ModelRef, config_digest
from ..kg.datasets import resolve_dataset
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kge.base import KGEModel
from ..kge.checkpoint import checkpoint_header, load_model
from ..kge.ranking import RankingEngine
from ..obs import get_registry
from ..resilience import Deadline

__all__ = ["ModelEntry", "ModelRegistry", "RegistrySpec"]

# Condition waits poll in bounded slices so a stuck loader cannot hang a
# waiter past its deadline (lint rule RPR018 enforces the bound).
_WAIT_SLICE_SECONDS = 0.1


class RegistrySpec:
    """Immutable coordinates of one registered checkpoint."""

    __slots__ = ("ref", "path", "header")

    def __init__(self, ref: ModelRef, path: Path, header: Mapping[str, Any]) -> None:
        self.ref = ref
        self.path = path
        self.header = dict(header)

    def info(self, loaded: bool) -> ModelInfo:
        return ModelInfo(
            model_id=self.ref.model_id,
            dataset=self.ref.dataset,
            model=self.ref.model,
            digest=self.ref.digest,
            dim=int(self.header["dim"]),
            entities_count=int(self.header["num_entities"]),
            relations_count=int(self.header["num_relations"]),
            seed=int(self.header["seed"]),
            loaded=loaded,
        )


class ModelEntry:
    """One loaded model plus its warm per-model serving state."""

    def __init__(
        self,
        spec: RegistrySpec,
        model: KGEModel,
        graph: KnowledgeGraph,
        engine: RankingEngine,
    ) -> None:
        self._lock = threading.Lock()
        self.spec = spec
        self.model = model
        self.graph = graph
        self.engine = engine
        self.pins = 0
        self._stats: GraphStatistics | None = None
        self._classifications: dict[tuple[int, bool], dict[str, float]] = {}

    def graph_stats(self) -> GraphStatistics:
        """The dataset's graph statistics, computed once and reused."""
        with self._lock:
            if self._stats is None:
                self._stats = GraphStatistics(self.graph.train)
            return self._stats

    def classification(
        self, seed: int, hard_negatives: bool, compute: Callable[[], dict[str, float]]
    ) -> dict[str, float]:
        """Tuned classification threshold, cached per ``(seed, negatives)``.

        ``compute`` is deterministic, so a rare duplicate computation on a
        racing first request returns an identical dict; the first writer
        wins and both callers observe the same values.
        """
        key = (int(seed), bool(hard_negatives))
        with self._lock:
            cached = self._classifications.get(key)
        if cached is None:
            result = compute()
            with self._lock:
                self._classifications.setdefault(key, result)
                cached = self._classifications[key]
        return cached


class _Lease:
    """Context manager pinning a registry entry for one request."""

    __slots__ = ("_registry", "entry")

    def __init__(self, registry: "ModelRegistry", entry: ModelEntry) -> None:
        self._registry = registry
        self.entry = entry

    def __enter__(self) -> ModelEntry:
        return self.entry

    def __exit__(self, *exc_info: object) -> None:
        self._registry.release(self.entry)


class ModelRegistry:
    """Thread-safe catalogue and LRU loader of servable models."""

    def __init__(
        self,
        *,
        capacity: int = 4,
        cache_size: int = 4096,
        workers: int = 1,
        graph_loader: Callable[[str], KnowledgeGraph] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be at least 1")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._capacity = capacity
        self._cache_size = cache_size
        self._workers = workers
        self._graph_loader = graph_loader if graph_loader is not None else resolve_dataset
        self._specs: "OrderedDict[str, RegistrySpec]" = OrderedDict()
        self._entries: "OrderedDict[str, ModelEntry]" = OrderedDict()
        self._loading: set[str] = set()
        self._graphs: dict[str, KnowledgeGraph] = {}

    # -- catalogue -----------------------------------------------------

    def register(self, dataset: str, checkpoint: Path | str) -> ModelRef:
        """Catalogue a checkpoint under ``dataset/model@config-digest``.

        Only the archive header is read — the parameters load lazily on
        first request.  Re-registering the same coordinates with the same
        path is idempotent; pointing them at a different file is an error.
        """
        path = Path(checkpoint)
        header = checkpoint_header(path)
        ref = ModelRef(
            dataset=dataset, model=str(header["model"]), digest=config_digest(header)
        )
        spec = RegistrySpec(ref=ref, path=path, header=header)
        with self._cond:
            existing = self._specs.get(ref.model_id)
            if existing is not None and existing.path != path:
                raise ValueError(
                    f"model {ref.model_id} already registered from {existing.path}"
                )
            self._specs[ref.model_id] = spec
        return ref

    def refs(self) -> tuple[ModelRef, ...]:
        with self._cond:
            return tuple(spec.ref for spec in self._specs.values())

    def describe(self) -> tuple[ModelInfo, ...]:
        """Catalogue rows for ``/v1/models``, flagging loaded entries."""
        with self._cond:
            specs = list(self._specs.values())
            loaded = set(self._entries)
        return tuple(spec.info(spec.ref.model_id in loaded) for spec in specs)

    def loaded_ids(self) -> tuple[str, ...]:
        with self._cond:
            return tuple(self._entries)

    def counters(self) -> dict[str, int]:
        with self._cond:
            return {
                "models_count": len(self._specs),
                "loaded_count": len(self._entries),
                "pinned_count": sum(
                    1 for entry in self._entries.values() if entry.pins > 0
                ),
            }

    # -- lookup and loading --------------------------------------------

    def _resolve_locked(self, model_id: str) -> str:
        if model_id in self._specs:
            return model_id
        ref = ModelRef.parse(model_id)
        matches = [
            key
            for key, spec in self._specs.items()
            if spec.ref.dataset == ref.dataset
            and spec.ref.model == ref.model
            and spec.ref.digest.startswith(ref.digest)
        ]
        if not matches:
            raise ModelNotFoundError(
                f"no model {model_id!r} registered; "
                f"available: {sorted(self._specs)}"
            )
        if len(matches) > 1:
            raise BadRequestError(
                f"model id {model_id!r} is ambiguous between {sorted(matches)}"
            )
        return matches[0]

    def acquire(self, model_id: str, deadline: Deadline | None = None) -> _Lease:
        """Pin the entry for ``model_id``, loading the checkpoint if cold.

        Returns a context manager yielding the :class:`ModelEntry`; the
        pin is released when the context exits.  Waiters behind an
        in-flight load poll in bounded slices so their ``deadline`` can
        still expire with a typed error.
        """
        metrics = get_registry()
        with self._cond:
            key = self._resolve_locked(model_id)
            spec = self._specs[key]
            while True:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.pins += 1
                    metrics.counter("serve.model_hits_count").inc()
                    return _Lease(self, entry)
                if key not in self._loading:
                    self._loading.add(key)
                    break
                self._cond.wait(timeout=_WAIT_SLICE_SECONDS)
                if deadline is not None:
                    deadline.check(f"waiting for model {key} to load")
        try:
            entry = self._load(spec)
        except BaseException:
            with self._cond:
                self._loading.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._loading.discard(key)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            entry.pins += 1
            self._evict_unpinned_locked()
            self._cond.notify_all()
        metrics.counter("serve.model_loads_count").inc()
        return _Lease(self, entry)

    def release(self, entry: ModelEntry) -> None:
        """Unpin an entry and run any eviction the pin was blocking."""
        with self._cond:
            entry.pins -= 1
            self._evict_unpinned_locked()
            self._cond.notify_all()

    def _load(self, spec: RegistrySpec) -> ModelEntry:
        model = load_model(spec.path)
        graph = self._graph_for(spec.ref.dataset)
        engine = RankingEngine(cache_size=self._cache_size, workers=self._workers)
        return ModelEntry(spec=spec, model=model, graph=graph, engine=engine)

    def _graph_for(self, dataset: str) -> KnowledgeGraph:
        with self._cond:
            cached = self._graphs.get(dataset)
        if cached is not None:
            return cached
        graph = self._graph_loader(dataset)
        with self._cond:
            self._graphs.setdefault(dataset, graph)
            return self._graphs[dataset]

    def _evict_unpinned_locked(self) -> None:
        metrics = get_registry()
        while len(self._entries) > self._capacity:
            victim = None
            for key, entry in self._entries.items():
                if entry.pins == 0:
                    victim = key
                    break
            if victim is None:
                return
            del self._entries[victim]
            metrics.counter("serve.model_evictions_count").inc()

    def __iter__(self) -> Iterator[str]:
        with self._cond:
            return iter(tuple(self._specs))

    def __len__(self) -> int:
        with self._cond:
            return len(self._specs)
