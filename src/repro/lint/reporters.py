"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: list[Finding], checked_files: int | None = None) -> str:
    """Compiler-style ``path:line:col: RPRxxx message`` lines + summary."""
    lines = [finding.render() for finding in findings]
    affected = len({finding.path for finding in findings})
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if findings:
        summary += f" in {affected} file{'s' if affected != 1 else ''}"
    if checked_files is not None:
        summary += f" ({checked_files} files checked)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: list[Finding], checked_files: int | None = None) -> str:
    payload: dict[str, object] = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if checked_files is not None:
        payload["checked_files"] = checked_files
    return json.dumps(payload, indent=2, sort_keys=True)
