"""Dataset analysis: per-relation cardinalities, degree skew, summaries.

Utilities that characterise a knowledge graph the way the KGE literature
does when selecting datasets (the paper's §3.2 "dataset selection" step):

* relation cardinality classes (1-1 / 1-N / N-1 / N-M, Bordes et al.),
* tails-per-head / heads-per-tail statistics (the inputs of Bernoulli
  negative sampling),
* a power-law exponent estimate of the degree distribution (popularity
  skew — what the frequency-based strategies exploit),
* a one-stop :func:`dataset_report`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import KnowledgeGraph
from .stats import GraphStatistics
from .triples import TripleSet

__all__ = [
    "RelationProfile",
    "relation_profiles",
    "cardinality_histogram",
    "powerlaw_exponent",
    "dataset_report",
]

#: Threshold above which a side is considered "N" (Bordes et al. use 1.5).
_CARDINALITY_THRESHOLD = 1.5


@dataclass(frozen=True)
class RelationProfile:
    """Structural profile of one relation."""

    relation: int
    num_triples: int
    num_subjects: int
    num_objects: int
    tails_per_head: float
    heads_per_tail: float
    cardinality: str  # "1-1" | "1-N" | "N-1" | "N-M"

    @property
    def is_functional(self) -> bool:
        """Whether each subject has (about) one object."""
        return self.tails_per_head <= _CARDINALITY_THRESHOLD


def relation_profiles(triples: TripleSet) -> list[RelationProfile]:
    """Profile every relation appearing in the triple set."""
    profiles = []
    arr = triples.array
    for relation in triples.unique_relations():
        rel = arr[arr[:, 1] == relation]
        subjects = np.unique(rel[:, 0])
        objects = np.unique(rel[:, 2])
        tph = len(rel) / len(subjects)
        hpt = len(rel) / len(objects)
        many_tails = tph > _CARDINALITY_THRESHOLD
        many_heads = hpt > _CARDINALITY_THRESHOLD
        if many_tails and many_heads:
            cardinality = "N-M"
        elif many_tails:
            cardinality = "1-N"
        elif many_heads:
            cardinality = "N-1"
        else:
            cardinality = "1-1"
        profiles.append(
            RelationProfile(
                relation=int(relation),
                num_triples=len(rel),
                num_subjects=len(subjects),
                num_objects=len(objects),
                tails_per_head=float(tph),
                heads_per_tail=float(hpt),
                cardinality=cardinality,
            )
        )
    return profiles


def cardinality_histogram(triples: TripleSet) -> dict[str, int]:
    """Count of relations per cardinality class."""
    histogram = {"1-1": 0, "1-N": 0, "N-1": 0, "N-M": 0}
    for profile in relation_profiles(triples):
        histogram[profile.cardinality] += 1
    return histogram


def powerlaw_exponent(values: np.ndarray, x_min: float = 1.0) -> float:
    """Continuous maximum-likelihood power-law exponent (Clauset et al.).

    ``α = 1 + n / Σ ln(x_i / x_min)`` over values ≥ ``x_min``.  Higher α
    means a lighter tail; typical KG degree distributions fall around
    α ≈ 2–3.
    """
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= x_min]
    if tail.size < 2:
        raise ValueError("need at least 2 values >= x_min for the MLE")
    logs = np.log(tail / x_min)
    total = logs.sum()
    if total <= 0:
        raise ValueError("values are degenerate (all equal to x_min)")
    return float(1.0 + tail.size / total)


def dataset_report(graph: KnowledgeGraph) -> dict[str, object]:
    """One-stop structural summary of a knowledge graph.

    Includes everything the paper's dataset-selection discussion relies
    on: sizes, density, clustering, relation cardinalities, and the
    popularity skew of the degree distribution.
    """
    stats = GraphStatistics(graph.train)
    degree = stats.degree
    positive = degree[degree > 0]
    report: dict[str, object] = {
        "name": graph.name,
        "entities": graph.num_entities,
        "relations": graph.num_relations,
        "train": len(graph.train),
        "valid": len(graph.valid),
        "test": len(graph.test),
        "triples_per_entity": len(graph.train) / graph.num_entities,
        "average_clustering": stats.average_clustering,
        "complement_size": graph.complement_size(),
        "cardinalities": cardinality_histogram(graph.train),
        "max_degree": int(degree.max()) if degree.size else 0,
        "median_degree": float(np.median(positive)) if positive.size else 0.0,
        "isolated_entities": int((degree == 0).sum()),
    }
    try:
        report["degree_powerlaw_alpha"] = powerlaw_exponent(positive)
    except ValueError:
        report["degree_powerlaw_alpha"] = float("nan")
    return report
