"""RPR015 bad fixture: spawn-hostile process-pool dispatch, six ways."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from fabric import ParallelScheduler

STREAM = np.random.default_rng(123)
LOG = open("/tmp/rpr015.log", "a")


def relation_worker(context, payload):
    LOG.write(f"cell {payload}\n")
    return float(STREAM.random()) + payload


def run_cells(cells):
    scheduler = ParallelScheduler(lambda ctx, p, rng: p, procs=2)

    def local_worker(ctx, payload, rng):
        return payload

    ParallelScheduler(local_worker, procs=2)
    ParallelScheduler(relation_worker, procs=2)
    return scheduler


def run_batches(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        handler = lambda job: job + 1  # noqa: E731
        return [pool.submit(handler, job) for job in jobs]
