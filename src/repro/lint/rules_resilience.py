"""RPR007 — resilience hygiene.

Two checks share this id:

* **swallowed exceptions** — ``except Exception:`` / ``except
  BaseException:`` handlers whose body is only ``pass`` (or ``...``)
  silently discard failures; in a long campaign that converts a real
  fault into a missing result with no trace.  Applies everywhere.
* **non-atomic binary writes** — inside ``repro.kge`` and
  ``repro.experiments``, direct ``open(..., "wb")`` or numpy
  ``save``/``savez``/``savez_compressed`` calls bypass the
  write-temp→fsync→rename discipline, so a crash mid-write leaves a
  torn checkpoint or cache entry behind.  Durable artifacts must go
  through :mod:`repro.resilience.atomic` (``atomic_write`` /
  ``atomic_savez``), which is itself out of scope as the sanctioned
  writer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, numpy_aliases, register_rule

__all__ = ["ResilienceRule"]

_ATOMIC_SCOPES = ("repro.kge", "repro.experiments")
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
_NUMPY_WRITERS = frozenset({"save", "savez", "savez_compressed"})


def _is_noop_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _broad_handler_name(node: ast.ExceptHandler) -> str | None:
    if isinstance(node.type, ast.Name) and node.type.id in _BROAD_EXCEPTIONS:
        return node.type.id
    return None


def _binary_write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open()`` call when it writes binary."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and "w" in mode.value
        and "b" in mode.value
    ):
        return mode.value
    return None


@register_rule
class ResilienceRule(Rule):
    rule_id = "RPR007"
    name = "resilience"
    description = (
        "no silently-swallowed broad exceptions; durable binary writes in "
        "kge/experiments go through repro.resilience.atomic"
    )
    rationale = (
        "In a multi-hour campaign a swallowed exception converts a real "
        "fault into a missing result with no trace, and a torn "
        "checkpoint write corrupts the resume path.  Both failure modes "
        "surface days later, far from their cause."
    )
    example = (
        "try:\n"
        "    run_cell()\n"
        "except Exception:\n"
        "    pass                      # RPR007: fault vanishes\n"
        "\n"
        "np.savez(path, emb=emb)       # RPR007: non-atomic in repro.kge\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        in_atomic_scope = any(
            ctx.module == scope or ctx.module.startswith(scope + ".")
            for scope in _ATOMIC_SCOPES
        )
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                caught = _broad_handler_name(node)
                if caught is not None and _is_noop_body(node.body):
                    yield self.finding(
                        ctx,
                        node,
                        f"`except {caught}: pass` silently swallows every "
                        "failure; handle, log, or re-raise it",
                    )
            elif in_atomic_scope and isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                ):
                    mode = _binary_write_mode(node)
                    if mode is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"open(..., {mode!r}) writes a durable artifact "
                            "non-atomically; a crash mid-write leaves a torn "
                            "file — use repro.resilience.atomic.atomic_write",
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _NUMPY_WRITERS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in np_names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.func.value.id}.{node.func.attr}(...) writes "
                        "a checkpoint non-atomically; use "
                        "repro.resilience.atomic.atomic_savez",
                    )
