"""Typed failure modes of the resilience layer.

Every recoverable fault in the training/campaign stack maps to one of
these exceptions so callers can write precise ``except`` clauses instead
of blanket handlers (which :mod:`repro.lint` rule RPR007 rejects).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "CheckpointCorruptError",
    "TrainingDivergedError",
    "RetryBudgetExceededError",
    "DeadlineExceededError",
    "SegmentLostError",
    "FaultInjectedError",
]


class ResilienceError(Exception):
    """Base class for faults raised by the resilience layer."""


class CheckpointCorruptError(ResilienceError, ValueError):
    """A checkpoint or cache archive failed its integrity check.

    Subclasses :class:`ValueError` so legacy ``except (ValueError, ...)``
    recovery paths written before the typed error existed keep working.
    """


class TrainingDivergedError(ResilienceError, RuntimeError):
    """Training hit a guard condition (NaN/Inf loss, loss explosion,
    non-finite parameters or gradients) that the configured policy could
    not recover from.

    Carries the :class:`~repro.resilience.guards.GuardReport` so callers
    can inspect what tripped and when.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class RetryBudgetExceededError(ResilienceError, RuntimeError):
    """A retried operation exhausted its attempt or deadline budget.

    ``__cause__`` holds the last underlying failure.
    """

    def __init__(self, message: str, attempts: int = 0, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed


class DeadlineExceededError(ResilienceError, TimeoutError):
    """A :class:`~repro.resilience.deadline.Deadline` expired.

    Subclasses :class:`TimeoutError` so generic timeout handlers apply.
    ``budget`` is the original allowance in seconds, ``overdue`` how far
    past it the check ran.
    """

    def __init__(self, message: str, budget: float = 0.0, overdue: float = 0.0) -> None:
        super().__init__(message)
        self.budget = budget
        self.overdue = overdue


class SegmentLostError(ResilienceError, FileNotFoundError):
    """A shared-memory segment vanished before a worker could attach.

    Subclasses :class:`FileNotFoundError` because that is what
    ``SharedMemory(name=...)`` raises and what pre-existing recovery
    code catches; the typed subclass lets new code be precise.
    """


class FaultInjectedError(ResilienceError, RuntimeError):
    """Raised by the fault-injection harness (:mod:`repro.faults`)."""
