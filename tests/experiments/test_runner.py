"""Tests for the experiment runner, its model cache, and campaign resilience."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import (
    PAPER_DATASETS,
    PAPER_MODELS,
    PAPER_STRATEGIES,
    CampaignState,
    MatrixRow,
    clear_model_cache,
    default_model_config,
    default_train_config,
    get_trained_model,
    run_matrix,
)
from repro.resilience import FaultInjectedError, FaultPlan, RunJournal, inject


def assert_rows_equal(a: MatrixRow, b: MatrixRow) -> None:
    """Field-by-field equality where NaN == NaN (failed/uneval'd cells)."""
    da, db = a.to_dict(), b.to_dict()
    assert da.keys() == db.keys()
    for key in da:
        if isinstance(da[key], float) and math.isnan(da[key]):
            assert math.isnan(db[key]), key
        else:
            assert da[key] == db[key], key


class TestConstants:
    def test_paper_models(self):
        assert set(PAPER_MODELS) == {"complex", "conve", "distmult", "rescal", "transe"}

    def test_paper_strategies_exclude_squares(self):
        assert "cluster_squares" not in PAPER_STRATEGIES
        assert len(PAPER_STRATEGIES) == 5

    def test_paper_datasets(self):
        assert len(PAPER_DATASETS) == 4


class TestDefaults:
    def test_every_paper_model_has_defaults(self):
        for name in PAPER_MODELS:
            assert default_model_config(name).name == name
            default_train_config(name)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            default_model_config("gnn")


class TestModelCache:
    def test_in_process_cache_returns_same_object(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        b = get_trained_model("wn18rr-like", "distmult")
        assert a is b

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        clear_model_cache()  # drop in-process entry; force disk load
        b = get_trained_model("wn18rr-like", "distmult")
        assert a is not b
        np.testing.assert_array_equal(a.entity_matrix(), b.entity_matrix())

    def test_stale_disk_cache_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        get_trained_model("wn18rr-like", "distmult")
        # Corrupt the cache with wrong keys.
        path = tmp_path / "wn18rr-like__distmult.npz"
        np.savez(path, bogus=np.zeros(3))
        clear_model_cache()
        model = get_trained_model("wn18rr-like", "distmult")
        assert model.entity_matrix().shape[0] > 0

    def test_corrupt_disk_cache_recovers(self, tmp_path, monkeypatch):
        """A truncated .npz (not a valid zip) triggers retraining and is
        rewritten, not propagated as BadZipFile."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        path = tmp_path / "wn18rr-like__distmult.npz"
        path.write_bytes(path.read_bytes()[:100])
        clear_model_cache()
        b = get_trained_model("wn18rr-like", "distmult")
        np.testing.assert_array_equal(a.entity_matrix(), b.entity_matrix())
        # The rewritten cache file is loadable again.
        np.load(path).close()

    def test_trained_model_is_in_eval_mode(self, tmp_path, monkeypatch):
        """Both the retrain and the cache-load paths return eval()-mode
        models — batched ConvE scoring depends on it (batch norm)."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        fresh = get_trained_model("wn18rr-like", "distmult")
        assert not fresh.training
        clear_model_cache()
        cached = get_trained_model("wn18rr-like", "distmult")
        assert not cached.training


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def rows(self, tmp_path_factory):
        import os

        os.environ["REPRO_MODEL_CACHE"] = str(tmp_path_factory.mktemp("cache"))
        clear_model_cache()
        try:
            return run_matrix(
                datasets=("wn18rr-like",),
                models=("distmult",),
                strategies=("uniform_random", "entity_frequency"),
                top_n=50,
                max_candidates=100,
            )
        finally:
            os.environ.pop("REPRO_MODEL_CACHE", None)
            clear_model_cache()

    def test_row_count(self, rows):
        assert len(rows) == 2

    def test_rows_carry_metrics(self, rows):
        for row in rows:
            assert row.dataset == "wn18rr-like"
            assert row.model == "distmult"
            assert row.num_facts >= 0
            assert row.runtime_seconds > 0

    def test_strategy_labels(self, rows):
        assert {row.strategy for row in rows} == {
            "uniform_random", "entity_frequency",
        }


_CAMPAIGN = dict(
    datasets=("wn18rr-like",),
    models=("distmult",),
    strategies=("uniform_random", "entity_frequency"),
    top_n=50,
    max_candidates=100,
)


class TestResilientCampaigns:
    def test_killed_campaign_resumes_bit_identically(self, tmp_path, monkeypatch):
        """Acceptance: a campaign killed mid-cell and restarted produces the
        same final report as an uninterrupted run."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        clear_model_cache()
        reference = run_matrix(journal_path=tmp_path / "ref.jsonl", **_CAMPAIGN)

        # Kill the process mid-second-cell: KeyboardInterrupt is not an
        # Exception, so — like SIGKILL — no cell_failed record is written.
        journal_path = tmp_path / "run.jsonl"
        plan = FaultPlan().fail(
            "matrix_cell", match="*entity_frequency*", exc=KeyboardInterrupt
        )
        with inject(plan):
            with pytest.raises(KeyboardInterrupt):
                run_matrix(journal_path=journal_path, **_CAMPAIGN)
        assert plan.fired() == 1

        state = CampaignState.from_journal(RunJournal(journal_path))
        completed_key = "wn18rr-like/distmult/uniform_random"
        assert set(state.completed) == {completed_key}
        assert state.attempts["wn18rr-like/distmult/entity_frequency"] == 1

        resumed = run_matrix(journal_path=journal_path, **_CAMPAIGN)
        assert [row.status for row in resumed] == ["ok", "ok"]
        # The completed cell is replayed bit-identically from the journal,
        # not recomputed.
        assert_rows_equal(
            resumed[0], MatrixRow.from_dict(state.completed[completed_key])
        )
        # Every deterministic metric matches the uninterrupted reference
        # run (wall-clock timing fields legitimately differ).
        for ref_row, res_row in zip(reference, resumed):
            assert ref_row.strategy == res_row.strategy
            assert ref_row.num_facts == res_row.num_facts
            assert ref_row.mrr == res_row.mrr
        # A further restart replays the whole report bit-identically.
        replayed = run_matrix(journal_path=journal_path, **_CAMPAIGN)
        for resumed_row, replayed_row in zip(resumed, replayed):
            assert_rows_equal(resumed_row, replayed_row)

    def test_corrupt_checkpoint_is_quarantined_and_retrained(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: a corrupted cache checkpoint is detected, moved to a
        *.corrupt sibling, and the model is retrained — never loaded."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        original = get_trained_model("wn18rr-like", "distmult")
        path = tmp_path / "wn18rr-like__distmult.npz"
        data = bytearray(path.read_bytes())
        middle = len(data) // 2
        for offset in range(middle, middle + 32):
            data[offset] ^= 0xFF
        path.write_bytes(bytes(data))

        clear_model_cache()
        retrained = get_trained_model("wn18rr-like", "distmult")
        quarantined = tmp_path / "wn18rr-like__distmult.npz.corrupt"
        assert quarantined.is_file()
        # Attempt 0 of the retrain reproduces the original run bit for bit.
        np.testing.assert_array_equal(
            original.entity_matrix(), retrained.entity_matrix()
        )
        # The rewritten cache is valid again and clear() removes quarantine.
        clear_model_cache()
        reloaded = get_trained_model("wn18rr-like", "distmult")
        np.testing.assert_array_equal(
            original.entity_matrix(), reloaded.entity_matrix()
        )
        clear_model_cache(disk=True)
        assert not quarantined.exists()

    def test_degrade_mode_emits_partial_failure_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        clear_model_cache()
        journal_path = tmp_path / "run.jsonl"
        with inject(
            FaultPlan().fail("matrix_cell", match="*entity_frequency*", times=-1)
        ):
            rows = run_matrix(
                journal_path=journal_path,
                max_cell_attempts=2,
                on_error="degrade",
                **_CAMPAIGN,
            )
        assert [row.status for row in rows] == ["ok", "failed"]
        failed = rows[1]
        assert failed.strategy == "entity_frequency"
        assert failed.error.startswith("FaultInjectedError")
        assert math.isnan(failed.mrr) and failed.num_facts == 0

        state = CampaignState.from_journal(RunJournal(journal_path))
        key = "wn18rr-like/distmult/entity_frequency"
        assert state.attempts[key] == 2
        assert state.last_error[key].startswith("FaultInjectedError")

        # The budget is spent: a resume (fault gone) must NOT re-run the
        # cell but report it failed with the recorded fingerprint.
        resumed = run_matrix(
            journal_path=journal_path,
            max_cell_attempts=2,
            on_error="degrade",
            **_CAMPAIGN,
        )
        assert [row.status for row in resumed] == ["ok", "failed"]
        assert resumed[1].error.startswith("FaultInjectedError")
        assert_rows_equal(resumed[0], rows[0])

    def test_transient_cell_failure_recovers_in_process(
        self, tmp_path, monkeypatch
    ):
        """A cell that fails once and then succeeds is re-run inside the
        same degrading campaign — no restart needed."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        clear_model_cache()
        journal_path = tmp_path / "run.jsonl"
        with inject(
            FaultPlan().fail("matrix_cell", match="*uniform_random*", times=1)
        ) as plan:
            rows = run_matrix(
                journal_path=journal_path,
                max_cell_attempts=3,
                on_error="degrade",
                **_CAMPAIGN,
            )
        assert plan.fired() == 1
        assert [row.status for row in rows] == ["ok", "ok"]
        state = CampaignState.from_journal(RunJournal(journal_path))
        assert state.attempts["wn18rr-like/distmult/uniform_random"] == 2

    def test_raise_mode_propagates_and_preserves_progress(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        clear_model_cache()
        journal_path = tmp_path / "run.jsonl"
        with inject(FaultPlan().fail("matrix_cell", match="*entity_frequency*")):
            with pytest.raises(FaultInjectedError):
                run_matrix(journal_path=journal_path, **_CAMPAIGN)
        view = RunJournal(journal_path).read()
        assert len(view.by_event("cell_succeeded")) == 1
        assert len(view.by_event("cell_failed")) == 1

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_matrix(on_error="ignore", **_CAMPAIGN)
