"""Extension (§6 future direction 3) — a held-out evaluation protocol.

The paper notes fact discovery has no evaluation protocol.  This
benchmark exercises the hide → train → discover → score protocol from
:mod:`repro.discovery.protocol` and confirms it reproduces the paper's
strategy ordering in *recall of actually-true hidden facts* — a stronger
form of evidence than corruption-rank MRR.
"""

from __future__ import annotations

from common import save_and_print

from repro.discovery import heldout_discovery_protocol
from repro.experiments import format_table
from repro.kg import load_dataset
from repro.kge import ModelConfig, TrainConfig

_STRATEGIES = ("uniform_random", "entity_frequency", "cluster_triangles")


def test_heldout_protocol(benchmark):
    graph = load_dataset("fb15k237-like")
    model_config = ModelConfig("distmult", dim=32, seed=0)
    train_config = TrainConfig(
        job="kvsall", loss="bce", epochs=40, batch_size=128, lr=0.05,
        label_smoothing=0.1,
    )

    def run(strategy):
        return heldout_discovery_protocol(
            graph,
            model_config,
            train_config,
            strategy=strategy,
            hide_fraction=0.15,
            top_n=50,
            max_candidates=500,
            seed=0,
        )

    results = {}
    results["uniform_random"] = benchmark.pedantic(
        lambda: run("uniform_random"), rounds=1, iterations=1
    )
    for strategy in _STRATEGIES[1:]:
        results[strategy] = run(strategy)

    rows = []
    for strategy, result in results.items():
        row = {"strategy": strategy}
        row.update(
            {
                k: round(v, 4) if isinstance(v, float) else v
                for k, v in result.summary().items()
            }
        )
        rows.append(row)
    save_and_print(
        "extension_protocol",
        format_table(
            rows,
            title="§6 extension — held-out discovery protocol "
            "(fb15k237-like, DistMult, 15% hidden)",
        ),
    )

    # The protocol-level restatement of the paper's finding: popularity
    # sampling recovers more of the hidden true facts than uniform.
    assert results["entity_frequency"].recall > results["uniform_random"].recall
    assert results["cluster_triangles"].recall > results["uniform_random"].recall
    # Everything recovered is by construction true: precision bound sane.
    for result in results.values():
        assert 0.0 <= result.known_true_precision <= 1.0