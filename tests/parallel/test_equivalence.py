"""Acceptance: ``procs > 1`` is bit-identical to serial on every
deterministic field — only wall-clock timings and traces may differ.

Each entry point that grew a ``procs`` knob (``discover_facts``,
``hyperparameter_grid``, ``run_matrix``) is run serially and through a
two-process spawn pool with the same seed, and their results compared
field by field.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.discovery import discover_facts
from repro.experiments import clear_model_cache, run_matrix
from repro.experiments.gridsearch import hyperparameter_grid


class TestDiscoverFactsEquivalence:
    def test_parallel_discovery_matches_serial(self, trained_distmult, tiny_graph):
        kwargs = dict(
            strategy="entity_frequency",
            top_n=20,
            max_candidates=50,
            seed=3,
        )
        serial = discover_facts(trained_distmult, tiny_graph, **kwargs)
        parallel = discover_facts(trained_distmult, tiny_graph, procs=2, **kwargs)
        np.testing.assert_array_equal(parallel.facts, serial.facts)
        np.testing.assert_array_equal(parallel.ranks, serial.ranks)
        assert parallel.strategy == serial.strategy
        assert parallel.top_n == serial.top_n
        assert parallel.max_candidates == serial.max_candidates
        assert parallel.candidates_generated == serial.candidates_generated
        assert parallel.per_relation == serial.per_relation
        assert parallel.num_facts == serial.num_facts
        assert parallel.mrr() == serial.mrr()

    def test_relation_subset_matches_serial(self, trained_distmult, tiny_graph):
        """Restricting to explicit relations keeps the per-relation
        streams aligned regardless of which worker runs which."""
        relations = [1, 3]
        serial = discover_facts(
            trained_distmult,
            tiny_graph,
            strategy="uniform_random",
            top_n=15,
            max_candidates=36,
            relations=relations,
            seed=9,
        )
        parallel = discover_facts(
            trained_distmult,
            tiny_graph,
            strategy="uniform_random",
            top_n=15,
            max_candidates=36,
            relations=relations,
            seed=9,
            procs=2,
        )
        np.testing.assert_array_equal(parallel.facts, serial.facts)
        np.testing.assert_array_equal(parallel.ranks, serial.ranks)
        assert parallel.per_relation == serial.per_relation


class TestGridEquivalence:
    def test_parallel_grid_matches_serial(self, trained_distmult, tiny_graph):
        kwargs = dict(
            strategy="uniform_random",
            top_n_values=(10, 25),
            max_candidates_values=(36,),
            seed=5,
        )
        serial = hyperparameter_grid(trained_distmult, tiny_graph, **kwargs)
        parallel = hyperparameter_grid(
            trained_distmult, tiny_graph, procs=2, **kwargs
        )
        assert len(parallel) == len(serial) == 2
        for serial_point, parallel_point in zip(serial, parallel):
            assert parallel_point.strategy == serial_point.strategy
            assert parallel_point.top_n == serial_point.top_n
            assert parallel_point.max_candidates == serial_point.max_candidates
            assert parallel_point.num_facts == serial_point.num_facts
            assert parallel_point.mrr == serial_point.mrr


class TestMatrixEquivalence:
    @pytest.fixture()
    def model_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        clear_model_cache()
        yield
        clear_model_cache()

    def test_parallel_matrix_matches_serial(self, model_cache):
        kwargs = dict(
            datasets=("wn18rr-like",),
            models=("distmult",),
            strategies=("uniform_random", "entity_frequency"),
            top_n=50,
            max_candidates=100,
            seed=0,
        )
        serial = run_matrix(**kwargs)
        parallel = run_matrix(procs=2, **kwargs)
        assert len(parallel) == len(serial) == 2
        for serial_row, parallel_row in zip(serial, parallel):
            assert parallel_row.dataset == serial_row.dataset
            assert parallel_row.model == serial_row.model
            assert parallel_row.strategy == serial_row.strategy
            assert parallel_row.status == serial_row.status == "ok"
            assert parallel_row.num_facts == serial_row.num_facts
            assert parallel_row.mrr == serial_row.mrr
            assert math.isnan(parallel_row.test_mrr) and math.isnan(
                serial_row.test_mrr
            )
