"""Checkpoint save/load round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import (
    ModelConfig,
    TrainConfig,
    create_model,
    fit,
    load_model,
    save_model,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name,dim,options",
        [
            ("transe", 8, {"norm": "l2"}),
            ("distmult", 8, {}),
            ("complex", 8, {}),
            ("rescal", 4, {}),
            ("hole", 8, {}),
            ("rotate", 8, {}),
            ("simple", 8, {}),
            ("tucker", 4, {}),
        ],
    )
    def test_scores_identical_after_reload(self, tmp_path, name, dim, options):
        model = create_model(
            name, num_entities=10, num_relations=3, dim=dim, seed=2, **options
        )
        model.eval()
        path = tmp_path / f"{name}.npz"
        save_model(model, path)
        reloaded = load_model(path)
        s = np.asarray([0, 4, 9])
        r = np.asarray([0, 1, 2])
        np.testing.assert_array_equal(
            model.scores_sp(s, r), reloaded.scores_sp(s, r)
        )

    def test_conve_running_stats_survive(self, tmp_path, tiny_graph):
        """BatchNorm buffers must round-trip, not just parameters."""
        result = fit(
            tiny_graph,
            ModelConfig("conve", dim=16, seed=0, options={"num_filters": 8}),
            TrainConfig(job="kvsall", loss="bce", epochs=3, batch_size=64, lr=0.01),
        )
        path = tmp_path / "conve.npz"
        save_model(result.model, path)
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            result.model.bn_conv.running_mean, reloaded.bn_conv.running_mean
        )
        s = np.asarray([0, 1, 2])
        r = np.asarray([0, 1, 2])
        np.testing.assert_allclose(
            result.model.scores_sp(s, r), reloaded.scores_sp(s, r)
        )

    def test_transe_options_preserved(self, tmp_path):
        model = create_model(
            "transe", num_entities=6, num_relations=2, dim=8, norm="l2",
            normalize_entities=False,
        )
        path = tmp_path / "t.npz"
        save_model(model, path)
        reloaded = load_model(path)
        assert reloaded.norm == "l2"
        assert not reloaded.normalize_entities

    def test_reloaded_model_is_eval_mode(self, tmp_path):
        model = create_model("distmult", num_entities=6, num_relations=2, dim=8)
        path = tmp_path / "d.npz"
        save_model(model, path)
        assert not load_model(path).training

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="missing header"):
            load_model(path)

    def test_creates_parent_directories(self, tmp_path):
        model = create_model("distmult", num_entities=4, num_relations=1, dim=4)
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_model(model, path)
        assert path.is_file()
