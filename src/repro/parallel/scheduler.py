"""Crash-safe process-pool scheduling of journalled campaign cells.

:class:`ParallelScheduler` dispatches independent *cells* (one unit of
campaign work, e.g. one ``dataset/model/strategy`` matrix entry) across
a spawn-based :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping the exact semantics of the serial resilience stack:

* the PR-3 :class:`~repro.resilience.RunJournal` stays the source of
  truth — ``cell_started`` is written *before* a cell is handed to a
  worker, so a worker killed mid-cell still consumes an attempt on
  resume, exactly like a process crash in the serial runner;
* every dispatch derives its own RNG stream via
  :func:`~repro.resilience.spawn_stream` ``(seed, index, attempt)``, so
  retries never replay the identical failing draw yet remain fully
  deterministic;
* outcomes are merged **in submission order**, so the result list is
  independent of worker completion order;
* a cell whose attempt budget is exhausted degrades exactly as
  ``on_error="degrade"`` does serially: the failure fingerprint is
  journalled and surfaced in the outcome instead of aborting the run.

Supervision (the watchdog) sits on top of that contract.  Two opt-in
timers guard the pool:

* ``cell_deadline`` — a per-cell wall-clock budget measured from
  dispatch.  An overdue cell gets the pool killed and rebuilt, a
  ``cell_timeout`` journal event, and a
  :class:`~repro.parallel.watchdog.CellTimeoutError` charged against
  its attempt budget (timeouts are crashes mechanically, so the
  existing retry-within-budget policy applies unchanged).
* ``heartbeat_timeout`` — pool-wide liveness through a
  :class:`~repro.parallel.watchdog.HeartbeatBoard`.  Workers beat
  around each cell; if nothing beats and nothing completes for this
  long while work is in flight, the pool is declared stalled and every
  in-flight cell is timed out.  Set it comfortably above the longest
  legitimate cell: beats happen at cell boundaries, so a slow cell
  produces no beats while it runs (completions also count as liveness).

Because the watchdog can only kill the whole pool, cells that were
merely sharing it with an overdue neighbour are charged a
:class:`WorkerCrashError` like any pool crash — the ``2 × procs``
submission window bounds that collateral.

Fault plans active in the parent (:mod:`repro.faults`) are exported
through the spawn boundary for the lifetime of the pool, so worker-side
sites (``worker_dispatch``, ``shared_attach``, ``heartbeat_emit``) fire
under the same schedule the chaos driver armed.

Worker functions must be module-level picklable callables (lint rule
RPR015 enforces this for in-repo call sites) with the signature
``worker(context, payload, rng)``; ``context`` is the scheduler's
``context`` object, shipped once per worker process through the pool
initializer rather than once per cell.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable

from .. import faults
from ..obs import MetricsRegistry, flatten_spans, get_registry, span, use_registry
from ..resilience import RunJournal, error_fingerprint, spawn_stream
from .watchdog import CellTimeoutError, HeartbeatBoard, WorkerCrashError

logger = logging.getLogger(__name__)

__all__ = ["Cell", "CellOutcome", "WorkerCrashError", "CellTimeoutError", "ParallelScheduler"]

#: Floor for watchdog poll intervals, so a tight deadline cannot turn
#: the dispatch loop into a busy-wait.
_MIN_POLL = 0.05


@dataclass(frozen=True)
class Cell:
    """One schedulable unit of work.

    ``payload`` is handed to the worker function verbatim and must be
    picklable; keep it small — large shared inputs (graphs, embedding
    handles) belong in the scheduler ``context`` or in shared memory.
    """

    key: str
    payload: object = None


@dataclass
class CellOutcome:
    """Result of one cell after scheduling (status ``ok`` or ``failed``)."""

    key: str
    value: object = None
    status: str = "ok"
    error: str = ""
    attempts: int = 0
    trace: dict = field(default_factory=dict)


def _pool_initializer(context: object, board_name: str | None = None) -> None:
    """Spawn-side bootstrap: context, fault plan, and heartbeat board."""
    global _WORKER_CONTEXT, _WORKER_BOARD
    _WORKER_CONTEXT = context
    faults.install_from_env()
    if board_name is not None:
        try:
            _WORKER_BOARD = HeartbeatBoard.attach(board_name)
        except FileNotFoundError:
            # The parent (and its board) died between spawn and attach;
            # the work itself can still proceed without liveness beats.
            _WORKER_BOARD = None


_WORKER_CONTEXT: object = None
_WORKER_BOARD: HeartbeatBoard | None = None


def _run_cell(
    worker: Callable,
    key: str,
    index: int,
    attempt: int,
    seed: int,
    payload: object,
    capture_trace: bool,
) -> tuple[object, dict]:
    """Module-level dispatch wrapper executed inside a worker process.

    Re-seeds deterministically per (cell index, attempt) via
    :func:`spawn_stream`, beats the heartbeat board around the cell,
    and, when the parent has observability enabled, records the
    worker-side span subtree so the parent can attach it to the outcome.
    """
    faults.trigger("worker_dispatch", key)
    if _WORKER_BOARD is not None:
        _WORKER_BOARD.beat()
    rng = spawn_stream(seed, index, attempt)
    try:
        if not capture_trace:
            return worker(_WORKER_CONTEXT, payload, rng), {}
        registry = MetricsRegistry()
        with use_registry(registry):
            with span("parallel.cell"):
                value = worker(_WORKER_CONTEXT, payload, rng)
        return value, flatten_spans(registry.snapshot()["spans"])
    finally:
        if _WORKER_BOARD is not None:
            _WORKER_BOARD.beat()


class ParallelScheduler:
    """Dispatch cells across a spawn pool with journalled retry budgets.

    Parameters
    ----------
    worker:
        Module-level callable ``worker(context, payload, rng) -> value``.
    procs:
        Worker process count (the submission window is ``2 * procs`` so a
        pool crash can only burn attempts for cells already in flight).
    context:
        Arbitrary picklable object shipped once per worker process.
    seed:
        Base seed for the per-cell ``spawn_stream(seed, index, attempt)``
        streams handed to workers.
    journal:
        Optional :class:`RunJournal`; events mirror the serial runner
        (``cell_started`` / ``cell_succeeded`` / ``cell_failed`` /
        ``cell_timeout``).
    on_error:
        ``"raise"`` aborts on the first cell failure (journal preserves
        progress), ``"degrade"`` retries up to ``max_attempts`` starts
        per cell and then emits a failed outcome.  Worker *crashes* (a
        process dying, not an exception) are retried within the attempt
        budget in both modes — serially a crash takes the whole campaign
        down and the journal resumes it, so retrying is the parallel
        equivalent; ``"raise"`` still propagates once the budget is gone.
        Watchdog timeouts are crashes under this policy.
    cell_deadline:
        Optional per-cell wall-clock budget in seconds, measured from
        dispatch; overdue cells are killed (see module docstring).  The
        clock starts at submission, so the budget also covers worker
        spawn and import time (~1-2s for a fresh pool) — set it well
        above that floor.
    heartbeat_timeout:
        Optional pool-liveness window in seconds; see module docstring
        for how to size it.
    """

    def __init__(
        self,
        worker: Callable,
        procs: int,
        context: object = None,
        seed: int = 0,
        journal: RunJournal | None = None,
        max_attempts: int = 3,
        on_error: str = "raise",
        cell_deadline: float | None = None,
        heartbeat_timeout: float | None = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if on_error not in ("raise", "degrade"):
            raise ValueError(f"on_error must be 'raise' or 'degrade', got {on_error!r}")
        if cell_deadline is not None and cell_deadline <= 0:
            raise ValueError(f"cell_deadline must be positive, got {cell_deadline}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.worker = worker
        self.procs = procs
        self.context = context
        self.seed = seed
        self.journal = journal
        self.max_attempts = max_attempts
        self.on_error = on_error
        self.cell_deadline = cell_deadline
        self.heartbeat_timeout = heartbeat_timeout

    def _new_executor(self, board_name: str | None) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.procs,
            mp_context=get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(self.context, board_name),
        )

    def _poll_timeout(self, in_flight: dict, now: float) -> float | None:
        """How long ``wait`` may block before the watchdog must look again."""
        timeout: float | None = None
        if self.cell_deadline is not None and in_flight:
            earliest = min(started for (_, _, _, started) in in_flight.values())
            timeout = earliest + self.cell_deadline - now
        if self.heartbeat_timeout is not None:
            probe = self.heartbeat_timeout / 4.0
            timeout = probe if timeout is None else min(timeout, probe)
        if timeout is None:
            return None
        return max(timeout, _MIN_POLL)

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """SIGKILL every pool worker, then discard the executor.

        ``ProcessPoolExecutor`` exposes no supported way to terminate a
        running task; killing the worker processes directly is the only
        lever, and ``_processes`` has been its stable home across every
        supported CPython.
        """
        for process in list(executor._processes.values()):
            process.kill()
        executor.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        cells: list[Cell],
        attempts: dict[str, int] | None = None,
    ) -> list[CellOutcome]:
        """Execute ``cells``, returning outcomes in submission order.

        ``attempts`` carries starts already consumed by earlier runs of
        the same journal (resume); a cell is only dispatched while its
        total start count stays below ``max_attempts``.
        """
        registry = get_registry()
        attempts = dict(attempts or {})
        outcomes: list[CellOutcome | None] = [None] * len(cells)
        last_error: dict[str, str] = {}
        pending: deque[tuple[int, Cell]] = deque(enumerate(cells))
        window = 2 * self.procs
        board = HeartbeatBoard.create() if self.heartbeat_timeout is not None else None
        board_name = board.name if board is not None else None
        last_liveness = time.monotonic()
        last_beat = board.snapshot() if board is not None else b""
        with span("parallel.dispatch"), faults.export_to_env(faults.active_plan()):
            executor = self._new_executor(board_name)
            in_flight: dict[Future, tuple[int, Cell, int, float]] = {}
            try:
                while pending or in_flight:
                    while pending and len(in_flight) < window:
                        index, cell = pending.popleft()
                        attempt = attempts.get(cell.key, 0) + 1
                        attempts[cell.key] = attempt
                        if self.journal is not None:
                            # Workers are separate processes; the journal is
                            # only ever touched from this dispatch thread.
                            # lint: disable=RPR011
                            self.journal.append(
                                "cell_started", cell=cell.key, attempt=attempt
                            )
                        try:
                            future = executor.submit(
                                _run_cell,
                                self.worker,
                                cell.key,
                                index,
                                attempt,
                                self.seed,
                                cell.payload,
                                registry.enabled,
                            )
                        except BrokenProcessPool:
                            # A worker died between dispatches and poisoned
                            # the pool before ``wait`` could notice.  The
                            # attempt is already journalled, so charge it
                            # like any crash, drain the casualties, and
                            # keep dispatching on a fresh pool.
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt,
                                WorkerCrashError(
                                    f"worker pool broke before {cell.key} "
                                    f"was dispatched"
                                ),
                                registry,
                            )
                            executor = self._drain_crashed_pool(
                                executor, board_name, in_flight,
                                outcomes, pending, attempts, last_error,
                                registry,
                            )
                            continue
                        in_flight[future] = (index, cell, attempt, time.monotonic())
                    done, _ = wait(
                        in_flight,
                        timeout=self._poll_timeout(in_flight, time.monotonic()),
                        return_when=FIRST_COMPLETED,
                    )
                    crashed = False
                    for future in done:
                        index, cell, attempt, _started = in_flight.pop(future)
                        try:
                            value, trace = future.result(timeout=0)
                        except BrokenProcessPool:
                            crashed = True
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt,
                                WorkerCrashError(
                                    f"worker process died while running {cell.key}"
                                ),
                                registry,
                            )
                        except Exception as error:
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt, error, registry,
                            )
                        else:
                            if self.journal is not None:
                                # lint: disable=RPR011 (dispatch thread only)
                                self.journal.append(
                                    "cell_succeeded", cell=cell.key, row=value
                                )
                            registry.counter("parallel.cells_count").inc()
                            outcomes[index] = CellOutcome(
                                key=cell.key,
                                value=value,
                                attempts=attempt,
                                trace=trace,
                            )
                    if crashed:
                        executor = self._drain_crashed_pool(
                            executor, board_name, in_flight,
                            outcomes, pending, attempts, last_error, registry,
                        )
                        continue
                    now = time.monotonic()
                    if done:
                        last_liveness = now
                    elif board is not None:
                        beat = board.snapshot()
                        if beat != last_beat:
                            last_beat = beat
                            last_liveness = now
                    executor = self._supervise(
                        executor, board_name, in_flight, now, last_liveness,
                        outcomes, pending, attempts, last_error, registry,
                    )
                    if not in_flight:
                        last_liveness = now
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
                if board is not None:
                    board.close()
        return [outcome for outcome in outcomes if outcome is not None]

    def _drain_crashed_pool(
        self,
        executor: ProcessPoolExecutor,
        board_name: str | None,
        in_flight: dict,
        outcomes: list,
        pending: deque,
        attempts: dict[str, int],
        last_error: dict[str, str],
        registry,
    ) -> ProcessPoolExecutor:
        """Replace a broken pool, charging every in-flight cell as a crash.

        Once a worker dies the executor is unusable: every still-running
        future fails with :class:`BrokenProcessPool`, whether its worker
        was the casualty or not.
        """
        registry.counter("parallel.worker_crashes_count").inc()
        for future, (index, cell, attempt, _started) in list(in_flight.items()):
            self._cell_failed(
                outcomes, pending, attempts, last_error,
                index, cell, attempt,
                WorkerCrashError(
                    f"worker pool broke while {cell.key} was in flight"
                ),
                registry,
            )
        in_flight.clear()
        executor.shutdown(wait=False, cancel_futures=True)
        return self._new_executor(board_name)

    def _supervise(
        self,
        executor: ProcessPoolExecutor,
        board_name: str | None,
        in_flight: dict,
        now: float,
        last_liveness: float,
        outcomes: list,
        pending: deque,
        attempts: dict[str, int],
        last_error: dict[str, str],
        registry,
    ) -> ProcessPoolExecutor:
        """Kill and rebuild the pool if a deadline or liveness check fails.

        Returns the (possibly fresh) executor.  Overdue cells are
        charged a :class:`CellTimeoutError` (journalled as
        ``cell_timeout``); innocent cells sharing a killed pool are
        charged a :class:`WorkerCrashError` like any other pool crash.
        """
        if not in_flight:
            return executor
        overdue: set[Future] = set()
        if self.cell_deadline is not None:
            overdue = {
                future
                for future, (_, _, _, started) in in_flight.items()
                if now - started > self.cell_deadline
            }
        stalled = (
            self.heartbeat_timeout is not None
            and now - last_liveness > self.heartbeat_timeout
        )
        if not overdue and not stalled:
            return executor
        registry.counter("parallel.watchdog_kills_count").inc()
        self._kill_pool(executor)
        for future, (index, cell, attempt, started) in list(in_flight.items()):
            if future in overdue:
                error: Exception = CellTimeoutError(
                    f"cell {cell.key} exceeded its {self.cell_deadline:.1f}s "
                    f"deadline ({now - started:.1f}s since dispatch)"
                )
            elif stalled:
                error = CellTimeoutError(
                    f"pool stalled (no heartbeat or completion for "
                    f"{self.heartbeat_timeout:.1f}s) while {cell.key} was in flight"
                )
            else:
                error = WorkerCrashError(
                    f"pool killed by watchdog while {cell.key} was in flight"
                )
            self._cell_failed(
                outcomes, pending, attempts, last_error,
                index, cell, attempt, error, registry,
            )
        in_flight.clear()
        return self._new_executor(board_name)

    def _cell_failed(
        self,
        outcomes: list[CellOutcome | None],
        pending: deque,
        attempts: dict[str, int],
        last_error: dict[str, str],
        index: int,
        cell: Cell,
        attempt: int,
        error: Exception,
        registry,
    ) -> None:
        """Journal one failed dispatch, then requeue, degrade, or raise."""
        fingerprint = error_fingerprint(error)
        last_error[cell.key] = fingerprint
        registry.counter("parallel.cell_failures_count").inc()
        if self.journal is not None:
            event = "cell_timeout" if isinstance(error, CellTimeoutError) else "cell_failed"
            # lint: disable=RPR011 (dispatch thread only)
            self.journal.append(
                event, cell=cell.key, attempt=attempt, error=fingerprint
            )
        if self.on_error == "raise" and not isinstance(error, WorkerCrashError):
            raise error
        logger.warning("cell %s failed on attempt %d: %s", cell.key, attempt, fingerprint)
        if attempts.get(cell.key, 0) < self.max_attempts:
            pending.append((index, cell))
        elif self.on_error == "raise":
            raise error
        else:
            outcomes[index] = CellOutcome(
                key=cell.key,
                status="failed",
                error=fingerprint,
                attempts=attempt,
            )
