"""Tests for the repro.resilience fault-tolerance layer."""
