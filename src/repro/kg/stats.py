"""Graph statistics behind the sampling strategies and the paper's figures.

All structural metrics (degree, triangles, clustering coefficients, squares
clustering) are computed — exactly as the paper specifies — on the
*homogeneous undirected projection* of the knowledge graph: relation labels
and edge directions are dropped, multi-edges collapse to one, self-loops are
removed.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from .blocked import (
    DEFAULT_MEMORY_BUDGET,
    local_triangles_blocked,
    square_clustering_blocked,
)
from .triples import TripleSet

__all__ = [
    "SUBJECT",
    "OBJECT",
    "undirected_adjacency",
    "to_networkx",
    "degrees",
    "entity_frequency",
    "side_entities",
    "local_triangles",
    "local_clustering_coefficient",
    "square_clustering",
    "square_clustering_reference",
    "global_clustering_coefficient",
    "GraphStatistics",
]

SUBJECT = "subject"
OBJECT = "object"
_SIDES = (SUBJECT, OBJECT)


def undirected_adjacency(triples: TripleSet) -> sp.csr_matrix:
    """Boolean adjacency of the undirected homogeneous projection.

    Returns an ``(N, N)`` CSR matrix with 0/1 entries, symmetric, zero
    diagonal.
    """
    n = triples.num_entities
    s = triples.subjects
    o = triples.objects
    mask = s != o  # drop self-loops
    rows = np.concatenate([s[mask], o[mask]])
    cols = np.concatenate([o[mask], s[mask]])
    data = np.ones(rows.shape[0], dtype=np.int64)
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    adj.data[:] = 1  # collapse parallel edges
    return adj


def degrees(adj: sp.csr_matrix) -> np.ndarray:
    """Undirected degree of each node (array of length N)."""
    return np.asarray(adj.sum(axis=1)).ravel().astype(np.int64)


def side_entities(triples: TripleSet, side: str) -> np.ndarray:
    """Unique entity ids appearing on the given side of any triple."""
    if side == SUBJECT:
        return np.unique(triples.subjects)
    if side == OBJECT:
        return np.unique(triples.objects)
    raise ValueError(f"side must be one of {_SIDES}, got {side!r}")


def entity_frequency(triples: TripleSet, side: str) -> np.ndarray:
    """Occurrence count of each entity on the given side (length N).

    This is ``count(x, side)`` from the paper's ENTITY FREQUENCY strategy
    (Equation 2); entities never appearing on that side get count zero.
    """
    if side == SUBJECT:
        ids = triples.subjects
    elif side == OBJECT:
        ids = triples.objects
    else:
        raise ValueError(f"side must be one of {_SIDES}, got {side!r}")
    return np.bincount(ids, minlength=triples.num_entities).astype(np.int64)


def local_triangles(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Number of triangles through each node, ``T(v)`` in the paper.

    Computed as ``diag(A³) / 2``: the entrywise product ``A ⊙ A²`` summed
    per row counts ordered 2-paths that close, i.e. twice the triangle
    count.  The two-hop product is evaluated in node blocks sized under
    ``memory_budget`` bytes (see :mod:`repro.kg.blocked`), so the count
    matrix ``A²`` — whose Θ(Σ deg²) non-zeros dwarf ``A`` on large skewed
    graphs — is never resident at once.
    """
    return local_triangles_blocked(adj, memory_budget)


def local_clustering_coefficient(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Watts–Strogatz local clustering coefficient ``c(v)`` per node.

    ``c(v) = 2 T(v) / (deg(v) (deg(v) - 1))``; zero where ``deg < 2``.
    """
    deg = degrees(adj).astype(np.float64)
    tri = local_triangles(adj, memory_budget).astype(np.float64)
    denom = deg * (deg - 1.0)
    coeff = np.zeros_like(deg)
    valid = denom > 0
    coeff[valid] = 2.0 * tri[valid] / denom[valid]
    return coeff


def square_clustering(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Squares clustering coefficient ``c₄(v)`` per node (Zhang et al. 2008).

    Fraction of possible 4-cycles through ``v`` that actually exist::

        c₄(v) = Σ_{u<w} q_v(u,w) / Σ_{u<w} [a_v(u,w) + q_v(u,w)]

    where ``q_v(u,w)`` is the number of common neighbours of ``u`` and ``w``
    other than ``v``, and ``a_v(u,w)`` counts the potential squares.

    Evaluated by the blocked CSR kernel
    :func:`repro.kg.blocked.square_clustering_blocked`: the pairwise
    common-neighbour intersections collapse into per-row reductions of the
    two-hop count matrix, computed slab by slab under ``memory_budget``
    bytes.  Bit-identical to :func:`square_clustering_reference` — all
    intermediates are exact integer counts.
    """
    return square_clustering_blocked(adj, memory_budget)


def square_clustering_reference(adj: sp.csr_matrix) -> np.ndarray:
    """The retained pure-Python reference for :func:`square_clustering`.

    A deliberately faithful — and deliberately expensive, Θ(Σ deg²) with
    an inner common-neighbour intersection — implementation: its cost is
    exactly why the paper excludes CLUSTERING SQUARES from the main
    experiments (§4.3).  Kept as the equivalence oracle for the blocked
    kernel and as the honest baseline the substrate benchmarks measure
    speedups against.
    """
    n = adj.shape[0]
    indptr, indices = adj.indptr, adj.indices
    deg = degrees(adj)
    dense_rows = adj.toarray().astype(bool) if n <= 4096 else None  # lint: disable=RPR017
    coeff = np.zeros(n, dtype=np.float64)

    for v in range(n):
        neigh = indices[indptr[v] : indptr[v + 1]]
        k = neigh.shape[0]
        if k < 2:
            continue
        numerator = 0.0
        denominator = 0.0
        for a in range(k):
            u = neigh[a]
            if dense_rows is not None:
                row_u = dense_rows[u]
            else:
                row_u = np.zeros(n, dtype=bool)
                row_u[indices[indptr[u] : indptr[u + 1]]] = True
            for b in range(a + 1, k):
                w = neigh[b]
                w_neigh = indices[indptr[w] : indptr[w + 1]]
                common = int(np.count_nonzero(row_u[w_neigh]))
                # v is adjacent to both u and w, so it is always one of
                # their common neighbours; q_v(u, w) excludes it.
                q = common - 1
                theta_uw = 1 if row_u[w] else 0
                a_term = (deg[u] - (1 + q + theta_uw)) + (
                    deg[w] - (1 + q + theta_uw)
                )
                numerator += q
                denominator += a_term + q
        if denominator > 0:
            coeff[v] = numerator / denominator
    return coeff


def global_clustering_coefficient(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> float:
    """Average of the local clustering coefficients over all nodes.

    This is the dataset-level density measure of the paper's Figure 3
    (red line), e.g. 0.059 for WN18RR.  Computed through the blocked
    sparse kernels; ``memory_budget`` bounds the resident slab size.
    """
    coeff = local_clustering_coefficient(adj, memory_budget)
    return float(coeff.mean()) if coeff.size else 0.0


def to_networkx(adj: sp.csr_matrix) -> "nx.Graph":
    """Undirected networkx graph over all node ids (including isolates)."""
    graph = nx.from_scipy_sparse_array(adj)
    graph.add_nodes_from(range(adj.shape[0]))
    return graph


class GraphStatistics:
    """Lazily-computed, cached statistics bundle for one triple set.

    The discovery strategies and the figure benchmarks all consume this
    object so that expensive metrics (triangles, squares) are computed at
    most once per graph.

    ``backend`` selects how the triangle-based metrics are computed:

    * ``"sparse"`` (default) — the blocked CSR kernels of
      :mod:`repro.kg.blocked`: vectorised, out-of-core friendly (slabs
      bounded by ``memory_budget`` bytes), and bit-identical to the
      networkx values — both compute the same exact integer counts, so
      the final coefficient divisions divide the same integers.
    * ``"networkx"`` — per-node Python computation, the same substrate
      AmpliGraph's discovery strategies use.  Kept for cross-checking
      the sparse kernels in the test suite; its cost on large graphs is
      what the paper's Figure 2 measures, so benchmarks that want the
      *faithful* runtime profile opt into it explicitly.

    ``memory_budget`` caps the resident size (in bytes) of each two-hop
    slab the sparse kernels build; it only affects blocking, never the
    computed values.
    """

    def __init__(
        self,
        triples: TripleSet,
        backend: str = "sparse",
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
    ) -> None:
        if backend not in ("networkx", "sparse"):
            raise ValueError(f"backend must be 'networkx' or 'sparse', got {backend!r}")
        self.triples = triples
        self.backend = backend
        self.memory_budget = int(memory_budget)
        self._adjacency: sp.csr_matrix | None = None
        self._nx_graph: nx.Graph | None = None
        self._cache: dict[str, np.ndarray | float] = {}

    @property
    def adjacency(self) -> sp.csr_matrix:
        if self._adjacency is None:
            self._adjacency = undirected_adjacency(self.triples)
        return self._adjacency

    @property
    def nx_graph(self) -> "nx.Graph":
        if self._nx_graph is None:
            self._nx_graph = to_networkx(self.adjacency)
        return self._nx_graph

    def _as_array(self, mapping: dict[int, float]) -> np.ndarray:
        out = np.zeros(self.triples.num_entities, dtype=np.float64)
        if mapping:
            # Bulk fancy-index assignment instead of a per-node Python
            # loop; dict key/value views iterate in matching order.
            nodes = np.fromiter(mapping.keys(), dtype=np.int64, count=len(mapping))
            values = np.fromiter(mapping.values(), dtype=np.float64, count=len(mapping))
            out[nodes] = values
        return out

    def _cached(self, key: str, compute) -> np.ndarray | float:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def degree(self) -> np.ndarray:
        return self._cached("degree", lambda: degrees(self.adjacency))

    @property
    def subject_frequency(self) -> np.ndarray:
        return self._cached(
            "subject_frequency", lambda: entity_frequency(self.triples, SUBJECT)
        )

    @property
    def object_frequency(self) -> np.ndarray:
        return self._cached(
            "object_frequency", lambda: entity_frequency(self.triples, OBJECT)
        )

    @property
    def triangles(self) -> np.ndarray:
        if self.backend == "sparse":
            compute = lambda: local_triangles(  # noqa: E731
                self.adjacency, self.memory_budget
            ).astype(np.float64)
        else:
            compute = lambda: self._as_array(nx.triangles(self.nx_graph))  # noqa: E731
        return self._cached("triangles", compute)

    @property
    def clustering_coefficient(self) -> np.ndarray:
        if self.backend == "sparse":
            compute = lambda: local_clustering_coefficient(  # noqa: E731
                self.adjacency, self.memory_budget
            )
        else:
            compute = lambda: self._as_array(nx.clustering(self.nx_graph))  # noqa: E731
        return self._cached("clustering_coefficient", compute)

    @property
    def squares_clustering(self) -> np.ndarray:
        if self.backend == "sparse":
            compute = lambda: square_clustering(  # noqa: E731
                self.adjacency, self.memory_budget
            )
        else:
            compute = lambda: self._as_array(  # noqa: E731
                nx.square_clustering(self.nx_graph)
            )
        return self._cached("squares_clustering", compute)

    @property
    def average_clustering(self) -> float:
        return self._cached(
            "average_clustering",
            lambda: float(self.clustering_coefficient.mean())
            if self.triples.num_entities
            else 0.0,
        )
