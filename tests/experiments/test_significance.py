"""Tests for the bootstrap CI and paired sign test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import bootstrap_mrr_ci, paired_sign_test


class TestBootstrapCI:
    def test_interval_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        ranks = rng.integers(1, 50, size=500).astype(float)
        interval = bootstrap_mrr_ci(ranks, seed=1)
        assert interval.lower <= interval.mrr <= interval.upper

    def test_contains_operator(self):
        interval = bootstrap_mrr_ci(np.asarray([1.0, 2.0, 4.0] * 50), seed=0)
        assert interval.mrr in interval

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(3)
        small = rng.integers(1, 50, size=30).astype(float)
        big = np.tile(small, 40)
        wide = bootstrap_mrr_ci(small, seed=0)
        narrow = bootstrap_mrr_ci(big, seed=0)
        assert (narrow.upper - narrow.lower) < (wide.upper - wide.lower)

    def test_degenerate_ranks_zero_width(self):
        interval = bootstrap_mrr_ci(np.full(100, 4.0), seed=0)
        assert interval.lower == interval.upper == pytest.approx(0.25)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mrr_ci(np.zeros(0))
        with pytest.raises(ValueError):
            bootstrap_mrr_ci(np.asarray([1.0]), confidence=1.0)

    def test_deterministic_given_seed(self):
        ranks = np.asarray([1.0, 3.0, 7.0] * 20)
        a = bootstrap_mrr_ci(ranks, seed=5)
        b = bootstrap_mrr_ci(ranks, seed=5)
        assert (a.lower, a.upper) == (b.lower, b.upper)


class TestSignTest:
    def test_all_wins_is_significant(self):
        first = np.arange(10, dtype=float) + 1.0
        second = np.arange(10, dtype=float)
        result = paired_sign_test(first, second)
        assert result.wins == 10 and result.losses == 0
        assert result.p_value == pytest.approx(2 / 1024)
        assert result.significant

    def test_balanced_is_not_significant(self):
        first = np.asarray([1.0, 0.0] * 5)
        second = np.asarray([0.0, 1.0] * 5)
        result = paired_sign_test(first, second)
        assert result.wins == result.losses == 5
        assert result.p_value > 0.5
        assert not result.significant

    def test_ties_discarded(self):
        first = np.asarray([1.0, 1.0, 2.0])
        second = np.asarray([1.0, 1.0, 1.0])
        result = paired_sign_test(first, second)
        assert result.ties == 2
        assert result.wins == 1

    def test_all_ties(self):
        result = paired_sign_test(np.ones(5), np.ones(5))
        assert result.p_value == 1.0
        assert not result.significant

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_sign_test(np.ones(3), np.ones(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            paired_sign_test(np.zeros(0), np.zeros(0))

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.random(20)
        b = rng.random(20)
        assert paired_sign_test(a, b).p_value == pytest.approx(
            paired_sign_test(b, a).p_value
        )

    def test_matches_scipy_binomtest(self):
        from scipy.stats import binomtest

        rng = np.random.default_rng(4)
        a = rng.random(30)
        b = rng.random(30) - 0.15
        result = paired_sign_test(a, b)
        n = result.wins + result.losses
        expected = binomtest(result.wins, n, 0.5, alternative="two-sided").pvalue
        assert result.p_value == pytest.approx(expected, rel=1e-9)
