"""Tests for the popularity-bias probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import popularity_bias


class _FrequencyOracle:
    """Scripted model scoring every entity by a fixed per-entity value."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = values
        self.num_entities = len(values)

    def scores_sp(self, s, r):
        return np.tile(self.values, (len(np.asarray(s)), 1))


class TestPopularityBias:
    def test_perfectly_biased_model(self, tiny_graph):
        from repro.kg import entity_frequency

        freq = entity_frequency(tiny_graph.train, "object").astype(float)
        model = _FrequencyOracle(freq)
        probe = popularity_bias(model, tiny_graph, num_queries=50, seed=0)
        assert probe.correlation > 0.99
        assert probe.is_biased

    def test_anti_biased_model(self, tiny_graph):
        from repro.kg import entity_frequency

        freq = entity_frequency(tiny_graph.train, "object").astype(float)
        model = _FrequencyOracle(-freq)
        probe = popularity_bias(model, tiny_graph, num_queries=50, seed=0)
        assert probe.correlation < -0.99
        assert not probe.is_biased

    def test_unbiased_model_near_zero(self, tiny_graph):
        rng = np.random.default_rng(7)
        model = _FrequencyOracle(rng.normal(size=tiny_graph.num_entities))
        probe = popularity_bias(model, tiny_graph, num_queries=50, seed=0)
        assert abs(probe.correlation) < 0.35

    def test_trained_model_is_biased_on_skewed_graph(
        self, trained_distmult, tiny_graph
    ):
        probe = popularity_bias(trained_distmult, tiny_graph, num_queries=100, seed=0)
        assert probe.correlation > 0.2

    def test_validates_query_count(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            popularity_bias(trained_distmult, tiny_graph, num_queries=1)

    def test_deterministic(self, trained_distmult, tiny_graph):
        a = popularity_bias(trained_distmult, tiny_graph, num_queries=40, seed=3)
        b = popularity_bias(trained_distmult, tiny_graph, num_queries=40, seed=3)
        assert a.correlation == b.correlation
