"""The in-process facade of the public API: :class:`Session`.

A ``Session`` binds the typed wire requests of :mod:`repro.api.types` to
the execution substrate — the serve-layer :class:`ModelRegistry`, the
query-deduplicated :class:`~repro.kge.ranking.RankingEngine`, the
discovery and classification protocols.  Every transport routes through
it: the HTTP handlers in :mod:`repro.serve.server`, the ``repro query``
CLI, and Python callers embedding the API directly.  Answers are
therefore bit-identical across transports, and bit-identical to the
offline :func:`~repro.discovery.discover_facts` /
:func:`~repro.kge.evaluation.compute_ranks` paths — serving only changes
where the computation runs, never what it returns.

All failures surface as the :class:`~repro.api.types.ApiError` taxonomy;
in particular an expired :class:`~repro.resilience.Deadline` becomes a
:class:`~repro.api.types.DeadlineError` (HTTP 504).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from ..autograd import no_grad
from ..resilience import Deadline, DeadlineExceededError
from .types import (
    BadRequestError,
    ClassifyRequest,
    ClassifyResponse,
    DeadlineError,
    DiscoverRequest,
    DiscoverResponse,
    HealthResponse,
    ModelRef,
    ModelsResponse,
    RankRequest,
    RankResponse,
    WireType,
    request_type_for,
)

if TYPE_CHECKING:
    from ..serve.registry import ModelEntry, ModelRegistry

__all__ = ["Session"]


@contextmanager
def _api_errors() -> Iterator[None]:
    """Translate substrate exceptions into the typed API taxonomy."""
    try:
        yield
    except DeadlineExceededError as error:
        raise DeadlineError(str(error)) from error


class Session:
    """Executes typed API requests against a model registry.

    Stateless beyond its registry reference, so one instance is safely
    shared by every server worker thread.  Construct with an existing
    :class:`~repro.serve.registry.ModelRegistry` or let the session build
    one (``capacity``/``cache_size``/``workers`` forwarded).
    """

    def __init__(
        self,
        registry: "ModelRegistry | None" = None,
        *,
        capacity: int = 4,
        cache_size: int = 4096,
        workers: int = 1,
        deadline_seconds: float | None = None,
    ) -> None:
        if registry is None:
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(
                capacity=capacity, cache_size=cache_size, workers=workers
            )
        self._registry = registry
        self._deadline_seconds = deadline_seconds

    @property
    def registry(self) -> "ModelRegistry":
        return self._registry

    def add_model(self, dataset: str, checkpoint: Path | str) -> ModelRef:
        """Register a checkpoint; returns its ``dataset/model@digest`` ref."""
        return self._registry.register(dataset, checkpoint)

    def models(self) -> ModelsResponse:
        return ModelsResponse(models=self._registry.describe())

    def health(self) -> HealthResponse:
        return HealthResponse(status="ok", models_count=len(self._registry))

    def _deadline(self, deadline: Deadline | None) -> Deadline | None:
        if deadline is not None:
            return deadline
        if self._deadline_seconds is not None:
            return Deadline.after(self._deadline_seconds)
        return None

    # -- endpoint implementations --------------------------------------

    def rank(
        self, request: RankRequest, deadline: Deadline | None = None
    ) -> RankResponse:
        """Filtered 1-vs-all ranks through the model's warm engine."""
        deadline = self._deadline(deadline)
        with _api_errors():
            with self._registry.acquire(request.model, deadline) as entry:
                if deadline is not None:
                    deadline.check("rank request admitted")
                triples = _as_triples(request.triples)
                filter_triples = _filter_split(entry, request.filter)
                ranks = entry.engine.compute_ranks(
                    entry.model,
                    triples,
                    filter_triples=filter_triples,
                    side=request.side,
                )
                if deadline is not None:
                    deadline.check("rank rows scored")
                return RankResponse(
                    model=entry.spec.ref.model_id,
                    side=request.side,
                    filter=request.filter,
                    ranks=tuple(float(rank) for rank in ranks),
                    mrr=float((1.0 / ranks).mean()),
                )

    def discover(
        self, request: DiscoverRequest, deadline: Deadline | None = None
    ) -> DiscoverResponse:
        """The paper's discovery protocol, warm stats and engine reused."""
        from ..discovery import discover_facts
        from ..discovery.strategies import available_strategies

        deadline = self._deadline(deadline)
        with _api_errors():
            with self._registry.acquire(request.model, deadline) as entry:
                if request.strategy not in available_strategies():
                    raise BadRequestError(
                        f"unknown strategy {request.strategy!r}; "
                        f"available: {available_strategies()}"
                    )
                result = discover_facts(
                    entry.model,
                    entry.graph,
                    strategy=request.strategy,
                    top_n=request.top_n,
                    max_candidates=request.max_candidates,
                    relations=(
                        list(request.relations)
                        if request.relations is not None
                        else None
                    ),
                    seed=request.seed,
                    stats=entry.graph_stats(),
                    engine=entry.engine,
                    deadline=deadline,
                )
                return DiscoverResponse(
                    model=entry.spec.ref.model_id,
                    strategy=request.strategy,
                    top_n=request.top_n,
                    max_candidates=request.max_candidates,
                    seed=request.seed,
                    facts=tuple(
                        (int(s), int(r), int(o)) for s, r, o in result.facts
                    ),
                    ranks=tuple(float(rank) for rank in result.ranks),
                    candidates_generated_count=int(result.candidates_generated),
                )

    def classify(
        self, request: ClassifyRequest, deadline: Deadline | None = None
    ) -> ClassifyResponse:
        """Score triples against the threshold tuned on the valid split."""
        from ..kge.evaluation import triple_classification

        deadline = self._deadline(deadline)
        with _api_errors():
            with self._registry.acquire(request.model, deadline) as entry:
                if deadline is not None:
                    deadline.check("classify request admitted")
                outcome = entry.classification(
                    request.seed,
                    request.hard_negatives,
                    lambda: triple_classification(
                        entry.model,
                        entry.graph,
                        seed=request.seed,
                        hard_negatives=request.hard_negatives,
                    ),
                )
                threshold = float(outcome["threshold"])
                with no_grad():
                    scores = entry.model.scores_spo(_as_triples(request.triples))
                if deadline is not None:
                    deadline.check("classify rows scored")
                return ClassifyResponse(
                    model=entry.spec.ref.model_id,
                    threshold=threshold,
                    scores=tuple(float(score) for score in scores),
                    labels=tuple(bool(score >= threshold) for score in scores),
                )

    # -- wire-level dispatch -------------------------------------------

    def execute(
        self,
        endpoint: str,
        payload: Mapping[str, Any],
        deadline: Deadline | None = None,
    ) -> WireType:
        """Dispatch a decoded JSON payload to one endpoint implementation.

        ``endpoint`` is the path leaf (``rank``/``discover``/``classify``);
        parsing errors and execution failures raise typed
        :class:`~repro.api.types.ApiError` subclasses.
        """
        request = request_type_for(endpoint).from_dict(payload)
        if isinstance(request, RankRequest):
            return self.rank(request, deadline)
        if isinstance(request, DiscoverRequest):
            return self.discover(request, deadline)
        if isinstance(request, ClassifyRequest):
            return self.classify(request, deadline)
        raise BadRequestError(f"unroutable request type {type(request).__name__}")


def _as_triples(triples: tuple[tuple[int, int, int], ...]) -> np.ndarray:
    return np.asarray(triples, dtype=np.int64)


def _filter_split(entry: "ModelEntry", name: str):
    if name == "none":
        return None
    if name == "train":
        return entry.graph.train
    return entry.graph.all_triples()
