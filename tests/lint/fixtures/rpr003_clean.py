"""RPR003 clean fixture: tape-safe reads plus the ``__init__`` exemption."""

import scipy.sparse as sp


class Scaler:
    def __init__(self, weight):
        self.weight = weight
        # No tape exists before the first forward pass.
        self.weight.data[...] = 1.0

    def scaled(self, factor):
        return self.weight * factor


def binarise(rows, cols, data, n):
    # ``adj.data`` is the raw CSR value buffer, not a Tensor's storage.
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    adj.data[:] = 1
    return adj
