"""Reverse-mode automatic differentiation over numpy arrays.

This module implements the minimal tensor engine needed to train every
knowledge-graph embedding model in :mod:`repro.kge` — including the
convolutional ConvE model — without any deep-learning framework.

The design follows the classic tape-based approach: every operation on a
:class:`Tensor` records a backward closure on its output node.  Calling
:meth:`Tensor.backward` performs a topological sort of the graph and
propagates gradients from the output back to every tensor created with
``requires_grad=True``.

Broadcasting is fully supported: gradients flowing into a broadcast operand
are summed over the broadcast axes so that ``grad.shape == data.shape``
always holds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .sparse import SparseGrad

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "concatenate", "stack"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tape recording.

    Used during evaluation and fact-discovery inference, where only forward
    scores are needed and tape bookkeeping would waste time and memory.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    The returned array always has exactly ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default because the
        KGE training loops are small and precision aids test stability.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.

    When :attr:`sparse_grad` is set (opt-in, leaf parameters only),
    row-lookup gradients arrive as :class:`~repro.autograd.sparse.SparseGrad`
    instead of dense scatter-adds; a dense contribution to the same
    parameter densifies the accumulated gradient automatically.

    :attr:`_catch_up`, when set by a lazy row-sparse optimizer, is
    called with the requested row ids at the top of :meth:`gather_rows`
    so deferred updates to exactly those rows are settled *before* the
    forward pass reads them — the dense path computes gradients from
    fully-updated parameters, and bit-identity requires the sparse path
    to observe the same values.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "sparse_grad",
        "_backward",
        "_parents",
        "_catch_up",
    )

    # Make numpy defer mixed ndarray/Tensor arithmetic to the reflected
    # operators below instead of trying to coerce the Tensor itself.
    __array_ufunc__ = None

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.sparse_grad = False
        self._catch_up: Callable[[np.ndarray], None] | None = None
        self.grad: np.ndarray | SparseGrad | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray | SparseGrad) -> None:
        if not self.requires_grad:
            return
        if isinstance(grad, SparseGrad):
            # Row-sparse contribution (from a sparse-flagged row lookup).
            if self.grad is None:
                self.grad = grad
            elif isinstance(self.grad, SparseGrad):
                self.grad = self.grad.merged_with(grad)
            else:
                grad.add_into_dense(self.grad)
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        elif isinstance(self.grad, SparseGrad):
            # Densify on mixed accumulation: a dense gradient reaches a
            # parameter that already holds a sparse one (e.g. the entity
            # table used both through a lookup and as a matmul operand).
            self.grad = self.grad.to_dense()
        self.grad += grad

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones, which for a scalar loss is
            the conventional seed of 1.0.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: "Tensor | float | int | np.ndarray") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim else self.data * grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                o = np.expand_dims(o, axis=axis)
            mask = (self.data == o).astype(np.float64)
            # Split gradient equally among ties to keep the op well-defined.
            norm = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / norm)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        if (
            self.sparse_grad
            and isinstance(index, np.ndarray)
            and index.ndim == 1
            and np.issubdtype(index.dtype, np.integer)
        ):
            # Route 1-D integer-array row lookups through the sparse-grad
            # primitive (e.g. ConvE's per-entity bias vector).
            return self.gather_rows(index)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup with scatter-add backward — the embedding primitive.

        Equivalent to ``self[indices]`` for a 1-D integer index array but
        kept as a named method because it is the hottest op in KGE training.
        When :attr:`sparse_grad` is set, the backward pass emits a
        deduplicated :class:`SparseGrad` instead of scatter-adding into a
        dense zero array — bitwise the same per-row sums, without the
        ``(num_rows, dim)`` materialisation.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self._catch_up is not None:
            # A lazy optimizer has deferred updates on this parameter:
            # settle the rows being read so the forward pass (and hence
            # the gradient) matches the dense path bit for bit.
            self._catch_up(indices)
        out_data = self.data[indices]

        if self.sparse_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(SparseGrad.from_indices(indices, grad, self.shape))

        else:

            def backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable: log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|))
        out_data = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))

        def backward(grad: np.ndarray) -> None:
            sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))
            self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad * np.sin(self.data))

        return Tensor._make(out_data, (self,), backward)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.cos(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > minimum))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Norms
    # ------------------------------------------------------------------
    def l2_norm(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        """Euclidean norm along ``axis`` (keeps gradient finite at zero)."""
        return ((self * self).sum(axis=axis) + eps).sqrt()


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient splitting."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(out_data, tensors, backward)
