"""TuckER (Balažević et al., 2019): Tucker-decomposition scoring.

A shared core tensor ``W ∈ R^{d_r × d_e × d_e}`` mixes the relation and
the two entity embeddings::

    f(s, r, o) = W ×₁ r ×₂ s ×₃ o

TuckER subsumes RESCAL, DistMult and ComplEx as special cases of its core
tensor; it is the most parameter-rich model in the zoo and included as a
natural extension.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Parameter, Tensor
from .base import KGEModel, register_model

__all__ = ["TuckER"]


@register_model("tucker")
class TuckER(KGEModel):
    """Tucker factorisation with a learnable core tensor."""

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        seed: int = 0,
        relation_dim: int | None = None,
    ) -> None:
        rel_dim = relation_dim or dim
        super().__init__(
            num_entities, num_relations, dim, seed=seed, relation_dim=rel_dim
        )
        self.rel_dim = rel_dim
        self.core = Parameter(
            self.rng.uniform(-0.1, 0.1, size=(rel_dim, dim, dim))
        )

    def _relation_matrices(self, r: np.ndarray) -> Tensor:
        """Per-query mixing matrix ``M_r = W ×₁ r`` of shape (B, d, d)."""
        rel = self.relation_embeddings(r)  # (B, d_r)
        core_mat = self.core.reshape(self.rel_dim, self.dim * self.dim)
        return (rel @ core_mat).reshape(len(r), self.dim, self.dim)

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        batch = len(s)
        s_e = self.entity_embeddings(s).reshape(batch, 1, self.dim)
        o_e = self.entity_embeddings(o).reshape(batch, self.dim, 1)
        return (s_e @ self._relation_matrices(r) @ o_e).reshape(batch)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        batch = len(s)
        s_e = self.entity_embeddings(s).reshape(batch, 1, self.dim)
        projected = (s_e @ self._relation_matrices(r)).reshape(batch, self.dim)
        return projected @ self.entity_embeddings.weight.T

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        batch = len(r)
        o_e = self.entity_embeddings(o).reshape(batch, self.dim, 1)
        projected = (self._relation_matrices(r) @ o_e).reshape(batch, self.dim)
        return projected @ self.entity_embeddings.weight.T

    def config_options(self) -> dict:
        return {"relation_dim": self.rel_dim}
