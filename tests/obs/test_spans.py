"""Span nesting, disabled-mode behaviour, stopwatch and tree helpers."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    Stopwatch,
    flatten_spans,
    span,
    span_tree_delta,
    use_registry,
)


class TestSpanNesting:
    def test_nested_spans_build_hierarchy(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        spans = reg.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer"]["children"]["inner"]["count"] == 2

    def test_sequential_spans_are_siblings(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("a"):
                pass
            with span("b"):
                pass
        spans = reg.snapshot()["spans"]
        assert set(spans) == {"a", "b"}
        assert spans["a"]["children"] == {}

    def test_exception_still_records_and_propagates(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with pytest.raises(RuntimeError):
                with span("risky") as risky:
                    raise RuntimeError("boom")
        assert reg.snapshot()["spans"]["risky"]["count"] == 1
        assert risky.wall_seconds > 0.0

    def test_explicit_registry_overrides_global(self):
        reg = MetricsRegistry()
        with span("direct", registry=reg):
            pass
        assert "direct" in reg.snapshot()["spans"]
        assert not get_global_has("direct")

    def test_worker_thread_roots_its_own_subtree(self):
        reg = MetricsRegistry()

        def worker():
            with span("work", registry=reg):
                pass

        with span("main", registry=reg):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = reg.snapshot()["spans"]
        # The worker's span is a root, not a child of "main".
        assert set(spans) == {"main", "work"}
        assert spans["main"]["children"] == {}


def get_global_has(name: str) -> bool:
    from repro.obs import get_registry

    return name in get_registry().snapshot()["spans"]


class TestDisabledMode:
    def test_wall_time_still_measured(self):
        with span("anything", registry=NullRegistry()) as timer:
            total = sum(range(1000))
        assert total == 499500
        assert timer.wall_seconds > 0.0

    def test_nothing_recorded_by_default(self):
        from repro.obs import get_registry

        with span("ghost"):
            pass
        assert get_registry().snapshot()["spans"] == {}


class TestStopwatch:
    def test_elapsed_grows_and_restart_resets(self):
        watch = Stopwatch()
        first = watch.elapsed_seconds
        second = watch.elapsed_seconds
        assert second >= first >= 0.0
        watch.restart()
        assert watch.elapsed_seconds < second + 1.0


class TestTreeHelpers:
    def _tree(self):
        reg = MetricsRegistry()
        reg.record_span(("a",), 2.0, 1.0)
        reg.record_span(("a", "b"), 0.5, 0.25, count=3)
        reg.record_span(("c",), 1.0, 0.5)
        return reg.snapshot()["spans"]

    def test_flatten_spans_paths_and_order(self):
        flat = flatten_spans(self._tree())
        assert list(flat) == ["a", "a/b", "c"]
        assert flat["a/b"] == {
            "count": 3,
            "wall_seconds": 0.5,
            "cpu_seconds": 0.25,
        }

    def test_span_tree_delta_isolates_new_work(self):
        reg = MetricsRegistry()
        reg.record_span(("a",), 2.0, 1.0)
        before = reg.snapshot()["spans"]
        reg.record_span(("a",), 1.0, 0.5)
        reg.record_span(("a", "b"), 0.25, 0.125)
        delta = span_tree_delta(before, reg.snapshot()["spans"])
        assert delta["a"]["count"] == 1
        assert delta["a"]["wall_seconds"] == pytest.approx(1.0)
        assert delta["a"]["children"]["b"]["count"] == 1

    def test_span_tree_delta_prunes_unchanged_nodes(self):
        reg = MetricsRegistry()
        reg.record_span(("a",), 2.0, 1.0)
        reg.record_span(("c",), 1.0, 0.5)
        before = reg.snapshot()["spans"]
        reg.record_span(("c",), 1.0, 0.5)
        delta = span_tree_delta(before, reg.snapshot()["spans"])
        assert set(delta) == {"c"}
