"""RPR015 clean fixture: module-level workers with per-task streams."""

from concurrent.futures import ProcessPoolExecutor

from fabric import ParallelScheduler, spawn_stream

_CACHE = {}


def relation_worker(context, payload, rng):
    return float(rng.random()) + payload


def derived_worker(context, payload):
    rng = spawn_stream(context.seed, payload)
    return float(rng.random())


def bootstrap(context):
    _CACHE["context"] = context


def run_cells(cells):
    scheduler = ParallelScheduler(relation_worker, procs=2)
    ParallelScheduler(derived_worker, procs=2)
    return scheduler


def run_batches(jobs):
    with ProcessPoolExecutor(max_workers=2, initializer=bootstrap) as pool:
        return [pool.submit(relation_worker, None, job, None) for job in jobs]
