"""§4.2.4 — summary of findings across the full run matrix.

Aggregates the matrix behind Figures 2/4/6 into one strategy-level table
(mean MRR, mean efficiency, mean runtime, mean fact count) and asserts
the paper's summarised conclusions.
"""

from __future__ import annotations

import numpy as np
from common import matrix_rows, save_and_print

from repro.discovery import STRATEGY_ABBREVIATIONS
from repro.experiments import format_table, group_rows


def test_summary_of_findings(benchmark):
    rows = benchmark.pedantic(matrix_rows, rounds=1, iterations=1)

    table = []
    stats = {}
    for strategy, srows in group_rows(rows, "strategy").items():
        entry = {
            "mrr": float(np.mean([r.mrr for r in srows])),
            "efficiency": float(np.mean([r.efficiency_facts_per_hour for r in srows])),
            "runtime": float(np.mean([r.runtime_seconds for r in srows])),
            "facts": float(np.mean([r.num_facts for r in srows])),
            "mrr_std": float(np.std([r.mrr for r in srows])),
        }
        stats[strategy] = entry
        table.append(
            {
                "strategy": STRATEGY_ABBREVIATIONS[strategy],
                "mean_mrr": round(entry["mrr"], 4),
                "mrr_std": round(entry["mrr_std"], 4),
                "mean_facts": round(entry["facts"]),
                "mean_facts_per_hour": round(entry["efficiency"]),
                "mean_runtime_s": round(entry["runtime"], 3),
            }
        )
    save_and_print(
        "summary_findings",
        format_table(
            table, title="§4.2.4 — summary across all datasets × models"
        ),
    )

    # Finding 1: frequency/popularity-based sampling beats UNIFORM RANDOM
    # on fact quality.
    for strategy in ("entity_frequency", "graph_degree", "cluster_triangles"):
        assert stats[strategy]["mrr"] > stats["uniform_random"]["mrr"]

    # Finding 2: EF and CT are the top performers on quality.
    by_mrr = sorted(stats, key=lambda s: stats[s]["mrr"], reverse=True)
    assert set(by_mrr[:2]) <= {"entity_frequency", "cluster_triangles", "graph_degree"}

    # Finding 3: UR and CC are the bottom two on quality.
    assert set(by_mrr[-2:]) == {"uniform_random", "cluster_coefficient"}

    # Finding 4: CT is the throughput champion.
    by_eff = max(stats, key=lambda s: stats[s]["efficiency"])
    assert by_eff == "cluster_triangles"
