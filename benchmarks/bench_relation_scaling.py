"""§4.2.1 — discovery runtime scales with the relation count.

"As the algorithm iterates over each existing relation in the KG, the
runtime scales with the number of relations used in the KG."  We run the
same configuration restricted to growing relation subsets of the FB
replica and check the linear trend directly.
"""

from __future__ import annotations

import numpy as np
from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset

_SUBSET_SIZES = (4, 8, 16, 32)


def test_runtime_scales_with_relations(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)
    all_relations = [int(r) for r in graph.train.unique_relations()]

    def run(count: int):
        return discover_facts(
            model, graph, strategy="entity_frequency",
            top_n=TOP_N_DEFAULT, max_candidates=MAX_CANDIDATES_DEFAULT,
            relations=all_relations[:count], seed=0, stats=stats,
        )

    benchmark.pedantic(lambda: run(8), rounds=2, iterations=1)

    rows = []
    runtimes = []
    for count in _SUBSET_SIZES:
        # Median of three runs to tame scheduler noise.
        samples = [run(count).runtime_seconds for _ in range(3)]
        runtime = float(np.median(samples))
        runtimes.append(runtime)
        rows.append(
            {
                "relations": count,
                "runtime_s": round(runtime, 3),
                "seconds_per_relation": round(runtime / count, 4),
            }
        )
    save_and_print(
        "relation_scaling",
        format_table(
            rows,
            title="§4.2.1 — runtime vs relation count (fb15k237-like, DistMult, EF)",
        ),
    )

    # Monotone growth...
    assert all(b > a for a, b in zip(runtimes, runtimes[1:]))
    # ...and roughly linear: per-relation cost stays within a 2.5× band.
    per_relation = [r / c for r, c in zip(runtimes, _SUBSET_SIZES)]
    assert max(per_relation) < 2.5 * min(per_relation)