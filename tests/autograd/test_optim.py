"""Optimizer tests: convergence on quadratics and parameter validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import SGD, Adagrad, Adam, Tensor


def _minimise(optimizer_factory, steps: int = 200) -> float:
    """Minimise ||x - target||² and return the final distance."""
    target = np.asarray([1.0, -2.0, 3.0])
    x = Tensor(np.zeros(3), requires_grad=True)
    opt = optimizer_factory([x])
    for _ in range(steps):
        opt.zero_grad()
        diff = x - target
        (diff * diff).sum().backward()
        opt.step()
    return float(np.abs(x.data - target).max())


class TestConvergence:
    def test_sgd(self):
        assert _minimise(lambda p: SGD(p, lr=0.1)) < 1e-6

    def test_sgd_momentum(self):
        # Heavy-ball converges at rate √momentum per step on a quadratic.
        assert _minimise(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=600) < 1e-6

    def test_adagrad(self):
        assert _minimise(lambda p: Adagrad(p, lr=1.0)) < 1e-3

    def test_adam(self):
        assert _minimise(lambda p: Adam(p, lr=0.1), steps=400) < 1e-4

    def test_adam_weight_decay_shrinks_solution(self):
        target = np.asarray([10.0])
        x_plain = Tensor(np.zeros(1), requires_grad=True)
        x_decay = Tensor(np.zeros(1), requires_grad=True)
        plain = Adam([x_plain], lr=0.2)
        decay = Adam([x_decay], lr=0.2, weight_decay=1.0)
        for _ in range(500):
            for x, opt in ((x_plain, plain), (x_decay, decay)):
                opt.zero_grad()
                diff = x - target
                (diff * diff).sum().backward()
                opt.step()
        assert x_decay.data[0] < x_plain.data[0]


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.1, momentum=1.0)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.1, betas=(1.0, 0.9))

    def test_step_skips_gradless_params(self):
        x = Tensor([1.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.step()  # no backward yet: must not raise or move x
        np.testing.assert_array_equal(x.data, [1.0])


class TestAdamBiasCorrection:
    def test_first_step_size_is_close_to_lr(self):
        """With bias correction the very first Adam step ≈ lr·sign(grad)."""
        x = Tensor([0.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.zero_grad()
        (x * 3.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(x.data, [-0.1], atol=1e-6)
