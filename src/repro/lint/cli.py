"""Command-line front-end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 — clean, 1 — findings reported, 2 — usage or config error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import load_baseline, match_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import LintEngine
from .explain import render_rules_doc
from .fixes import fix_file, render_diff
from .reporters import render_json, render_sarif, render_text
from .rules import all_rules

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis for the repro codebase: RNG "
            "determinism, autodiff-tape hygiene, API consistency, and "
            "whole-program determinism/concurrency/exception contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse "
        "(default: [tool.repro-lint].paths, else the current directory)",
    )
    parser.add_argument(
        "-f", "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker threads (default: one per file up to the CPU count)",
    )
    parser.add_argument(
        "--enable", action="append", default=None, metavar="RPRxxx",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--disable", action="append", default=None, metavar="RPRxxx",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="PATTERN",
        help="fnmatch pattern of posix paths to skip (repeatable)",
    )
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest above the scan root)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.repro-lint] entirely",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="incremental cache directory "
        "(default: .repro-lint-cache next to the pyproject)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the incremental cache",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop the incremental cache before running",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="reuse cached whole-program findings when no file changed",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="report (and gate on) only findings not in this baseline",
    )
    parser.add_argument(
        "--write-baseline", type=Path, default=None, metavar="FILE",
        help="record the current findings as the accepted baseline",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical __all__ fixes (RPR005/RPR013) before linting",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="preview the --fix rewrites as unified diffs without applying",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--explain-all", action="store_true",
        help="print the full markdown rule reference (docs/lint_rules.md)",
    )
    return parser


def _split_ids(values: list[str] | None) -> tuple[str, ...]:
    if not values:
        return ()
    return tuple(
        part.strip() for value in values for part in value.split(",") if part.strip()
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:32s} {rule.description}")
        return 0
    if args.explain_all:
        print(render_rules_doc(), end="")
        return 0

    try:
        if args.no_config:
            config = LintConfig()
        else:
            start = Path(args.paths[0]) if args.paths else Path.cwd()
            config = load_config(pyproject=args.config, start=start)
        config = config.merged_with_cli(
            enable=_split_ids(args.enable),
            disable=_split_ids(args.disable),
            exclude=tuple(args.exclude or ()),
        )
        engine = LintEngine(
            config, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
        if args.clear_cache:
            engine.clear_cache()
        paths = args.paths or list(config.paths) or ["."]

        if args.fix or args.diff:
            changed = 0
            for file in engine.collect_files(paths):
                result = fix_file(file, apply=args.fix and not args.diff)
                if result is not None and result.changed:
                    changed += 1
                    if args.diff:
                        print(render_diff(result), end="")
                    else:
                        added = ",".join(result.added) or "-"
                        removed = ",".join(result.removed) or "-"
                        print(
                            f"fixed {result.path}: __all__ "
                            f"+[{added}] -[{removed}]"
                        )
            if args.diff:
                return 0
            print(f"{changed} file{'s' if changed != 1 else ''} fixed")

        run = engine.run(paths, jobs=args.jobs, changed_only=args.changed_only)
        findings = run.findings

        if args.write_baseline is not None:
            write_baseline(findings, args.write_baseline)
            print(
                f"baseline of {len(findings)} finding"
                f"{'s' if len(findings) != 1 else ''} "
                f"written to {args.write_baseline}"
            )
            return 0
        baselined = 0
        if args.baseline is not None:
            known = load_baseline(args.baseline)
            findings, accepted = match_baseline(findings, known)
            baselined = len(accepted)
    except (ValueError, FileNotFoundError, OSError) as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    output = renderer(findings, checked_files=run.checked_files)
    if args.format == "text" and baselined:
        output += f" ({baselined} baselined)"
    print(output)
    return 1 if findings else 0
