"""Mechanical autofixes: ``repro lint --fix`` / ``--diff``.

Only ``__all__`` membership is fixed automatically — it is the one
repair with a single obviously-correct answer.  The fixer recomputes
the export list the RPR005/RPR013 way (drop names the module no longer
defines, append public defs and, in package ``__init__`` files,
re-exported symbols, in definition order) and rewrites the literal in
place, preserving the module's quote style and trailing comma.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass
from pathlib import Path

from .rules_api import _collect_toplevel, _literal_names

__all__ = ["FixResult", "fix_all_entries", "fix_file", "render_diff"]


@dataclass
class FixResult:
    path: str
    original: str
    fixed: str
    added: tuple[str, ...]
    removed: tuple[str, ...]

    @property
    def changed(self) -> bool:
        return self.fixed != self.original


def _desired_exports(
    tree: ast.Module, exported: list[str], is_package: bool
) -> tuple[list[str], list[str], list[str]]:
    """(desired, added, removed) export lists for one module."""
    defined: set[str] = set()
    public_defs: list[ast.stmt] = []
    _collect_toplevel(tree.body, defined, public_defs)

    required: list[str] = [
        node.name  # type: ignore[attr-defined]
        for node in public_defs
    ]
    if is_package:
        # Symbols imported by a package __init__ exist to be re-exported.
        for node in tree.body:
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name != "*" and not name.startswith("_"):
                        required.append(name)

    removed = [name for name in exported if name not in defined]
    kept = [name for name in exported if name in defined]
    added = [name for name in required if name not in kept]
    return kept + added, added, removed


def _format_all(names: list[str], indent: str, multiline: bool) -> str:
    if not multiline:
        inner = ", ".join(f'"{name}"' for name in names)
        return f"__all__ = [{inner}]"
    body = "".join(f'{indent}    "{name}",\n' for name in names)
    return f"__all__ = [\n{body}{indent}]"


def fix_all_entries(source: str, path: str = "<string>") -> FixResult | None:
    """Rewritten source with a corrected ``__all__``, or None if n/a."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    all_node: ast.Assign | None = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            all_node = node
            break
    if all_node is None:
        return None
    exported = _literal_names(all_node.value)
    if exported is None:
        return None

    is_package = Path(path).name == "__init__.py"
    desired, added, removed = _desired_exports(tree, exported, is_package)
    if desired == exported:
        return FixResult(path, source, source, (), ())

    lines = source.splitlines(keepends=True)
    start = all_node.lineno - 1
    end = all_node.end_lineno or all_node.lineno
    indent = lines[start][: len(lines[start]) - len(lines[start].lstrip())]
    multiline = end > all_node.lineno or len(desired) > 4
    replacement = indent + _format_all(desired, indent, multiline) + "\n"
    fixed = "".join(lines[:start]) + replacement + "".join(lines[end:])
    return FixResult(path, source, fixed, tuple(added), tuple(removed))


def fix_file(path: Path | str, apply: bool = False) -> FixResult | None:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    result = fix_all_entries(source, str(path))
    if result is not None and result.changed and apply:
        path.write_text(result.fixed, encoding="utf-8")
    return result


def render_diff(result: FixResult) -> str:
    return "".join(
        difflib.unified_diff(
            result.original.splitlines(keepends=True),
            result.fixed.splitlines(keepends=True),
            fromfile=f"a/{result.path}",
            tofile=f"b/{result.path}",
        )
    )
