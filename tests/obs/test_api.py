"""Public API surface: keyword-only configs, __all__ integrity, shims."""

from __future__ import annotations

import pytest

import repro
from repro.discovery import DiscoveryConfig
from repro.kge import TrainConfig


class TestTrainConfig:
    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            TrainConfig("negative_sampling")

    def test_round_trips_through_dict(self):
        config = TrainConfig(epochs=7, lr=0.01, job="kvsall")
        clone = TrainConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown TrainConfig keys.*bogus"):
            TrainConfig.from_dict({"epochs": 3, "bogus": 1})


class TestDiscoveryConfig:
    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            DiscoveryConfig("entity_frequency")

    def test_round_trips_through_dict(self):
        config = DiscoveryConfig(strategy="uniform", top_n=10, workers=2)
        clone = DiscoveryConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown DiscoveryConfig keys"):
            DiscoveryConfig.from_dict({"strategy": "uniform", "nope": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(top_n=0)
        with pytest.raises(ValueError):
            DiscoveryConfig(workers=0)

    def test_with_returns_updated_copy(self):
        base = DiscoveryConfig()
        changed = base.with_(top_n=9)
        assert changed.top_n == 9
        assert base.top_n == 500

    def test_config_object_drives_discover_facts(self, trained_distmult, tiny_graph):
        from repro.discovery import discover_facts

        config = DiscoveryConfig(top_n=20, max_candidates=64, seed=0)
        from_config = discover_facts(trained_distmult, tiny_graph, config=config)
        from_kwargs = discover_facts(
            trained_distmult, tiny_graph, top_n=20, max_candidates=64, seed=0
        )
        assert from_config.num_facts == from_kwargs.num_facts
        assert from_config.strategy == from_kwargs.strategy


class TestPublicApi:
    def test_every_all_name_is_bound(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_core_workflow_names_exported(self):
        expected = {
            "DiscoveryConfig",
            "TrainConfig",
            "ModelConfig",
            "discover_facts",
            "train_model",
            "compute_ranks",
            "MetricsRegistry",
            "span",
            "get_registry",
            "use_registry",
            "enable_observability",
            "disable_observability",
            "write_snapshot",
        }
        assert expected <= set(repro.__all__)


class TestDeprecationShims:
    def test_compute_ranks_reference_moved_with_shim(self):
        from repro.kge.evaluation import compute_ranks_reference as canonical

        with pytest.deprecated_call(match="repro.kge.evaluation"):
            from repro.kge import compute_ranks_reference
        assert compute_ranks_reference is canonical
        assert "compute_ranks_reference" not in __import__("repro.kge").kge.__all__

    def test_unknown_kge_attribute_still_raises(self):
        import repro.kge

        with pytest.raises(AttributeError):
            repro.kge.definitely_not_a_thing
