"""Dataset I/O: TSV splits and binary mmap-backed KG stores.

Two on-disk layouts are supported:

* **TSV dataset directories** in the layout used by LibKGE-style
  benchmark datasets: ``train.txt`` / ``valid.txt`` / ``test.txt``, each
  a tab-separated file of ``subject<TAB>relation<TAB>object`` labels.
* **KG stores** — the binary substrate format behind the out-of-core
  path: one directory holding the canonical triple/key columns of every
  split as checksummed ``.npy`` files (see
  :class:`~repro.kg.storage.MmapBackend`), the vocabularies as label
  files, and a ``meta.json``.  :func:`load_kg_store` reopens a store as
  read-only memory-mapped views, so a million-triple graph loads in
  milliseconds and is shared page-cache-for-free across worker
  processes; ``mmap=False`` materialises the same store into RAM for
  backend-equivalence testing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..resilience.atomic import atomic_write_bytes
from .graph import KnowledgeGraph
from .storage import InMemoryBackend, MmapBackend, StorageCorruptError
from .triples import TripleSet
from .vocabulary import Vocabulary

__all__ = [
    "read_triples_tsv",
    "write_triples_tsv",
    "load_dataset_dir",
    "save_dataset_dir",
    "save_kg_store",
    "finalize_kg_store",
    "load_kg_store",
    "kg_store_exists",
]

_SPLIT_FILES = ("train.txt", "valid.txt", "test.txt")


def read_triples_tsv(path: Path | str) -> list[tuple[str, str, str]]:
    """Read label triples from a tab-separated file.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number.
    """
    triples: list[tuple[str, str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 3 tab-separated fields, "
                    f"got {len(parts)}"
                )
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def write_triples_tsv(
    path: Path | str, triples: list[tuple[str, str, str]]
) -> None:
    """Write label triples to a tab-separated file."""
    with open(path, "w", encoding="utf-8") as handle:
        for s, r, o in triples:
            handle.write(f"{s}\t{r}\t{o}\n")


def load_dataset_dir(directory: Path | str, name: str | None = None) -> KnowledgeGraph:
    """Load a dataset directory with train/valid/test TSV splits.

    Vocabularies are built from the union of all splits so that validation
    and test triples never contain unseen ids.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    splits = [read_triples_tsv(directory / fname) for fname in _SPLIT_FILES]

    entities = Vocabulary()
    relations = Vocabulary()
    for split in splits:
        for s, r, o in split:
            entities.add(s)
            relations.add(r)
            entities.add(o)

    def encode(split: list[tuple[str, str, str]]) -> np.ndarray:
        if not split:
            return np.zeros((0, 3), dtype=np.int64)
        return np.asarray(
            [
                (entities.id_of(s), relations.id_of(r), entities.id_of(o))
                for s, r, o in split
            ],
            dtype=np.int64,
        )

    n, k = len(entities), len(relations)
    train, valid, test = (TripleSet(encode(split), n, k) for split in splits)
    return KnowledgeGraph(
        name=name or directory.name,
        entities=entities,
        relations=relations,
        train=train,
        valid=valid,
        test=test,
    )


def save_dataset_dir(graph: KnowledgeGraph, directory: Path | str) -> None:
    """Write a knowledge graph to a dataset directory (three TSV splits)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for fname, split in zip(_SPLIT_FILES, (graph.train, graph.valid, graph.test)):
        labelled = [graph.label_triple(t) for t in split]
        write_triples_tsv(directory / fname, labelled)


# ----------------------------------------------------------------------
# Binary KG stores (mmap substrate)
# ----------------------------------------------------------------------
_STORE_META = "meta.json"
_STORE_VERSION = 1
_SPLITS = ("train", "valid", "test")
_LABEL_FILES = {"entities": "entities.txt", "relations": "relations.txt"}


def _labels_digest(labels: list[str]) -> str:
    digest = hashlib.sha256()
    for label in labels:
        digest.update(label.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _write_labels(directory: Path, fname: str, labels: list[str]) -> str:
    for label in labels:
        if "\n" in label or "\r" in label:
            raise ValueError(f"label {label!r} contains a newline")
    atomic_write_bytes(
        directory / fname, ("\n".join(labels) + "\n").encode("utf-8")
    )
    return _labels_digest(labels)


def _read_labels(directory: Path, fname: str, expected_digest: str) -> list[str]:
    path = directory / fname
    text = path.read_text(encoding="utf-8")
    labels = text.split("\n")
    if labels and labels[-1] == "":
        labels.pop()
    if _labels_digest(labels) != expected_digest:
        raise StorageCorruptError(f"{path}: label digest mismatch")
    return labels


def _jsonify_metadata(metadata: dict, backend: MmapBackend) -> dict:
    """Store ndarray metadata values as backend columns, keep the rest."""
    out: dict = {}
    for key, value in metadata.items():
        if isinstance(value, np.ndarray):
            column = f"meta.{key}"
            backend.put(column, value)
            out[key] = {"__array__": column}
        elif isinstance(value, (np.integer, np.floating)):
            out[key] = value.item()
        else:
            out[key] = value
    return out


def _unjsonify_metadata(metadata: dict, backend) -> dict:
    out: dict = {}
    for key, value in metadata.items():
        if isinstance(value, dict) and set(value) == {"__array__"}:
            out[key] = backend.get(value["__array__"])
        else:
            out[key] = value
    return out


def kg_store_exists(directory: Path | str) -> bool:
    """Whether ``directory`` looks like a complete KG store."""
    directory = Path(directory)
    return (directory / _STORE_META).is_file() and (
        directory / "manifest.json"
    ).is_file()


def save_kg_store(graph: KnowledgeGraph, directory: Path | str) -> Path:
    """Persist a knowledge graph as a checksummed mmap-ready store.

    Every split's canonical columns go through
    :meth:`TripleSet.persist`; vocabularies and JSON-safe metadata land
    in sidecar files, ndarray metadata (e.g. the generator's
    ``entity_types``) as further backend columns.  All writes are atomic
    (temp → fsync → rename), so a crash mid-save never leaves a store
    that :func:`load_kg_store` would accept.
    """
    directory = Path(directory)
    backend = MmapBackend(directory, mode="r+")
    for split_name, split in zip(
        _SPLITS, (graph.train, graph.valid, graph.test)
    ):
        split.persist(backend, prefix=f"{split_name}.")
    finalize_kg_store(backend, graph)
    return directory


def finalize_kg_store(backend: MmapBackend, graph: KnowledgeGraph) -> None:
    """Write the label files and ``meta.json`` that complete a store.

    Assumes the split columns are already in ``backend`` (either via
    :meth:`TripleSet.persist` or streamed through backend writers, as the
    streaming generator does).  ``meta.json`` is written last, so a store
    is only ever *complete* (see :func:`kg_store_exists`) once every
    column it references exists.
    """
    directory = backend.directory
    meta = {
        "format_version": _STORE_VERSION,
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        "metadata": _jsonify_metadata(graph.metadata, backend),
        "labels": {
            "entities": _write_labels(
                directory, _LABEL_FILES["entities"], graph.entities.labels
            ),
            "relations": _write_labels(
                directory, _LABEL_FILES["relations"], graph.relations.labels
            ),
        },
    }
    atomic_write_bytes(
        directory / _STORE_META,
        (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )


def load_kg_store(
    directory: Path | str, mmap: bool = True, verify: bool = True
) -> KnowledgeGraph:
    """Load a KG store written by :func:`save_kg_store`.

    With ``mmap=True`` (default) the triple and key columns are
    read-only memory maps — nothing is copied into RAM, and the
    resulting :class:`TripleSet` objects pickle as store pointers so
    worker processes re-attach the same files.  ``mmap=False``
    materialises every column into an in-memory backend (useful for
    backend-equivalence testing and for hot loops that want RAM
    residency).  ``verify`` re-checks the manifest's sha256 content
    digests on first access.
    """
    directory = Path(directory)
    meta_path = directory / _STORE_META
    if not meta_path.is_file():
        raise FileNotFoundError(f"not a KG store (no {_STORE_META}): {directory}")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format_version") != _STORE_VERSION:
        raise StorageCorruptError(
            f"{meta_path}: unsupported store format_version "
            f"{meta.get('format_version')!r}"
        )
    backend = MmapBackend(directory, mode="r", verify=verify)
    if not mmap:
        memory = InMemoryBackend()
        for name in backend.names():
            memory.put(name, np.asarray(backend.get(name)))
        backend = memory
    n = int(meta["num_entities"])
    k = int(meta["num_relations"])
    splits = {
        split: TripleSet.from_backend(backend, n, k, prefix=f"{split}.")
        for split in _SPLITS
    }
    entities = Vocabulary(
        _read_labels(directory, _LABEL_FILES["entities"], meta["labels"]["entities"])
    )
    relations = Vocabulary(
        _read_labels(
            directory, _LABEL_FILES["relations"], meta["labels"]["relations"]
        )
    )
    return KnowledgeGraph(
        name=meta["name"],
        entities=entities,
        relations=relations,
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
        metadata=_unjsonify_metadata(meta.get("metadata", {}), backend),
    )
