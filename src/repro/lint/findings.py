"""The finding record shared by every rule, the engine, and the reporters."""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding", "PARSE_ERROR_ID"]

#: Pseudo-rule id used by the engine when a file cannot be parsed at all.
PARSE_ERROR_ID = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line`` and ``col`` are 1-based, matching compiler convention so the
    text reporter's ``path:line:col`` output is editor-clickable.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
