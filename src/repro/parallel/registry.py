"""Process-wide registry of shared-memory segments with crash reaping.

Every segment the fabric creates (model publications, heartbeat boards)
is allocated a parseable name — ``repro-shm-<pid>-<counter>`` — and
recorded here.  Registration buys two guarantees:

* **No leaks on abnormal exit.**  ``atexit`` plus chained SIGTERM/SIGINT
  handlers unlink every still-registered segment, so an interrupted
  campaign does not strand multi-hundred-megabyte embedding tables in
  ``/dev/shm``.  (SIGKILL cannot be caught — that case is covered by
  the orphan scan below.)
* **Orphan detection on startup.**  Because the owner's pid is embedded
  in the name, :func:`orphaned_segments` can scan the shared-memory
  directory for fabric segments whose owner is dead and
  :func:`reap_orphans` can reclaim them — ``repro chaos`` asserts this
  scan comes back empty after every recovery.

Only the *owning* process registers a segment; workers attach by name
and never unlink (see :mod:`repro.parallel.shared` ownership rules).
"""

from __future__ import annotations

import atexit
import itertools
import logging
import os
import signal
from multiprocessing import shared_memory
from pathlib import Path

__all__ = [
    "SEGMENT_PREFIX",
    "allocate_name",
    "owner_pid",
    "register_segment",
    "unregister_segment",
    "registered_segments",
    "reap_registered",
    "orphaned_segments",
    "reap_orphans",
]

logger = logging.getLogger(__name__)

#: All fabric segments carry this prefix; the owner pid follows.
SEGMENT_PREFIX = "repro-shm-"

#: Where POSIX shared memory appears as files (Linux).  Platforms
#: without it simply report no orphans.
SHM_DIR = Path("/dev/shm")

_counter = itertools.count()
_LIVE: dict[str, shared_memory.SharedMemory] = {}
_handlers_installed = False


def allocate_name() -> str:
    """A fresh fabric segment name embedding this process's pid."""
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_counter)}"


def owner_pid(name: str) -> int | None:
    """The pid embedded in a fabric segment name, or ``None``."""
    if not name.startswith(SEGMENT_PREFIX):
        return None
    pid_part = name[len(SEGMENT_PREFIX) :].partition("-")[0]
    return int(pid_part) if pid_part.isdigit() else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def register_segment(shm: shared_memory.SharedMemory) -> None:
    """Track ``shm`` for reaping; installs exit handlers on first use."""
    _LIVE[shm.name] = shm
    _install_handlers()


def unregister_segment(name: str) -> None:
    """Stop tracking ``name`` (its owner closed it deliberately)."""
    _LIVE.pop(name, None)


def registered_segments() -> list[str]:
    return sorted(_LIVE)


def reap_registered() -> list[str]:
    """Close and unlink every still-registered segment; returns names.

    Tolerant by construction: a segment already unlinked (double reap,
    racing handlers) is skipped silently.
    """
    reaped = []
    for name, shm in list(_LIVE.items()):
        _LIVE.pop(name, None)
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass
        else:
            reaped.append(name)
    return reaped


def orphaned_segments(shm_dir: Path | str = SHM_DIR) -> list[str]:
    """Fabric segments in ``shm_dir`` whose owning process is dead."""
    shm_dir = Path(shm_dir)
    if not shm_dir.is_dir():
        return []
    orphans = []
    for entry in sorted(shm_dir.iterdir()):
        pid = owner_pid(entry.name)
        if pid is not None and not _pid_alive(pid):
            orphans.append(entry.name)
    return orphans


def reap_orphans(shm_dir: Path | str = SHM_DIR) -> list[str]:
    """Unlink every orphaned fabric segment; returns the names reclaimed."""
    reclaimed = []
    for name in orphaned_segments(shm_dir):
        try:
            shm = shared_memory.SharedMemory(name=name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            continue  # lost a race with another reaper
        logger.warning("reaped orphaned shared-memory segment %s", name)
        reclaimed.append(name)
    return reclaimed


def _signal_reaper(signum: int, frame: object) -> None:
    reap_registered()
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_handlers() -> None:
    """Hook atexit plus SIGTERM/SIGINT, once, without displacing custom handlers.

    Only default handlers are replaced — an application that installed
    its own (a test harness, a serving framework) keeps it, and loses
    signal-path reaping but not the atexit path.
    """
    global _handlers_installed
    if _handlers_installed:
        return
    _handlers_installed = True
    atexit.register(reap_registered)
    for signum, default in (
        (signal.SIGTERM, signal.SIG_DFL),
        (signal.SIGINT, signal.default_int_handler),
    ):
        try:
            if signal.getsignal(signum) is default:
                signal.signal(signum, _signal_reaper)
        except (ValueError, OSError):  # non-main thread or exotic platform
            pass
