"""Ablation — side-aware vs side-agnostic frequency weighting.

ENTITY FREQUENCY keeps separate subject/object distributions; GRAPH
DEGREE collapses both sides into one.  The paper (§4.2.2) attributes
EF's edge on FB15K-237 to exactly this separation.  The ablation swaps
EF's side-aware weights for a merged (subject + object counts) variant
and measures the MRR delta on the FB replica.
"""

from __future__ import annotations

import numpy as np
from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import discover_facts
from repro.discovery.strategies import SamplingStrategy, _normalise
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset
from repro.kg.stats import OBJECT, SUBJECT


class MergedFrequency(SamplingStrategy):
    """ENTITY FREQUENCY with one distribution shared by both sides."""

    name = "merged_frequency"

    def _compute(self, stats):
        freq = (stats.subject_frequency + stats.object_frequency).astype(float)
        pool = np.flatnonzero(freq > 0)
        dist = _normalise(pool, freq[pool])
        return {SUBJECT: dist, OBJECT: dist}


def test_ablation_side_awareness(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)

    def run(strategy):
        return discover_facts(
            model, graph, strategy=strategy, top_n=TOP_N_DEFAULT,
            max_candidates=MAX_CANDIDATES_DEFAULT, seed=0, stats=stats,
        )

    side_aware = benchmark.pedantic(
        lambda: run("entity_frequency"), rounds=1, iterations=1
    )
    merged = run(MergedFrequency())

    rows = [
        {"variant": "side-aware (paper EF)", **{k: round(v, 4) if isinstance(v, float) else v
                                                for k, v in side_aware.summary().items()}},
        {"variant": "merged sides", **{k: round(v, 4) if isinstance(v, float) else v
                                       for k, v in merged.summary().items()}},
    ]
    save_and_print(
        "ablation_sides",
        format_table(
            rows,
            columns=["variant", "num_facts", "mrr", "efficiency_facts_per_hour"],
            title="Ablation — EF side-aware vs merged weighting (fb15k237-like, DistMult)",
        ),
    )

    # Both variants must comfortably beat the uniform baseline; the
    # side-aware variant should not be worse than merged by a wide margin.
    uniform = run("uniform_random")
    assert side_aware.mrr() > uniform.mrr()
    assert merged.mrr() > uniform.mrr()
    assert side_aware.mrr() > 0.7 * merged.mrr()
