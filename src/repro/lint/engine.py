"""The two-pass analysis engine.

Pass 1 walks every file in a thread pool: parse, extract the module's
fact record (:mod:`repro.lint.index`), run the *local* rules, apply
inline suppressions.  Records and per-file findings are served from the
on-disk cache (:mod:`repro.lint.cache`) when the file's content digest
matches, so warm runs skip parsing entirely.

Pass 2 assembles the records into a :class:`~repro.lint.callgraph.ProjectIndex`,
resolves the call graph once, and runs the *project* rules
(RPR010–RPR014) over it in parallel — one worker per rule.  Project
findings are cached under a whole-tree digest; ``changed_only=True``
reuses them when nothing changed, making no-op re-lints sub-second.

Findings are byte-identical whichever path produced them: cold, warm,
and ``changed_only`` runs all return the same sorted list.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from .cache import LintCache, content_digest, default_cache_dir
from .callgraph import CallGraph, ProjectIndex
from .config import LintConfig
from .findings import PARSE_ERROR_ID, Finding
from .index import ModuleInfo, build_module_info
from .rules import ModuleContext, ProjectRule, Rule, all_rules, derive_module_name
from .suppress import filter_suppressed

__all__ = ["LintEngine", "LintRun"]


@dataclass
class LintRun:
    """Everything one :meth:`LintEngine.run` invocation produced."""

    findings: list[Finding]
    files: list[Path]
    #: Files whose pass-1 record came from the cache.
    cache_hits: int = 0
    #: Files parsed and analysed from scratch.
    cache_misses: int = 0
    #: True when pass 2 was skipped entirely (cached project findings).
    project_reused: bool = False
    #: Paths whose content digest differs from the cached one.
    changed: list[str] = field(default_factory=list)

    @property
    def checked_files(self) -> int:
        return len(self.files)


@dataclass
class _Pass1Result:
    path: str
    digest: str
    info: ModuleInfo | None  # None on syntax error
    findings: list[Finding]
    source: str | None  # None when served from cache
    cached: bool


class LintEngine:
    """Run the enabled rules over sources, files, or directory trees."""

    def __init__(
        self,
        config: LintConfig | None = None,
        *,
        cache_dir: Path | str | None = None,
        use_cache: bool = True,
    ) -> None:
        self.config = config or LintConfig()
        self.rules = self._resolve_rules(self.config)
        self.local_rules = [
            rule for rule in self.rules if not isinstance(rule, ProjectRule)
        ]
        self.project_rules = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]
        if cache_dir is not None:
            self.cache_dir: Path | None = Path(cache_dir)
        elif use_cache:
            self.cache_dir = default_cache_dir(self.config.source)
        else:
            self.cache_dir = None

    @staticmethod
    def _resolve_rules(config: LintConfig) -> list[Rule]:
        rules = all_rules()
        known = {rule.rule_id for rule in rules}
        unknown = (set(config.enable) | set(config.disable)) - known
        if unknown:
            raise ValueError(f"unknown rule ids in config: {sorted(unknown)}")
        if config.enable:
            rules = [rule for rule in rules if rule.rule_id in config.enable]
        return [rule for rule in rules if rule.rule_id not in config.disable]

    def _make_cache(self) -> LintCache:
        rule_ids = tuple(rule.rule_id for rule in self.rules)
        return LintCache(self.cache_dir, rule_ids)

    def clear_cache(self) -> None:
        self._make_cache().clear()

    # ------------------------------------------------------------------
    # Single-module entry points
    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", module: str | None = None
    ) -> list[Finding]:
        """Analyse one module given as text (both passes, singleton index)."""
        try:
            ctx = ModuleContext.from_source(source, path=path, module=module)
        except SyntaxError as error:
            return [
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 1,
                    message=f"syntax error: {error.msg}",
                )
            ]
        findings = [
            finding for rule in self.local_rules for finding in rule.check(ctx)
        ]
        if self.project_rules:
            info = build_module_info(ctx.module, path, ctx.tree)
            index = ProjectIndex({info.module: info})
            graph = CallGraph(index)
            for rule in self.project_rules:
                findings.extend(rule.check_project(index, graph))
        return sorted(filter_suppressed(findings, source), key=Finding.sort_key)

    def lint_file(self, path: Path | str, module: str | None = None) -> list[Finding]:
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"), path=str(path), module=module
        )

    # ------------------------------------------------------------------
    # Tree walking
    # ------------------------------------------------------------------
    def collect_files(self, paths: list[Path | str]) -> list[Path]:
        """Expand files/directories into a sorted, de-duplicated file list."""
        files: list[Path] = []
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            elif entry.suffix == ".py":
                files.append(entry)
            else:
                raise FileNotFoundError(f"not a python file or directory: {entry}")
        unique = sorted(set(files))
        return [file for file in unique if not self._excluded(file)]

    def _excluded(self, path: Path) -> bool:
        posix = path.as_posix()
        return any(fnmatch(posix, pattern) for pattern in self.config.exclude)

    # ------------------------------------------------------------------
    # Pass 1
    # ------------------------------------------------------------------
    def _analyse_file(self, cache: LintCache, path: Path) -> _Pass1Result:
        raw = path.read_bytes()
        digest = content_digest(raw)
        cached = cache.lookup_module(str(path), digest)
        if cached is not None:
            info, findings = cached
            return _Pass1Result(str(path), digest, info, findings, None, True)
        source = raw.decode("utf-8")
        module = derive_module_name(path)
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            findings = [
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    path=str(path),
                    line=error.lineno or 1,
                    col=error.offset or 1,
                    message=f"syntax error: {error.msg}",
                )
            ]
            return _Pass1Result(str(path), digest, None, findings, source, False)
        ctx = ModuleContext(
            path=str(path), module=module, source=source, tree=tree
        )
        findings = [
            finding for rule in self.local_rules for finding in rule.check(ctx)
        ]
        findings = sorted(
            filter_suppressed(findings, source), key=Finding.sort_key
        )
        info = build_module_info(module, str(path), tree, digest=digest)
        cache.store_module(str(path), digest, info, findings)
        return _Pass1Result(str(path), digest, info, findings, source, False)

    # ------------------------------------------------------------------
    # Pass 2
    # ------------------------------------------------------------------
    def _run_project_rules(
        self, results: list[_Pass1Result], jobs: int | None
    ) -> list[Finding]:
        modules: dict[str, ModuleInfo] = {}
        for result in results:
            if result.info is not None:
                modules.setdefault(result.info.module, result.info)
        if not modules or not self.project_rules:
            return []
        index = ProjectIndex(modules)
        graph = CallGraph(index)

        def run_rule(rule: ProjectRule) -> list[Finding]:
            return list(rule.check_project(index, graph))

        workers = min(len(self.project_rules), jobs or os.cpu_count() or 1)
        if workers <= 1:
            batches = [run_rule(rule) for rule in self.project_rules]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batches = list(pool.map(run_rule, self.project_rules))
        raw = [finding for batch in batches for finding in batch]
        return self._filter_project(raw, results)

    @staticmethod
    def _filter_project(
        findings: list[Finding], results: list[_Pass1Result]
    ) -> list[Finding]:
        """Apply inline suppressions to project findings, per file."""
        if not findings:
            return []
        sources = {
            result.path: result.source
            for result in results
            if result.source is not None
        }
        by_path: dict[str, list[Finding]] = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        kept: list[Finding] = []
        for path, group in by_path.items():
            source = sources.get(path)
            if source is None:
                try:
                    source = Path(path).read_text(encoding="utf-8")
                except OSError:
                    kept.extend(group)
                    continue
            kept.extend(filter_suppressed(group, source))
        return kept

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(
        self,
        paths: list[Path | str],
        jobs: int | None = None,
        changed_only: bool = False,
    ) -> LintRun:
        """Two-pass analysis of every file under ``paths``."""
        files = self.collect_files(paths)
        if not files:
            return LintRun(findings=[], files=[])
        cache = self._make_cache()

        workers = jobs or min(len(files), os.cpu_count() or 1)
        if workers <= 1:
            results = [self._analyse_file(cache, file) for file in files]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(lambda file: self._analyse_file(cache, file), files)
                )

        digests = {result.path: result.digest for result in results}
        previous = cache.cached_digests()
        changed = sorted(
            path
            for path, digest in digests.items()
            if previous.get(path) != digest
        )

        project_digest = cache.project_digest(digests)
        project_findings = None
        project_reused = False
        if changed_only:
            project_findings = cache.lookup_project(project_digest)
            project_reused = project_findings is not None
        if project_findings is None:
            project_findings = sorted(
                self._run_project_rules(results, jobs), key=Finding.sort_key
            )
            cache.store_project(project_digest, project_findings)
        cache.save()

        findings = sorted(
            (
                finding
                for result in results
                for finding in result.findings
            ),
            key=Finding.sort_key,
        )
        merged = sorted(findings + project_findings, key=Finding.sort_key)
        return LintRun(
            findings=merged,
            files=files,
            cache_hits=sum(1 for result in results if result.cached),
            cache_misses=sum(1 for result in results if not result.cached),
            project_reused=project_reused,
            changed=changed,
        )

    def lint_paths(
        self,
        paths: list[Path | str],
        jobs: int | None = None,
        changed_only: bool = False,
    ) -> list[Finding]:
        """Analyse every file under ``paths``; findings only."""
        return self.run(paths, jobs=jobs, changed_only=changed_only).findings
