"""Clean fixture for RPR009: spans for timing, Reportable results."""

from repro.obs import ReportableMixin, Stopwatch, span


def time_generation(fn):
    with span("discover.generate") as generate_span:
        fn()
    return generate_span.wall_seconds


def time_budget(fn):
    watch = Stopwatch()
    fn()
    return watch.elapsed_seconds


class SpanResult(ReportableMixin):
    def __init__(self, facts):
        self.facts = facts

    def summary(self):
        return {"facts_count": len(self.facts)}


class SelfContainedResult:
    """Speaks the protocol structurally instead of via the mixin."""

    def summary(self):
        return {"ok": True}

    def to_dict(self):
        return dict(self.summary())

    def to_json(self):
        import json

        return json.dumps(self.to_dict())
