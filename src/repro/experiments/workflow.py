"""The end-to-end experimental workflow of the paper's Figure 1.

``dataset selection → KGE algorithm selection → model training →
discover facts → metrics``, packaged as one configurable object so a
user can reproduce a full experimental configuration in three lines::

    flow = FactDiscoveryWorkflow(dataset="fb15k237-like", model="transe",
                                 strategy="cluster_triangles")
    report = flow.run()
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..discovery.discover import DiscoveryResult, discover_facts
from ..kg.datasets import load_dataset
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kge.base import KGEModel
from ..kge.evaluation import RankingMetrics, evaluate_ranking
from ..kge.training import fit
from ..obs import ReportableMixin
from ..resilience import GuardConfig, RetryPolicy
from .runner import default_model_config, default_train_config, get_trained_model

__all__ = ["WorkflowReport", "WorkflowResult", "FactDiscoveryWorkflow"]


@dataclass
class WorkflowReport(ReportableMixin):
    """Everything one workflow run produced."""

    dataset: str
    model_name: str
    strategy: str
    graph: KnowledgeGraph = field(repr=False)
    model: KGEModel = field(repr=False)
    link_prediction: RankingMetrics
    discovery: DiscoveryResult

    def summary(self) -> dict[str, float]:
        """Flat dict with the headline numbers of the run."""
        out = {
            "dataset": self.dataset,
            "model": self.model_name,
            "strategy": self.strategy,
            "test_mrr": self.link_prediction.mrr,
            "test_hits@10": self.link_prediction.hits.get(10, float("nan")),
        }
        out.update(self.discovery.summary())
        return out


#: Canonical name under the unified result API; ``WorkflowReport`` is the
#: historical spelling and remains the class's ``__name__``.
WorkflowResult = WorkflowReport


class FactDiscoveryWorkflow:
    """Configurable pipeline: load → train → evaluate → discover.

    Parameters
    ----------
    dataset:
        Dataset name from :func:`repro.kg.available_datasets`.
    model:
        Model name from :func:`repro.kge.available_models`.
    strategy:
        Sampling strategy from
        :func:`repro.discovery.available_strategies`.
    top_n, max_candidates:
        Discovery hyperparameters (paper defaults: 500 / 500).
    use_cached_model:
        Reuse the shared trained-model cache; set ``False`` to train a
        fresh model with the default (or provided) configs.
    guard:
        Divergence-guard policy for the training step (see
        :class:`repro.resilience.GuardConfig`).  ``None`` keeps the
        runner's default (epoch retry with spawned RNG streams).
    retry_policy:
        Whole-training retry budget applied when the cached-model path
        has to (re)train (see :class:`repro.resilience.RetryPolicy`).
    """

    def __init__(
        self,
        dataset: str = "fb15k237-like",
        model: str = "transe",
        strategy: str = "entity_frequency",
        top_n: int = 500,
        max_candidates: int = 500,
        seed: int = 0,
        use_cached_model: bool = True,
        model_config=None,
        train_config=None,
        guard: GuardConfig | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.dataset = dataset
        self.model_name = model
        self.strategy = strategy
        self.top_n = top_n
        self.max_candidates = max_candidates
        self.seed = seed
        self.use_cached_model = use_cached_model
        self.model_config = model_config or default_model_config(model)
        self.train_config = train_config or default_train_config(model)
        self.guard = guard
        self.retry_policy = retry_policy

    def run(self) -> WorkflowReport:
        """Execute all workflow steps and return the bundled report."""
        graph = load_dataset(self.dataset)
        if self.use_cached_model:
            model = get_trained_model(
                self.dataset,
                self.model_name,
                graph=graph,
                guard=self.guard,
                retry_policy=self.retry_policy,
            )
        else:
            model = fit(
                graph, self.model_config, self.train_config, guard=self.guard
            ).model

        link_prediction = evaluate_ranking(model, graph, split="test")
        discovery = discover_facts(
            model,
            graph,
            strategy=self.strategy,
            top_n=self.top_n,
            max_candidates=self.max_candidates,
            seed=self.seed,
            stats=GraphStatistics(graph.train),
        )
        return WorkflowReport(
            dataset=self.dataset,
            model_name=self.model_name,
            strategy=self.strategy,
            graph=graph,
            model=model,
            link_prediction=link_prediction,
            discovery=discovery,
        )
