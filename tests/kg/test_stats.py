"""Graph-statistics tests against hand-computed values and networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.kg import (
    GraphStatistics,
    TripleSet,
    degrees,
    entity_frequency,
    global_clustering_coefficient,
    local_clustering_coefficient,
    local_triangles,
    side_entities,
    square_clustering,
    undirected_adjacency,
)
from repro.kg.stats import OBJECT, SUBJECT


class TestAdjacency:
    def test_triangle_graph(self, triangle_triples):
        adj = undirected_adjacency(triangle_triples)
        assert adj.shape == (3, 3)
        np.testing.assert_array_equal(degrees(adj), [2, 2, 2])

    def test_symmetric(self, triangle_triples):
        adj = undirected_adjacency(triangle_triples)
        assert (adj != adj.T).nnz == 0

    def test_self_loops_dropped(self):
        ts = TripleSet(np.asarray([[0, 0, 0], [0, 0, 1]]), 3, 1)
        adj = undirected_adjacency(ts)
        assert adj.diagonal().sum() == 0
        np.testing.assert_array_equal(degrees(adj), [1, 1, 0])

    def test_parallel_edges_collapse(self):
        # Same undirected edge via two relations and both directions.
        ts = TripleSet(np.asarray([[0, 0, 1], [1, 1, 0]]), 2, 2)
        adj = undirected_adjacency(ts)
        np.testing.assert_array_equal(degrees(adj), [1, 1])


class TestEntityFrequency:
    def test_subject_counts(self):
        ts = TripleSet(np.asarray([[0, 0, 1], [0, 0, 2], [1, 0, 0]]), 3, 1)
        np.testing.assert_array_equal(entity_frequency(ts, SUBJECT), [2, 1, 0])
        np.testing.assert_array_equal(entity_frequency(ts, OBJECT), [1, 1, 1])

    def test_invalid_side(self):
        ts = TripleSet(np.asarray([[0, 0, 1]]), 2, 1)
        with pytest.raises(ValueError):
            entity_frequency(ts, "sideways")

    def test_side_entities(self):
        ts = TripleSet(np.asarray([[0, 0, 1], [0, 0, 2]]), 4, 1)
        np.testing.assert_array_equal(side_entities(ts, SUBJECT), [0])
        np.testing.assert_array_equal(side_entities(ts, OBJECT), [1, 2])


class TestTriangles:
    def test_triangle_graph_has_one_per_node(self, triangle_triples):
        adj = undirected_adjacency(triangle_triples)
        np.testing.assert_array_equal(local_triangles(adj), [1, 1, 1])

    def test_star_graph_has_none(self, star_triples):
        adj = undirected_adjacency(star_triples)
        np.testing.assert_array_equal(local_triangles(adj), [0, 0, 0, 0, 0])

    def test_square_graph_has_none(self, square_triples):
        adj = undirected_adjacency(square_triples)
        np.testing.assert_array_equal(local_triangles(adj), [0, 0, 0, 0])

    def test_k4_has_three_per_node(self):
        edges = [[a, 0, b] for a in range(4) for b in range(4) if a < b]
        ts = TripleSet(np.asarray(edges), 4, 1)
        adj = undirected_adjacency(ts)
        np.testing.assert_array_equal(local_triangles(adj), [3, 3, 3, 3])


class TestClusteringCoefficient:
    def test_triangle_graph_is_fully_clustered(self, triangle_triples):
        adj = undirected_adjacency(triangle_triples)
        np.testing.assert_allclose(local_clustering_coefficient(adj), 1.0)

    def test_star_hub_is_zero(self, star_triples):
        """The paper's example: a star hub is popular but has c(v) = 0."""
        adj = undirected_adjacency(star_triples)
        coeff = local_clustering_coefficient(adj)
        assert coeff[0] == 0.0
        np.testing.assert_array_equal(coeff[1:], 0.0)  # leaves: deg < 2

    def test_global_average(self, triangle_triples):
        adj = undirected_adjacency(triangle_triples)
        assert global_clustering_coefficient(adj) == pytest.approx(1.0)


class TestSquareClustering:
    def test_square_graph(self, square_triples):
        """On a plain 4-cycle each node has c₄ determined by one square."""
        adj = undirected_adjacency(square_triples)
        mine = square_clustering(adj)
        reference = nx.square_clustering(nx.from_scipy_sparse_array(adj))
        np.testing.assert_allclose(mine, [reference[i] for i in range(4)])

    def test_matches_networkx_on_random_graph(self):
        rng = np.random.default_rng(0)
        triples = np.stack(
            [rng.integers(0, 30, 120), np.zeros(120, np.int64), rng.integers(0, 30, 120)],
            axis=1,
        )
        ts = TripleSet(triples, 30, 1)
        adj = undirected_adjacency(ts)
        mine = square_clustering(adj)
        reference = nx.square_clustering(nx.from_scipy_sparse_array(adj))
        np.testing.assert_allclose(mine, [reference[i] for i in range(30)], atol=1e-12)


class TestBackendsAgree:
    @pytest.mark.parametrize("metric", ["triangles", "clustering_coefficient"])
    def test_networkx_vs_sparse(self, small_graph, metric):
        a = GraphStatistics(small_graph.train, backend="networkx")
        b = GraphStatistics(small_graph.train, backend="sparse")
        np.testing.assert_allclose(getattr(a, metric), getattr(b, metric))

    def test_squares_agree_on_tiny(self, tiny_graph):
        a = GraphStatistics(tiny_graph.train, backend="networkx")
        b = GraphStatistics(tiny_graph.train, backend="sparse")
        np.testing.assert_allclose(a.squares_clustering, b.squares_clustering, atol=1e-12)


class TestGraphStatistics:
    def test_caching_returns_same_object(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        assert stats.triangles is stats.triangles
        assert stats.clustering_coefficient is stats.clustering_coefficient

    def test_invalid_backend(self, tiny_graph):
        with pytest.raises(ValueError):
            GraphStatistics(tiny_graph.train, backend="gpu")

    def test_frequency_matches_free_function(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        np.testing.assert_array_equal(
            stats.subject_frequency, entity_frequency(tiny_graph.train, SUBJECT)
        )
        np.testing.assert_array_equal(
            stats.object_frequency, entity_frequency(tiny_graph.train, OBJECT)
        )

    def test_average_clustering_in_unit_interval(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        assert 0.0 <= stats.average_clustering <= 1.0

    def test_degree_sums_to_twice_edges(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        assert stats.degree.sum() == stats.adjacency.nnz


class TestAsArray:
    def test_matches_per_node_python_loop(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        rng = np.random.default_rng(13)
        nodes = rng.choice(tiny_graph.num_entities, size=17, replace=False)
        mapping = {int(node): float(rng.standard_normal()) for node in nodes}

        reference = np.zeros(tiny_graph.num_entities, dtype=np.float64)
        for node, value in mapping.items():
            reference[node] = value
        np.testing.assert_array_equal(stats._as_array(mapping), reference)

    def test_empty_mapping_gives_zeros(self, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        out = stats._as_array({})
        assert out.shape == (tiny_graph.num_entities,)
        assert out.dtype == np.float64
        assert not out.any()
