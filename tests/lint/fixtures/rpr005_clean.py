"""RPR005 clean fixture: __all__ matches the public surface exactly."""

__all__ = ["helper"]


def helper():
    return 1


def _private():
    return 2
