"""Ablation/extension — relation-scoped (domain/range-aware) sampling.

The paper's §6 suggests pruning mechanisms for illogical candidates;
CHAI (§5.1) prunes after generation.  The RELATION FREQUENCY extension
builds the constraint into generation itself: subjects/objects are
sampled from each relation's observed domain/range.  Compared against
global ENTITY FREQUENCY on the same trained model:

* every candidate is domain/range-consistent *by construction*;
* the per-relation budget wastes nothing on type-invalid pairs, so both
  yield and MRR improve.
"""

from __future__ import annotations

from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import RuleFilter, discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset


def test_relation_scoped_sampling(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)
    rules = RuleFilter(graph.train)

    def run(strategy):
        return discover_facts(
            model, graph, strategy=strategy, top_n=TOP_N_DEFAULT,
            max_candidates=MAX_CANDIDATES_DEFAULT, seed=0, stats=stats,
        )

    scoped = benchmark.pedantic(
        lambda: run("relation_frequency"), rounds=1, iterations=1
    )
    global_ef = run("entity_frequency")

    rows = []
    results = {"relation_frequency (scoped)": scoped, "entity_frequency (global)": global_ef}
    for label, result in results.items():
        compliance = (
            float(rules.accept_mask(result.facts).mean()) if result.num_facts else 0.0
        )
        rows.append(
            {
                "strategy": label,
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "domain_range_compliance": round(compliance, 3),
                "facts_per_hour": round(result.efficiency_facts_per_hour()),
            }
        )
    save_and_print(
        "ablation_scoped_sampling",
        format_table(
            rows,
            title="Extension — relation-scoped vs global frequency sampling "
            "(fb15k237-like, DistMult)",
        ),
    )

    # Scoped candidates respect domain/range by construction...
    scoped_compliance = rules.accept_mask(scoped.facts).mean()
    global_compliance = rules.accept_mask(global_ef.facts).mean()
    assert scoped_compliance > 0.99
    assert scoped_compliance > global_compliance
    # ...and the budget buys at least as many facts of at least equal
    # quality.
    assert scoped.num_facts >= global_ef.num_facts
    assert scoped.mrr() >= 0.95 * global_ef.mrr()