"""Knowledge-graph substrate: triples, vocabularies, statistics, datasets.

Public surface:

* :class:`TripleSet` — integer triple storage with fast membership tests.
* :class:`KnowledgeGraph` — vocabularies plus train/valid/test splits.
* :class:`Vocabulary` — label ↔ id mapping.
* :class:`GraphStatistics` and the free functions in :mod:`repro.kg.stats`
  — degree, frequency, triangles, clustering coefficients.
* :func:`load_dataset` — benchmark replica registry (see
  :mod:`repro.kg.datasets` for the substitution rationale).
* :func:`generate_kg` / :class:`KGProfile` — synthetic KG generation.
* :func:`load_dataset_dir` / :func:`save_dataset_dir` — TSV dataset I/O.
"""

from .analysis import (
    RelationProfile,
    cardinality_histogram,
    dataset_report,
    powerlaw_exponent,
    relation_profiles,
)
from .datasets import (
    DATASET_PROFILES,
    PAPER_METADATA,
    PaperDatasetMetadata,
    available_datasets,
    load_dataset,
)
from .generators import KGProfile, generate_kg
from .graph import KnowledgeGraph
from .io import load_dataset_dir, read_triples_tsv, save_dataset_dir, write_triples_tsv
from .stats import (
    OBJECT,
    SUBJECT,
    GraphStatistics,
    degrees,
    entity_frequency,
    global_clustering_coefficient,
    local_clustering_coefficient,
    local_triangles,
    side_entities,
    square_clustering,
    to_networkx,
    undirected_adjacency,
)
from .transforms import (
    InverseLeak,
    detect_inverse_leakage,
    filter_relations,
    induced_subgraph,
    remove_inverse_leakage,
    sample_complement,
)
from .triples import TripleSet, encode_keys
from .vocabulary import Vocabulary

__all__ = [
    "TripleSet",
    "encode_keys",
    "KnowledgeGraph",
    "Vocabulary",
    "GraphStatistics",
    "SUBJECT",
    "OBJECT",
    "undirected_adjacency",
    "degrees",
    "entity_frequency",
    "side_entities",
    "to_networkx",
    "local_triangles",
    "local_clustering_coefficient",
    "square_clustering",
    "global_clustering_coefficient",
    "KGProfile",
    "generate_kg",
    "DATASET_PROFILES",
    "PAPER_METADATA",
    "PaperDatasetMetadata",
    "available_datasets",
    "load_dataset",
    "load_dataset_dir",
    "save_dataset_dir",
    "read_triples_tsv",
    "write_triples_tsv",
    "RelationProfile",
    "relation_profiles",
    "cardinality_histogram",
    "powerlaw_exponent",
    "dataset_report",
    "InverseLeak",
    "detect_inverse_leakage",
    "remove_inverse_leakage",
    "induced_subgraph",
    "filter_relations",
    "sample_complement",
]
