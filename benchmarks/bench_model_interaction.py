"""§4 question (iii) — how KGE models interact with sampling strategies.

The paper asks whether the strategy ranking is stable across embedding
models (it reports EF's "abnormally" strong affinity with ConvE but an
otherwise consistent picture).  This benchmark slices the run matrix by
model: per model, the strategies are ranked by mean MRR, and the paper's
core ordering (popularity strategies above UR/CC) must hold for *every*
model.
"""

from __future__ import annotations

import numpy as np
from common import matrix_rows, save_and_print

from repro.discovery import STRATEGY_ABBREVIATIONS
from repro.experiments import format_table, group_rows


def test_strategy_ranking_stable_across_models(benchmark):
    rows = benchmark.pedantic(matrix_rows, rounds=1, iterations=1)

    table = []
    per_model_means: dict[str, dict[str, float]] = {}
    for model, model_rows in group_rows(rows, "model").items():
        means = {
            strategy: float(np.mean([r.mrr for r in srows]))
            for strategy, srows in group_rows(model_rows, "strategy").items()
        }
        per_model_means[model] = means
        ranked = sorted(means, key=means.get, reverse=True)
        table.append(
            {
                "model": model,
                "best": STRATEGY_ABBREVIATIONS[ranked[0]],
                "2nd": STRATEGY_ABBREVIATIONS[ranked[1]],
                "3rd": STRATEGY_ABBREVIATIONS[ranked[2]],
                "4th": STRATEGY_ABBREVIATIONS[ranked[3]],
                "worst": STRATEGY_ABBREVIATIONS[ranked[4]],
                "best_mrr": round(means[ranked[0]], 4),
                "worst_mrr": round(means[ranked[4]], 4),
            }
        )
    save_and_print(
        "model_interaction",
        format_table(
            table,
            title="§4(iii) — strategy ranking per KGE model (mean MRR over datasets)",
        ),
    )

    popularity = ("entity_frequency", "graph_degree", "cluster_triangles")
    weak = ("uniform_random", "cluster_coefficient")
    for model, means in per_model_means.items():
        # The paper's conclusion is model-independent: every popularity
        # strategy beats every weak strategy, for every model.
        for strong in popularity:
            for feeble in weak:
                assert means[strong] > means[feeble], (model, strong, feeble)