"""RPR014 bad fixture: broad except swallowing a typed project error."""


class BudgetError(Exception):
    pass


def _load(path):
    raise BudgetError(path)


def run(path):
    try:
        return _load(path)
    except Exception:
        return None
