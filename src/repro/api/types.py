"""Versioned wire types for the public query API.

Every request/response that crosses a process boundary — the HTTP
endpoints in :mod:`repro.serve`, the ``repro query`` CLI, Python callers
going through :class:`repro.api.Session` — is one of the frozen
keyword-only dataclasses below.  Each carries a ``schema_version`` field
(currently :data:`SCHEMA_VERSION`), serialises through ``to_dict`` /
``to_json`` with deterministic key order, and parses back through
``from_dict``, which rejects unknown keys and unsupported schema
versions with a typed :class:`BadRequestError` instead of silently
dropping fields.  Responses additionally satisfy the
:class:`~repro.obs.reporting.Reportable` protocol, so their ``summary()``
keys follow the canonical ``*_seconds``/``*_count`` vocabulary enforced
by lint rule RPR012.

Errors are modelled as an :class:`ApiError` hierarchy whose ``status`` /
``code`` class attributes define the HTTP error envelope; transports map
any other exception to the generic 500 ``internal`` code so the wire
never leaks stack traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping

from ..obs.reporting import ReportableMixin, json_default

__all__ = [
    "SCHEMA_VERSION",
    "ApiError",
    "BadRequestError",
    "NotFoundError",
    "ModelNotFoundError",
    "DeadlineError",
    "ModelRef",
    "config_digest",
    "WireType",
    "RankRequest",
    "DiscoverRequest",
    "ClassifyRequest",
    "RankResponse",
    "DiscoverResponse",
    "ClassifyResponse",
    "ModelInfo",
    "ModelsResponse",
    "HealthResponse",
    "encode_payload",
    "request_type_for",
    "response_type_for",
]

SCHEMA_VERSION = "v1"

_RANK_SIDES = ("subject", "object")
_RANK_FILTERS = ("train", "all", "none")


class ApiError(Exception):
    """Base for typed API failures; subclasses pin the HTTP status/code.

    ``envelope()`` is the one error shape on the wire: transports
    serialise it verbatim, clients re-raise from it, so Python and HTTP
    callers see the same taxonomy.
    """

    status: ClassVar[int] = 500
    code: ClassVar[str] = "internal"

    def envelope(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "error": {
                "code": self.code,
                "status": self.status,
                "message": str(self),
            },
        }


class BadRequestError(ApiError):
    """Malformed request: unknown keys, bad types, unsupported schema."""

    status = 400
    code = "bad_request"


class NotFoundError(ApiError):
    """Unknown route or resource."""

    status = 404
    code = "not_found"


class ModelNotFoundError(NotFoundError):
    """The requested model id is not registered."""

    code = "model_not_found"


class DeadlineError(ApiError):
    """The per-request deadline expired before the answer was ready."""

    status = 504
    code = "deadline_exceeded"


def config_digest(header: Mapping[str, Any]) -> str:
    """12-hex digest of a checkpoint header's model configuration.

    Hashes the architecture-defining fields only (not the parameter
    checksum), so two checkpoints of the same configuration at different
    training states share a digest prefix in the registry while any
    config change — dim, seed, model options — forks the model id.
    """
    canonical = {
        key: header[key]
        for key in ("model", "num_entities", "num_relations", "dim", "seed", "options")
        if key in header
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True, kw_only=True)
class ModelRef:
    """Registry coordinates of one servable model.

    The canonical string form is ``dataset/model@digest``; the digest may
    be empty, meaning "whichever single config of this model the registry
    holds" (convenience for CLI use — ambiguity is a lookup error).
    """

    dataset: str
    model: str
    digest: str = ""

    @property
    def model_id(self) -> str:
        if not self.digest:
            return f"{self.dataset}/{self.model}"
        return f"{self.dataset}/{self.model}@{self.digest}"

    @classmethod
    def parse(cls, model_id: str) -> "ModelRef":
        dataset, sep, rest = model_id.partition("/")
        if not sep or not dataset or not rest:
            raise BadRequestError(
                f"model id {model_id!r} is not of the form dataset/model[@digest]"
            )
        model, _, digest = rest.partition("@")
        if not model:
            raise BadRequestError(f"model id {model_id!r} has an empty model name")
        return cls(dataset=dataset, model=model, digest=digest)

    def to_dict(self) -> dict[str, Any]:
        return {"dataset": self.dataset, "model": self.model, "digest": self.digest}


def _freeze(value: Any) -> Any:
    """Recursively convert JSON lists to tuples so dataclasses stay frozen."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, Mapping):
        return {key: _freeze(item) for key, item in value.items()}
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze`: tuples back to lists for JSON output."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    if isinstance(value, Mapping):
        return {key: _thaw(item) for key, item in value.items()}
    if isinstance(value, WireType):
        return value.to_dict()
    return value


def encode_payload(payload: Mapping[str, Any]) -> bytes:
    """Deterministic UTF-8 JSON bytes for a wire payload."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=json_default
    ).encode("utf-8")


@dataclass(frozen=True, kw_only=True)
class WireType(ReportableMixin):
    """Shared round-trip machinery for every request/response dataclass.

    ``to_dict`` emits every field (tuples as lists, nested wire types as
    dicts); ``from_dict`` rejects unknown keys and foreign schema
    versions, re-freezes sequences, and rebuilds nested types declared in
    the subclass's ``_NESTED`` map.  Constructors are keyword-only and
    instances are immutable, mirroring ``DiscoveryConfig``/``TrainConfig``.
    """

    schema_version: str = SCHEMA_VERSION

    # Field name -> element wire type, for tuple-of-dataclass fields.
    _NESTED: ClassVar[Mapping[str, type]] = {}

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise BadRequestError(
                f"{type(self).__name__}: unsupported schema_version "
                f"{self.schema_version!r} (this build speaks {SCHEMA_VERSION!r})"
            )
        self.validate()

    def validate(self) -> None:
        """Subclass hook for field validation; raises :class:`BadRequestError`."""

    def summary(self) -> dict[str, Any]:
        return {"schema_version": self.schema_version}

    def to_dict(self) -> dict[str, Any]:
        return {spec.name: _thaw(getattr(self, spec.name)) for spec in fields(self)}

    def to_bytes(self) -> bytes:
        return encode_payload(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WireType":
        if not isinstance(data, Mapping):
            raise BadRequestError(f"{cls.__name__}: payload must be a JSON object")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise BadRequestError(f"{cls.__name__}: unknown keys {unknown}")
        kwargs = {key: _freeze(value) for key, value in data.items()}
        for name, element_cls in cls._NESTED.items():
            if name in kwargs and isinstance(kwargs[name], tuple):
                kwargs[name] = tuple(
                    element_cls.from_dict(item) if isinstance(item, Mapping) else item
                    for item in kwargs[name]
                )
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise BadRequestError(f"{cls.__name__}: {error}") from None

    @classmethod
    def from_bytes(cls, raw: bytes) -> "WireType":
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"{cls.__name__}: invalid JSON body: {error}") from None
        return cls.from_dict(payload)


def _check_triples(owner: str, triples: Any) -> None:
    if not isinstance(triples, tuple) or not triples:
        raise BadRequestError(f"{owner}: triples must be a non-empty list")
    for triple in triples:
        if (
            not isinstance(triple, tuple)
            or len(triple) != 3
            or not all(isinstance(part, int) and not isinstance(part, bool) for part in triple)
        ):
            raise BadRequestError(
                f"{owner}: each triple must be three integers, got {triple!r}"
            )


@dataclass(frozen=True, kw_only=True)
class RankRequest(WireType):
    """Rank the true entity of each triple against all corruptions.

    ``filter`` picks the filtered-setting triple set: ``train`` (the
    discovery protocol's setting), ``all`` (train+valid+test, the
    standard evaluation protocol) or ``none`` (raw ranks).
    """

    model: str
    triples: tuple[tuple[int, int, int], ...]
    side: str = "object"
    filter: str = "train"

    def validate(self) -> None:
        _check_triples("RankRequest", self.triples)
        if self.side not in _RANK_SIDES:
            raise BadRequestError(f"RankRequest: side must be one of {_RANK_SIDES}")
        if self.filter not in _RANK_FILTERS:
            raise BadRequestError(f"RankRequest: filter must be one of {_RANK_FILTERS}")


@dataclass(frozen=True, kw_only=True)
class DiscoverRequest(WireType):
    """Run the paper's discovery protocol against a served model."""

    model: str
    strategy: str = "entity_frequency"
    top_n: int = 50
    max_candidates: int = 500
    relations: tuple[int, ...] | None = None
    seed: int = 0

    def validate(self) -> None:
        if self.top_n <= 0:
            raise BadRequestError("DiscoverRequest: top_n must be positive")
        if self.max_candidates <= 0:
            raise BadRequestError("DiscoverRequest: max_candidates must be positive")
        if self.relations is not None and not all(
            isinstance(rel, int) and not isinstance(rel, bool) for rel in self.relations
        ):
            raise BadRequestError("DiscoverRequest: relations must be integers")


@dataclass(frozen=True, kw_only=True)
class ClassifyRequest(WireType):
    """Score triples and classify them true/false at the tuned threshold."""

    model: str
    triples: tuple[tuple[int, int, int], ...]
    seed: int = 0
    hard_negatives: bool = False

    def validate(self) -> None:
        _check_triples("ClassifyRequest", self.triples)


@dataclass(frozen=True, kw_only=True)
class RankResponse(WireType):
    """Tie-averaged filtered ranks plus their MRR."""

    model: str
    side: str
    filter: str
    ranks: tuple[float, ...]
    mrr: float

    def summary(self) -> dict[str, Any]:
        return {"ranks_count": len(self.ranks), "mrr": self.mrr}


@dataclass(frozen=True, kw_only=True)
class DiscoverResponse(WireType):
    """Discovered facts in rank order, mirroring ``DiscoveryResult``."""

    model: str
    strategy: str
    top_n: int
    max_candidates: int
    seed: int
    facts: tuple[tuple[int, int, int], ...]
    ranks: tuple[float, ...]
    candidates_generated_count: int

    def summary(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "facts_count": len(self.facts),
            "candidates_generated_count": self.candidates_generated_count,
        }


@dataclass(frozen=True, kw_only=True)
class ClassifyResponse(WireType):
    """Per-triple scores and boolean labels at the tuned threshold."""

    model: str
    threshold: float
    scores: tuple[float, ...]
    labels: tuple[bool, ...]

    def summary(self) -> dict[str, Any]:
        return {
            "labels_count": len(self.labels),
            "positives_count": sum(1 for label in self.labels if label),
        }


@dataclass(frozen=True, kw_only=True)
class ModelInfo(WireType):
    """One registry entry as reported by ``/v1/models``."""

    model_id: str
    dataset: str
    model: str
    digest: str
    dim: int
    entities_count: int
    relations_count: int
    seed: int
    loaded: bool

    def summary(self) -> dict[str, Any]:
        return {
            "dim": self.dim,
            "entities_count": self.entities_count,
            "relations_count": self.relations_count,
        }


@dataclass(frozen=True, kw_only=True)
class ModelsResponse(WireType):
    """The registry catalogue."""

    models: tuple[ModelInfo, ...]

    _NESTED: ClassVar[Mapping[str, type]] = {"models": ModelInfo}

    def summary(self) -> dict[str, Any]:
        return {
            "models_count": len(self.models),
            "loaded_count": sum(1 for info in self.models if info.loaded),
        }


@dataclass(frozen=True, kw_only=True)
class HealthResponse(WireType):
    """Liveness probe payload."""

    status: str = "ok"
    models_count: int = 0

    def summary(self) -> dict[str, Any]:
        return {"status": self.status, "models_count": self.models_count}


_REQUEST_TYPES: Mapping[str, type[WireType]] = {
    "rank": RankRequest,
    "discover": DiscoverRequest,
    "classify": ClassifyRequest,
}

_RESPONSE_TYPES: Mapping[str, type[WireType]] = {
    "rank": RankResponse,
    "discover": DiscoverResponse,
    "classify": ClassifyResponse,
    "models": ModelsResponse,
}


def request_type_for(endpoint: str) -> type[WireType]:
    """The request dataclass for a ``/v1/<endpoint>`` route."""
    try:
        return _REQUEST_TYPES[endpoint]
    except KeyError:
        raise NotFoundError(f"unknown endpoint {endpoint!r}") from None


def response_type_for(endpoint: str) -> type[WireType]:
    """The response dataclass for a ``/v1/<endpoint>`` route."""
    try:
        return _RESPONSE_TYPES[endpoint]
    except KeyError:
        raise NotFoundError(f"unknown endpoint {endpoint!r}") from None
