"""Compound autodiff operations used by the KGE models.

These are the operations that do not decompose nicely into the elementwise
primitives on :class:`~repro.autograd.tensor.Tensor`:

* batched circular correlation / convolution (HolE scoring, via FFT),
* 2-D convolution (ConvE, via im2col),
* dropout.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "circular_correlation",
    "circular_convolution",
    "conv2d",
    "dropout",
]


def _rfft_corr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise circular correlation computed in the Fourier domain."""
    n = a.shape[-1]
    return np.fft.irfft(np.conj(np.fft.rfft(a)) * np.fft.rfft(b), n=n)


def _rfft_conv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise circular convolution computed in the Fourier domain."""
    n = a.shape[-1]
    return np.fft.irfft(np.fft.rfft(a) * np.fft.rfft(b), n=n)


def circular_correlation(a: Tensor, b: Tensor) -> Tensor:
    """Batched circular correlation ``(a ⋆ b)_k = Σ_i a_i b_{(i+k) mod d}``.

    This is the compositional operator of HolE.  Both arguments must share
    their trailing dimension; broadcasting applies to leading dimensions.
    """
    out_data = _rfft_corr(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        # d/da = grad ⋆ b ; d/db = grad * a (circular convolution).
        if a.requires_grad:
            a._accumulate(_rfft_corr(grad, b.data))
        if b.requires_grad:
            b._accumulate(_rfft_conv(grad, a.data))

    return Tensor._make(out_data, (a, b), backward)


def circular_convolution(a: Tensor, b: Tensor) -> Tensor:
    """Batched circular convolution ``(a * b)_k = Σ_i a_i b_{(k-i) mod d}``."""
    out_data = _rfft_conv(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_rfft_corr(b.data, grad))
        if b.requires_grad:
            b._accumulate(_rfft_corr(a.data, grad))

    return Tensor._make(out_data, (a, b), backward)


def _im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (B, C, H, W) into (B, out_h*out_w, C*kh*kw)."""
    batch, channels, height, width = x.shape
    out_h = height - kernel_h + 1
    out_w = width - kernel_w + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, channels * kernel_h * kernel_w
    )
    return np.ascontiguousarray(cols), out_h, out_w


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Valid (unpadded), stride-1 2-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-filter bias of shape ``(C_out,)``.

    Returns a tensor of shape ``(B, C_out, H-kh+1, W-kw+1)``.
    """
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]}, "
            f"weight expects {in_channels}"
        )
    cols, out_h, out_w = _im2col(x.data, kernel_h, kernel_w)
    w_mat = weight.data.reshape(out_channels, -1)  # (C_out, C_in*kh*kw)
    out = cols @ w_mat.T  # (B, out_h*out_w, C_out)
    if bias is not None:
        out = out + bias.data
    batch = x.shape[0]
    out_data = out.transpose(0, 2, 1).reshape(batch, out_channels, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(batch, out_channels, out_h * out_w).transpose(0, 2, 1)
        if weight.requires_grad:
            grad_w = np.einsum("bpo,bpk->ok", grad_mat, cols)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat  # (B, out_h*out_w, C_in*kh*kw)
            grad_cols = grad_cols.reshape(
                batch, out_h, out_w, in_channels, kernel_h, kernel_w
            )
            # col2im runs channels-last so every per-tap add walks the
            # matmul output in memory order (the channel axis is the
            # contiguous one on both sides); a single transpose copy at
            # the end restores NCHW.  Per-element additions happen in
            # the same tap order as the naive NCHW loop, so the result
            # is bitwise identical.
            grad_t = np.zeros(
                (batch, x.shape[2], x.shape[3], in_channels), dtype=x.data.dtype
            )
            for i in range(kernel_h):
                for j in range(kernel_w):
                    grad_t[:, i : i + out_h, j : j + out_w, :] += grad_cols[
                        :, :, :, :, i, j
                    ]
            x._accumulate(np.ascontiguousarray(grad_t.transpose(0, 3, 1, 2)))

    return Tensor._make(out_data, parents, backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: zero a ``rate`` fraction and rescale survivors."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    if not is_grad_enabled():
        return Tensor(out_data)
    return Tensor._make(out_data, (x,), backward)
