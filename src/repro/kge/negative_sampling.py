"""Negative sampling for KGE training.

Generates corrupted triples by replacing the subject or object with
uniformly-drawn entities, optionally rejecting corruptions that are true
in the training graph (the "filtered" Bernoulli-free scheme used by most
libraries).
"""

from __future__ import annotations

import copy

import numpy as np

from ..kg.triples import TripleSet

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Uniform corruption sampler over the entity space.

    Parameters
    ----------
    triples:
        Training triples; used to reject accidental positives when
        ``filter_true`` is on.
    num_negatives:
        Corruptions generated per positive triple.
    corrupt:
        ``"object"``, ``"subject"``, ``"both"`` (alternating halves) or
        ``"bernoulli"`` (side chosen per relation with probability
        tph / (tph + hpt), the scheme of Wang et al. 2014 that reduces
        false negatives on skewed relations).  The paper's evaluation
        protocol corrupts the object side, but training with both sides
        is standard and strictly more informative.
    filter_true:
        Resample (up to a bounded number of rounds) corruptions that hit
        actual training triples.
    """

    def __init__(
        self,
        triples: TripleSet,
        num_negatives: int = 8,
        corrupt: str = "both",
        filter_true: bool = True,
        seed: int = 0,
        max_resample_rounds: int = 8,
    ) -> None:
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        if corrupt not in ("object", "subject", "both", "bernoulli"):
            raise ValueError(
                f"corrupt must be object/subject/both/bernoulli, got {corrupt!r}"
            )
        self.triples = triples
        self.num_negatives = num_negatives
        self.corrupt = corrupt
        self.filter_true = filter_true
        self.max_resample_rounds = max_resample_rounds
        self.rng = np.random.default_rng(seed)
        self._object_corruption_prob = (
            self._bernoulli_probabilities() if corrupt == "bernoulli" else None
        )

    def _bernoulli_probabilities(self) -> np.ndarray:
        """Per-relation probability of corrupting the *object* side.

        Following Wang et al. (2014): with tph = mean tails per head and
        hpt = mean heads per tail, corrupt the head (subject) with
        probability tph / (tph + hpt) — i.e. corrupt the object with the
        complementary probability — so that the side with more valid
        completions is disturbed less, reducing false negatives.
        """
        probs = np.full(self.triples.num_relations, 0.5)
        arr = self.triples.array
        for relation in self.triples.unique_relations():
            rel = arr[arr[:, 1] == relation]
            tph = len(rel) / max(len(np.unique(rel[:, 0])), 1)
            hpt = len(rel) / max(len(np.unique(rel[:, 2])), 1)
            probs[relation] = hpt / (tph + hpt)
        return probs

    def reseeded(self, rng: np.random.Generator) -> "NegativeSampler":
        """A clone drawing from ``rng`` instead of the original stream.

        Used by the training guard's epoch-retry policy: the clone shares
        the (immutable) triple index and precomputed Bernoulli
        probabilities, so a retried epoch redraws its negatives from a
        spawned stream without replaying the failing draw or perturbing
        the primary sampler's stream for subsequent epochs.
        """
        clone = copy.copy(self)
        clone.rng = rng
        return clone

    def sample(self, positives: np.ndarray) -> np.ndarray:
        """Corrupt a ``(B, 3)`` positive batch into ``(B, num_negatives, 3)``."""
        positives = np.asarray(positives, dtype=np.int64)
        batch = positives.shape[0]
        negatives = np.repeat(positives[:, None, :], self.num_negatives, axis=1)

        if self.corrupt == "both":
            corrupt_object = (
                np.arange(self.num_negatives)[None, :] % 2 == 0
            ) ^ (np.arange(batch)[:, None] % 2 == 1)
        elif self.corrupt == "bernoulli":
            probs = self._object_corruption_prob[positives[:, 1]]
            corrupt_object = (
                self.rng.random((batch, self.num_negatives)) < probs[:, None]
            )
        elif self.corrupt == "object":
            corrupt_object = np.ones((batch, self.num_negatives), dtype=bool)
        else:
            corrupt_object = np.zeros((batch, self.num_negatives), dtype=bool)

        replacements = self.rng.integers(
            0, self.triples.num_entities, size=(batch, self.num_negatives)
        )
        negatives[:, :, 2] = np.where(
            corrupt_object, replacements, negatives[:, :, 2]
        )
        negatives[:, :, 0] = np.where(
            corrupt_object, negatives[:, :, 0], replacements
        )

        if self.filter_true:
            self._resample_positives(negatives, corrupt_object)
        return negatives

    def _resample_positives(
        self, negatives: np.ndarray, corrupt_object: np.ndarray
    ) -> None:
        """Replace corruptions that are true triples, bounded rounds.

        The first round probes every slot; afterwards only the slots
        just resampled can still collide (untouched rows keep their
        verified non-hit), so each later round probes that shrinking
        active set instead of re-encoding the whole batch.  Hit slots
        are visited in the same ascending order either way, so the
        number and order of RNG draws — and therefore the sampled
        negatives — are identical to the full-sweep loop this replaces.
        """
        flat = negatives.reshape(-1, 3)
        flat_mask = corrupt_object.reshape(-1)
        active: np.ndarray | None = None
        for _ in range(self.max_resample_rounds):
            hits = self.triples.contains(flat if active is None else flat[active])
            if not hits.any():
                return
            idx = np.flatnonzero(hits) if active is None else active[hits]
            fresh = self.rng.integers(0, self.triples.num_entities, size=idx.size)
            obj_side = flat_mask[idx]
            flat[idx[obj_side], 2] = fresh[obj_side]
            flat[idx[~obj_side], 0] = fresh[~obj_side]
            active = idx
        # After the bounded rounds a handful of accidental positives may
        # survive; standard libraries accept this residue too.
