"""Row-sparse gradient machinery: SparseGrad, tape emission, lazy optimizers.

The fast path's whole value proposition is *bitwise* equality with the
dense path it replaces, so almost every assertion here is
``np.array_equal`` (exact), not ``allclose``.  The lazy-optimizer tests
drive a quadratic loss through ``gather_rows`` so the gradient depends on
the current parameter values — which is exactly what forces the
forward-pass catch-up hook to fire (a stale row would produce a stale
gradient, not just a stale parameter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import SGD, Adagrad, Adam, SparseGrad, Tensor
from repro.resilience.guards import _optimizer_state, _restore_optimizer

# ----------------------------------------------------------------------
# SparseGrad container
# ----------------------------------------------------------------------


class TestSparseGrad:
    def test_from_indices_dedups_in_occurrence_order(self):
        indices = np.array([3, 1, 3, 0, 1, 3], dtype=np.int64)
        rng = np.random.default_rng(0)
        values = rng.standard_normal((6, 4))
        sparse = SparseGrad.from_indices(indices, values, (5, 4))

        np.testing.assert_array_equal(sparse.rows, [0, 1, 3])
        dense = np.zeros((5, 4))
        np.add.at(dense, indices, values)
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    def test_from_indices_matches_dense_scatter_bitwise(self):
        # Many duplicates of values that do NOT sum associatively: the
        # segment-sum must add them in the same order np.add.at would.
        rng = np.random.default_rng(7)
        indices = rng.integers(0, 8, size=200).astype(np.int64)
        values = rng.standard_normal((200, 3)) * 10.0 ** rng.integers(
            -8, 8, size=(200, 1)
        )
        sparse = SparseGrad.from_indices(indices, values, (8, 3))
        dense = np.zeros((8, 3))
        np.add.at(dense, indices, values)
        assert np.array_equal(sparse.to_dense(), dense)

    def test_add_into_dense_touches_only_present_rows(self):
        sparse = SparseGrad.from_indices(
            np.array([1, 4]), np.array([[1.0], [2.0]]), (6, 1)
        )
        dense = np.full((6, 1), 0.5)
        sparse.add_into_dense(dense)
        expected = np.full((6, 1), 0.5)
        expected[1] += 1.0
        expected[4] += 2.0
        np.testing.assert_array_equal(dense, expected)

    def test_merged_with_adds_self_then_other(self):
        a = SparseGrad.from_indices(np.array([0, 2]), np.array([[1.0], [2.0]]), (4, 1))
        b = SparseGrad.from_indices(np.array([2, 3]), np.array([[4.0], [8.0]]), (4, 1))
        merged = a.merged_with(b)
        np.testing.assert_array_equal(merged.rows, [0, 2, 3])
        np.testing.assert_array_equal(merged.to_dense(), a.to_dense() + b.to_dense())

    def test_merged_with_rejects_shape_mismatch(self):
        a = SparseGrad.from_indices(np.array([0]), np.array([[1.0]]), (4, 1))
        b = SparseGrad.from_indices(np.array([0]), np.array([[1.0]]), (5, 1))
        with pytest.raises(ValueError, match="shape"):
            a.merged_with(b)

    def test_norm_squared_matches_dense(self):
        rng = np.random.default_rng(3)
        sparse = SparseGrad.from_indices(
            rng.integers(0, 10, size=30).astype(np.int64),
            rng.standard_normal((30, 5)),
            (10, 5),
        )
        # Not bit-pinned (the dense sum groups the zero rows differently
        # under pairwise summation) — it only feeds guard thresholds.
        assert sparse.norm_squared() == pytest.approx(
            float(np.sum(np.square(sparse.to_dense()))), rel=1e-12
        )

    def test_nnz_rows_and_repr(self):
        sparse = SparseGrad.from_indices(
            np.array([5, 5, 2]), np.ones((3, 2)), (9, 2)
        )
        assert sparse.nnz_rows == 2
        assert repr(sparse) == "SparseGrad(rows=2/9, shape=(9, 2))"


# ----------------------------------------------------------------------
# Tape emission and accumulation
# ----------------------------------------------------------------------


class TestTensorSparseAccumulation:
    def test_gather_rows_is_dense_by_default(self):
        param = Tensor(np.ones((4, 2)), requires_grad=True)
        param.gather_rows(np.array([1, 1, 3])).sum().backward()
        assert isinstance(param.grad, np.ndarray)

    def test_gather_rows_emits_sparse_when_flagged(self):
        param = Tensor(np.ones((4, 2)), requires_grad=True)
        param.sparse_grad = True
        param.gather_rows(np.array([1, 1, 3])).sum().backward()
        assert isinstance(param.grad, SparseGrad)
        expected = np.zeros((4, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_array_equal(param.grad.to_dense(), expected)

    def test_getitem_routes_int_array_through_sparse(self):
        param = Tensor(np.ones(6), requires_grad=True)
        param.sparse_grad = True
        param[np.array([0, 5, 5])].sum().backward()
        assert isinstance(param.grad, SparseGrad)
        np.testing.assert_array_equal(param.grad.rows, [0, 5])

    def test_two_gathers_merge_sparsely(self):
        param = Tensor(np.ones((5, 2)), requires_grad=True)
        param.sparse_grad = True
        a = param.gather_rows(np.array([0, 1]))
        b = param.gather_rows(np.array([1, 4]))
        (a.sum() + b.sum()).backward()
        assert isinstance(param.grad, SparseGrad)
        np.testing.assert_array_equal(param.grad.rows, [0, 1, 4])
        expected = np.zeros((5, 2))
        expected[[0, 4]] = 1.0
        expected[1] = 2.0
        np.testing.assert_array_equal(param.grad.to_dense(), expected)

    def test_mixed_accumulation_densifies(self):
        # The same parameter used through a lookup AND as a plain dense
        # operand: the sparse contribution must densify and both must land.
        param = Tensor(np.ones((4, 2)), requires_grad=True)
        param.sparse_grad = True
        gathered = param.gather_rows(np.array([1]))
        loss = gathered.sum() + (param * 2.0).sum()
        loss.backward()
        assert isinstance(param.grad, np.ndarray)
        expected = np.full((4, 2), 2.0)
        expected[1] += 1.0
        np.testing.assert_array_equal(param.grad, expected)


# ----------------------------------------------------------------------
# Lazy optimizer catch-up (SGD momentum, Adam)
# ----------------------------------------------------------------------

_N, _DIM = 12, 3
#: Scripted batches: repeats, gaps of different lengths, a never-again row
#: (3 after batch 1), and rows first touched late (11, 4).
_BATCHES = [[0, 1], [2, 2, 3], [0, 5], [7], [1, 2], [0, 7, 11], [4], [4, 5]]


def _init_param() -> np.ndarray:
    return np.random.default_rng(42).standard_normal((_N, _DIM))


def _run(
    make_opt,
    sparse: bool,
    batches=_BATCHES,
    flush_every: int | None = None,
    final_flush: bool = True,
) -> np.ndarray:
    """Train a single embedding table on a quadratic loss; return its data."""
    param = Tensor(_init_param(), requires_grad=True)
    param.sparse_grad = sparse
    optimizer = make_opt([param])
    for step, batch in enumerate(batches):
        optimizer.zero_grad()
        rows = param.gather_rows(np.asarray(batch, dtype=np.int64))
        ((rows * rows).sum() * 0.5).backward()
        optimizer.step()
        if flush_every is not None and (step + 1) % flush_every == 0:
            optimizer.flush()
    if final_flush:
        optimizer.flush()
    return param.data


_OPTIMIZERS = {
    "sgd": lambda params: SGD(params, lr=0.1),
    "sgd-momentum": lambda params: SGD(params, lr=0.1, momentum=0.9),
    "adagrad": lambda params: Adagrad(params, lr=0.1),
    "adam": lambda params: Adam(params, lr=0.05),
    "adam-wd": lambda params: Adam(params, lr=0.05, weight_decay=0.02),
}


class TestLazyCatchUp:
    @pytest.mark.parametrize("name", sorted(_OPTIMIZERS))
    def test_sparse_matches_dense_bitwise(self, name):
        make_opt = _OPTIMIZERS[name]
        dense = _run(make_opt, sparse=False)
        sparse = _run(make_opt, sparse=True)
        assert np.array_equal(dense, sparse)

    @pytest.mark.parametrize("name", ["sgd-momentum", "adam", "adam-wd"])
    @pytest.mark.parametrize("flush_every", [1, 3])
    def test_intermediate_flushes_do_not_change_the_result(self, name, flush_every):
        make_opt = _OPTIMIZERS[name]
        baseline = _run(make_opt, sparse=True)
        flushed = _run(make_opt, sparse=True, flush_every=flush_every)
        assert np.array_equal(baseline, flushed)

    def test_flush_is_idempotent(self):
        param = Tensor(_init_param(), requires_grad=True)
        param.sparse_grad = True
        optimizer = Adam([param], lr=0.05)
        for batch in _BATCHES:
            optimizer.zero_grad()
            rows = param.gather_rows(np.asarray(batch, dtype=np.int64))
            (rows * rows).sum().backward()
            optimizer.step()
        optimizer.flush()
        settled = param.data.copy()
        optimizer.flush()
        assert np.array_equal(param.data, settled)

    def test_unflushed_lazy_rows_are_stale_until_flush(self):
        # Row 3 is touched once (step 1) then never again: without a
        # flush the sparse table must differ from the dense one there,
        # and flush() must close exactly that gap.
        make_opt = _OPTIMIZERS["adam"]
        dense = _run(make_opt, sparse=False)

        param = Tensor(_init_param(), requires_grad=True)
        param.sparse_grad = True
        optimizer = make_opt([param])
        for batch in _BATCHES:
            optimizer.zero_grad()
            rows = param.gather_rows(np.asarray(batch, dtype=np.int64))
            ((rows * rows).sum() * 0.5).backward()
            optimizer.step()
        assert not np.array_equal(param.data[3], dense[3])
        optimizer.flush()
        assert np.array_equal(param.data, dense)

    def test_dense_gradient_on_lazily_tracked_parameter(self):
        # After the lazy path engages, feed a dense gradient: the
        # optimizer must settle every stale row before applying it.  The
        # dense step's loss is linear in the parameter so its gradient
        # does not depend on the (deliberately unflushed) forward read —
        # a value-dependent dense read would require a flush first, which
        # is exactly the contract RPR008 and the training loop enforce.
        weights = np.random.default_rng(9).standard_normal((_N, _DIM))

        def run(sparse: bool) -> np.ndarray:
            param = Tensor(_init_param(), requires_grad=True)
            param.sparse_grad = sparse
            optimizer = Adam([param], lr=0.05)
            for step, batch in enumerate(_BATCHES):
                optimizer.zero_grad()
                if step == 4:
                    (param * weights).sum().backward()  # dense step
                else:
                    rows = param.gather_rows(np.asarray(batch, dtype=np.int64))
                    (rows * rows).sum().backward()
                optimizer.step()
            optimizer.flush()
            return param.data

        assert np.array_equal(run(False), run(True))


# ----------------------------------------------------------------------
# Guard snapshot/restore across lazy state
# ----------------------------------------------------------------------


class TestGuardStateRoundTrip:
    @pytest.mark.parametrize("name", ["sgd-momentum", "adam-wd"])
    def test_restore_mid_lazy_replays_identically(self, name):
        make_opt = _OPTIMIZERS[name]
        param = Tensor(_init_param(), requires_grad=True)
        param.sparse_grad = True
        optimizer = make_opt([param])

        def advance(batches):
            for batch in batches:
                optimizer.zero_grad()
                rows = param.gather_rows(np.asarray(batch, dtype=np.int64))
                ((rows * rows).sum() * 0.5).backward()
                optimizer.step()

        advance(_BATCHES[:3])  # lazy path engaged, rows stale
        saved_param = param.data.copy()
        saved_state = _optimizer_state(optimizer)

        advance(_BATCHES[3:])
        optimizer.flush()
        first = param.data.copy()

        # Restore and replay — twice, proving the snapshot stays pristine.
        for _ in range(2):
            param.data[...] = saved_param
            param.zero_grad()
            _restore_optimizer(optimizer, saved_state)
            advance(_BATCHES[3:])
            optimizer.flush()
            assert np.array_equal(param.data, first)

    def test_snapshot_captures_lazy_bookkeeping(self):
        param = Tensor(_init_param(), requires_grad=True)
        param.sparse_grad = True
        optimizer = Adam([param], lr=0.05)
        optimizer.zero_grad()
        rows = param.gather_rows(np.array([0, 1], dtype=np.int64))
        (rows * rows).sum().backward()
        optimizer.step()

        state = _optimizer_state(optimizer)
        assert state["_pt"] == [1]
        assert isinstance(state["_last"][0], np.ndarray)
        assert state["_bias1"] == optimizer._bias1
        assert state["_bias1"][0] is not optimizer._bias1[0]
