"""Unit tests for the autodiff tensor: forward values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, is_grad_enabled, no_grad, stack

from ..helpers import check_gradients

RNG = np.random.default_rng(42)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_tensor_unwraps(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        np.testing.assert_array_equal(outer.data, inner.data)

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_detach_cuts_tape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad


class TestArithmeticForward:
    def test_add(self):
        np.testing.assert_array_equal(
            (Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data, [4.0, 6.0]
        )

    def test_add_scalar_broadcast(self):
        np.testing.assert_array_equal((Tensor([1.0, 2.0]) + 1).data, [2.0, 3.0])

    def test_radd(self):
        np.testing.assert_array_equal((1 + Tensor([1.0])).data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_array_equal((Tensor([3.0]) - 1).data, [2.0])
        np.testing.assert_array_equal((5 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_array_equal((Tensor([2.0]) * 3).data, [6.0])
        np.testing.assert_array_equal((Tensor([6.0]) / 3).data, [2.0])
        np.testing.assert_array_equal((6 / Tensor([3.0])).data, [2.0])

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_array_equal((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)


class TestGradients:
    def test_add_broadcast_row(self):
        check_gradients(lambda x: x + np.ones((1, 3)), RNG.normal(size=(2, 3)))

    def test_mul_broadcast_scalar(self):
        check_gradients(lambda x: x * 3.5, RNG.normal(size=(4,)))

    def test_mul_elementwise(self):
        other = RNG.normal(size=(3, 2))
        check_gradients(lambda x: x * other, RNG.normal(size=(3, 2)))

    def test_div(self):
        denom = RNG.normal(size=(3,)) + 5.0
        check_gradients(lambda x: x / denom, RNG.normal(size=(3,)))

    def test_div_denominator_grad(self):
        numer = RNG.normal(size=(3,))
        check_gradients(lambda x: numer / x, RNG.normal(size=(3,)) + 4.0)

    def test_pow(self):
        check_gradients(lambda x: x**3, RNG.normal(size=(5,)) + 2.0)

    def test_matmul_left(self):
        w = RNG.normal(size=(3, 4))
        check_gradients(lambda x: x @ w, RNG.normal(size=(2, 3)))

    def test_matmul_right(self):
        a = RNG.normal(size=(2, 3))
        check_gradients(lambda x: Tensor(a) @ x, RNG.normal(size=(3, 4)))

    def test_batched_matmul(self):
        w = RNG.normal(size=(4, 3, 5))
        check_gradients(lambda x: x @ w, RNG.normal(size=(4, 2, 3)))

    def test_sum_axis(self):
        check_gradients(lambda x: x.sum(axis=1), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_gradients(
            lambda x: x * x.sum(axis=1, keepdims=True), RNG.normal(size=(3, 4))
        )

    def test_mean(self):
        check_gradients(lambda x: x.mean(axis=0), RNG.normal(size=(3, 4)))

    def test_mean_tuple_axis(self):
        check_gradients(
            lambda x: x.mean(axis=(0, 2), keepdims=True), RNG.normal(size=(2, 3, 4))
        )

    def test_max(self):
        # Avoid exact ties for a well-defined numeric gradient.
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        check_gradients(lambda x: x.max(axis=1), data)

    def test_reshape(self):
        check_gradients(lambda x: (x.reshape(6) ** 2), RNG.normal(size=(2, 3)))

    def test_transpose(self):
        w = RNG.normal(size=(2, 3))
        check_gradients(lambda x: x.T * w.T, RNG.normal(size=(2, 3)))

    def test_getitem_slice(self):
        check_gradients(lambda x: x[1:, :2] * 2.0, RNG.normal(size=(3, 4)))

    def test_getitem_fancy_accumulates(self):
        # A repeated index must accumulate gradient.
        x = Tensor(np.ones(3), requires_grad=True)
        y = x[np.asarray([0, 0, 1])]
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 1.0, 0.0])

    def test_gather_rows(self):
        idx = np.asarray([0, 2, 2, 1])
        check_gradients(lambda x: x.gather_rows(idx) * 1.5, RNG.normal(size=(3, 4)))

    def test_exp_log(self):
        check_gradients(lambda x: x.exp(), RNG.normal(size=(4,)))
        check_gradients(lambda x: x.log(), RNG.normal(size=(4,)) + 3.0)

    def test_sqrt_abs(self):
        check_gradients(lambda x: x.sqrt(), RNG.normal(size=(4,)) ** 2 + 1.0)
        check_gradients(lambda x: x.abs(), RNG.normal(size=(4,)) + 2.0)

    def test_relu(self):
        data = RNG.normal(size=(10,))
        data[np.abs(data) < 1e-3] = 0.5  # keep away from the kink
        check_gradients(lambda x: x.relu(), data)

    def test_sigmoid_tanh_softplus(self):
        data = RNG.normal(size=(6,))
        check_gradients(lambda x: x.sigmoid(), data)
        check_gradients(lambda x: x.tanh(), data)
        check_gradients(lambda x: x.softplus(), data)

    def test_cos_sin(self):
        data = RNG.normal(size=(6,))
        check_gradients(lambda x: x.cos(), data)
        check_gradients(lambda x: x.sin(), data)

    def test_sin_cos_pythagorean(self):
        x = Tensor(RNG.normal(size=(5,)))
        identity = x.sin() ** 2 + x.cos() ** 2
        np.testing.assert_allclose(identity.data, 1.0)

    def test_clamp_min(self):
        data = np.asarray([-2.0, -0.5, 0.5, 2.0])
        check_gradients(lambda x: x.clamp_min(0.0), data)

    def test_l2_norm(self):
        check_gradients(lambda x: x.l2_norm(axis=1), RNG.normal(size=(3, 4)) + 1.0)

    def test_concatenate(self):
        other = RNG.normal(size=(2, 3))
        check_gradients(
            lambda x: concatenate([x, Tensor(other)], axis=0) * 2.0,
            RNG.normal(size=(2, 3)),
        )

    def test_stack(self):
        other = RNG.normal(size=(3,))
        check_gradients(
            lambda x: stack([x, Tensor(other)], axis=0).sum(axis=0),
            RNG.normal(size=(3,)),
        )

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).backward()  # d(6x²)/dx = 12x
        np.testing.assert_allclose(x.grad, [12.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_context_disables_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._backward is None

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_new_tensors_ignore_requires_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestBackwardSeed:
    def test_custom_upstream_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3
        y.backward(np.asarray([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_scalar_default_seed(self):
        x = Tensor(4.0, requires_grad=True)
        (x * x).backward()
        np.testing.assert_allclose(x.grad, 8.0)
