"""Exporter golden files and snapshot writing.

The snapshot is built through the public ``record_span``/metric APIs with
exact values (no clocks), so the renders are fully deterministic and the
golden files pin the exact wire formats.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    EXPORTER_FORMATS,
    MetricsRegistry,
    render_json,
    render_prometheus,
    render_table,
    write_snapshot,
)

GOLDEN = Path(__file__).parent / "golden"


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("discover.facts_count").inc(3)
    reg.counter("rank.rows_scored_count").inc(112)
    reg.gauge("train.loss").set(0.5)
    hist = reg.histogram("train.epoch_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(2.0)
    reg.record_span(("discover",), 2.0, 1.5)
    reg.record_span(("discover", "rank"), 1.0, 0.75, count=2)
    reg.record_span(("discover", "rank", "rank.score"), 0.25, 0.125, count=2)
    return reg


class TestGoldenFiles:
    def test_json_matches_golden(self):
        got = render_json(build_registry().snapshot())
        assert got == (GOLDEN / "snapshot.json").read_text(encoding="utf-8")

    def test_prometheus_matches_golden(self):
        got = render_prometheus(build_registry().snapshot())
        assert got == (GOLDEN / "snapshot.prom").read_text(encoding="utf-8")

    def test_json_round_trips_to_identical_render(self):
        text = render_json(build_registry().snapshot())
        assert render_json(json.loads(text)) == text


class TestPrometheusFormat:
    def test_metric_names_are_sanitized_and_prefixed(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with@chars").inc()
        text = render_prometheus(reg.snapshot())
        assert "repro_weird_name_with_chars 1" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(build_registry().snapshot())
        assert 'repro_train_epoch_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_train_epoch_seconds_count 2" in text

    def test_span_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.record_span(('evil"path',), 1.0)
        text = render_prometheus(reg.snapshot())
        assert 'path="evil\\"path"' in text


class TestTable:
    def test_table_sections_present(self):
        text = render_table(build_registry().snapshot())
        assert "metrics" in text
        assert "histograms" in text
        assert "spans" in text
        assert "discover.facts_count" in text
        # Child spans are indented under their parent.
        assert "\n      rank.score" in text

    def test_empty_snapshot_renders_placeholder(self):
        assert "(empty snapshot)" in render_table(MetricsRegistry().snapshot())


class TestWriteSnapshot:
    def test_writes_registry_as_json(self, tmp_path):
        path = tmp_path / "m.json"
        write_snapshot(build_registry(), str(path))
        assert json.loads(path.read_text(encoding="utf-8"))["counters"][
            "discover.facts_count"
        ] == 3

    def test_accepts_plain_snapshot_and_other_formats(self, tmp_path):
        snapshot = build_registry().snapshot()
        path = tmp_path / "m.prom"
        write_snapshot(snapshot, str(path), fmt="prometheus")
        assert path.read_text(encoding="utf-8").startswith("# TYPE ")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown exporter format"):
            write_snapshot(build_registry(), str(tmp_path / "m"), fmt="xml")

    def test_format_registry_is_complete(self):
        assert set(EXPORTER_FORMATS) == {"json", "prometheus", "table"}
