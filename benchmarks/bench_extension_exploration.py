"""Extension (§6 future direction 1) — exploration-aware sampling.

The paper's closing criticism: every evaluated strategy exploits dense
regions and ignores the long tail "where the need for discovering new
facts is higher".  This benchmark runs the extension strategies
(tempered/inverse frequency, PageRank, an ε-greedy mixture) against the
paper's EF/UR and measures the exploration/exploitation trade-off:
fact MRR vs long-tail coverage.
"""

from __future__ import annotations

from common import MAX_CANDIDATES_DEFAULT, save_and_print

from repro.discovery import (
    EntityFrequency,
    MixtureStrategy,
    UniformRandom,
    create_strategy,
    discover_facts,
    long_tail_coverage,
)
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset

_TOP_N = 50


def test_exploration_tradeoff(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)

    strategies = {
        "entity_frequency": create_strategy("entity_frequency"),
        "uniform_random": create_strategy("uniform_random"),
        "tempered_frequency(0.5)": create_strategy("tempered_frequency"),
        "inverse_frequency": create_strategy("inverse_frequency"),
        "pagerank": create_strategy("pagerank"),
        "mixture(EF 80% + UR 20%)": MixtureStrategy(
            [EntityFrequency(), UniformRandom()], [0.8, 0.2]
        ),
    }

    def run(strategy):
        return discover_facts(
            model, graph, strategy=strategy, top_n=_TOP_N,
            max_candidates=MAX_CANDIDATES_DEFAULT, seed=0, stats=stats,
        )

    benchmark.pedantic(
        lambda: run(create_strategy("inverse_frequency")), rounds=1, iterations=1
    )

    rows = []
    measured = {}
    for label, strategy in strategies.items():
        result = run(strategy)
        coverage = long_tail_coverage(result.facts, stats.degree, quantile=0.5)
        measured[label] = (result.mrr(), coverage, result.num_facts)
        rows.append(
            {
                "strategy": label,
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "long_tail_coverage": round(coverage, 4),
            }
        )
    rows.sort(key=lambda r: r["long_tail_coverage"], reverse=True)
    save_and_print(
        "extension_exploration",
        format_table(
            rows,
            title="§6 extension — exploration vs exploitation "
            "(fb15k237-like, DistMult)",
        ),
    )

    # Exploration reaches the long tail that exploitation misses...
    assert (
        measured["inverse_frequency"][1] > measured["entity_frequency"][1]
    )
    # ...at a quality cost (the dilemma is real, not free lunch).
    assert measured["entity_frequency"][0] > measured["inverse_frequency"][0]
    # The ε-greedy mixture lands between its components on coverage.
    ef_cov = measured["entity_frequency"][1]
    ur_cov = measured["uniform_random"][1]
    mix_cov = measured["mixture(EF 80% + UR 20%)"][1]
    low, high = sorted((ef_cov, ur_cov))
    assert low - 0.05 <= mix_cov <= high + 0.05
