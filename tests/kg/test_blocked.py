"""Blocked CSR kernels: bit-identity to the references, block planning."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.kg import (
    DEFAULT_MEMORY_BUDGET,
    local_triangles_blocked,
    plan_node_blocks,
    square_clustering_blocked,
    square_clustering_reference,
    undirected_adjacency,
)
from repro.kg.blocked import iter_two_hop_blocks


def random_adjacency(n: int, avg_degree: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2) + 1
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    adj = sp.csr_matrix(
        (np.ones(2 * rows.size, dtype=np.int64),
         (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n),
    )
    adj.data[:] = 1
    return adj


GRAPHS = [(1, 0.0, 0), (5, 1.0, 1), (30, 3.0, 2), (64, 6.0, 3), (257, 4.0, 4)]
BUDGETS = [1, 1 << 10, 1 << 20, DEFAULT_MEMORY_BUDGET]


class TestBlockPlanning:
    @pytest.mark.parametrize("n, deg, seed", GRAPHS)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_bounds_partition_the_node_range(self, n, deg, seed, budget):
        adj = random_adjacency(n, deg, seed)
        bounds = plan_node_blocks(adj, budget)
        assert bounds[0] == 0 and bounds[-1] == n
        assert (np.diff(bounds) > 0).all()

    def test_tiny_budget_gives_single_row_blocks(self):
        adj = random_adjacency(40, 4.0, 7)
        bounds = plan_node_blocks(adj, 1)
        assert len(bounds) == adj.shape[0] + 1

    def test_huge_budget_gives_one_block(self):
        adj = random_adjacency(40, 4.0, 7)
        bounds = plan_node_blocks(adj, 1 << 40)
        assert list(bounds) == [0, adj.shape[0]]

    def test_empty_graph(self):
        adj = sp.csr_matrix((0, 0), dtype=np.int64)
        assert list(plan_node_blocks(adj)) == [0]
        assert square_clustering_blocked(adj).shape == (0,)

    def test_slabs_tile_the_product(self):
        adj = random_adjacency(50, 4.0, 9)
        full = (adj @ adj).toarray()
        for lo, hi, a_blk, t_blk in iter_two_hop_blocks(adj, 1 << 10):
            np.testing.assert_array_equal(t_blk.toarray(), full[lo:hi])


class TestBitIdentity:
    @pytest.mark.parametrize("n, deg, seed", GRAPHS)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_squares_bitwise_equal_reference(self, n, deg, seed, budget):
        adj = random_adjacency(n, deg, seed)
        blocked = square_clustering_blocked(adj, budget)
        reference = square_clustering_reference(adj)
        assert blocked.dtype == reference.dtype
        np.testing.assert_array_equal(blocked, reference)

    @pytest.mark.parametrize("n, deg, seed", GRAPHS)
    def test_squares_bitwise_equal_networkx(self, n, deg, seed):
        adj = random_adjacency(n, deg, seed)
        blocked = square_clustering_blocked(adj)
        graph = nx.from_scipy_sparse_array(adj)
        expected = np.zeros(n)
        for node, value in nx.square_clustering(graph).items():
            expected[node] = value
        np.testing.assert_array_equal(blocked, expected)

    @pytest.mark.parametrize("n, deg, seed", GRAPHS)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_triangles_bitwise_equal_networkx(self, n, deg, seed, budget):
        adj = random_adjacency(n, deg, seed)
        blocked = local_triangles_blocked(adj, budget)
        graph = nx.from_scipy_sparse_array(adj)
        expected = np.zeros(n, dtype=np.int64)
        for node, value in nx.triangles(graph).items():
            expected[node] = value
        np.testing.assert_array_equal(blocked, expected)

    def test_budget_never_changes_values(self):
        from repro.kg import load_dataset

        adj = undirected_adjacency(load_dataset("wn18rr-like").train)
        baseline = square_clustering_blocked(adj, DEFAULT_MEMORY_BUDGET)
        for budget in (1, 4096, 1 << 16):
            np.testing.assert_array_equal(
                square_clustering_blocked(adj, budget), baseline
            )
