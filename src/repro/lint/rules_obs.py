"""RPR009 — observability hygiene.

Two checks share this id:

* **raw clock reads** — direct ``time.perf_counter()`` /
  ``process_time()`` / ``monotonic()`` / ``thread_time()`` calls (and
  their ``_ns`` variants) inside ``repro.kge``, ``repro.discovery`` and
  ``repro.experiments``.  Ad-hoc timing drifts out of the unified span
  tree and double-counts phases; those packages must time through
  :func:`repro.obs.span` (or :class:`repro.obs.Stopwatch` for budget
  loops).  The :mod:`repro.obs` package itself is the sanctioned clock
  owner and is out of scope.
* **dict-shaped telemetry off the protocol** — a class in the scoped
  packages (plus ``repro.resilience``) that defines ``summary()`` but
  neither derives from ``ReportableMixin``/``Reportable`` nor provides
  ``to_dict``/``to_json`` produces telemetry that cannot be exported
  uniformly; results must speak :class:`repro.obs.reporting.Reportable`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["ObservabilityRule"]

_CLOCK_SCOPES = ("repro.kge", "repro.discovery", "repro.experiments")
_REPORTABLE_SCOPES = _CLOCK_SCOPES + ("repro.resilience",)
_CLOCKS = frozenset(
    {
        "perf_counter",
        "process_time",
        "monotonic",
        "thread_time",
        "perf_counter_ns",
        "process_time_ns",
        "monotonic_ns",
        "thread_time_ns",
    }
)
_REPORTABLE_BASES = frozenset({"Reportable", "ReportableMixin"})


def _time_aliases(tree: ast.Module) -> frozenset[str]:
    """Names the module binds to the ``time`` module."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return frozenset(aliases)


def _clock_function_aliases(tree: ast.Module) -> dict[str, str]:
    """``{bound_name: clock_name}`` for ``from time import perf_counter``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCKS:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


def _in_scope(module: str, scopes: tuple[str, ...]) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in scopes
    )


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


@register_rule
class ObservabilityRule(Rule):
    rule_id = "RPR009"
    name = "observability"
    description = (
        "kge/discovery/experiments time through repro.obs spans, not raw "
        "time.* clocks; summary()-bearing result classes speak Reportable"
    )
    rationale = (
        "The paper's efficiency metric (facts/hour) is assembled from "
        "the span tree; a phase timed with a raw clock is invisible to "
        "it, and a result class outside the Reportable protocol cannot "
        "be joined into the campaign summary tables."
    )
    example = (
        "t0 = time.perf_counter()       # RPR009: invisible phase\n"
        "\n"
        "with span(\"rank.score\"):\n"
        "    ...                        # shows up in facts/hour\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _in_scope(ctx.module, _CLOCK_SCOPES):
            time_names = _time_aliases(ctx.tree)
            clock_names = _clock_function_aliases(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CLOCKS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in time_names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"raw {func.value.id}.{func.attr}() bypasses the span "
                        "tree; time this phase with repro.obs.span (or "
                        "Stopwatch for budget loops)",
                    )
                elif isinstance(func, ast.Name) and func.id in clock_names:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw {clock_names[func.id]}() (imported from time) "
                        "bypasses the span tree; time this phase with "
                        "repro.obs.span (or Stopwatch for budget loops)",
                    )

        if _in_scope(ctx.module, _REPORTABLE_SCOPES):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if "summary" not in methods:
                    continue
                reportable_base = any(
                    _base_name(base) in _REPORTABLE_BASES for base in node.bases
                )
                if reportable_base:
                    continue
                if {"to_dict", "to_json"} <= methods:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"class {node.name} defines summary() but is not "
                    "Reportable; derive from repro.obs.ReportableMixin (or "
                    "provide to_dict/to_json) so its telemetry exports "
                    "uniformly",
                )
