"""Tests for the ranking evaluation protocol, using a scripted model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kg import KnowledgeGraph
from repro.kge import RankingMetrics, compute_ranks, evaluate_ranking
from repro.kge.base import KGEModel
from repro.kge.evaluation import triple_classification


class ScriptedModel(KGEModel):
    """A fake model whose score table is set explicitly by the test."""

    def __init__(self, num_entities: int, num_relations: int, table: np.ndarray):
        super().__init__(num_entities, num_relations, dim=2, seed=0)
        # table[s, r, o] = score
        self.table = table

    def score_spo(self, s, r, o):
        return Tensor(self.table[s, r, o])

    def score_sp(self, s, r):
        return Tensor(self.table[s, r, :])

    def score_po(self, r, o):
        return Tensor(self.table[:, r, o].T)


def build_graph(train, valid=(), test=(), n=5, k=1) -> KnowledgeGraph:
    return KnowledgeGraph.from_arrays(
        name="t",
        num_entities=n,
        num_relations=k,
        train=np.asarray(train, dtype=np.int64).reshape(-1, 3),
        valid=np.asarray(list(valid), dtype=np.int64).reshape(-1, 3),
        test=np.asarray(list(test), dtype=np.int64).reshape(-1, 3),
    )


class TestComputeRanks:
    def test_top_scoring_target_has_rank_one(self):
        table = np.zeros((5, 1, 5))
        table[0, 0, :] = [0.0, 10.0, 1.0, 2.0, 3.0]
        model = ScriptedModel(5, 1, table)
        ranks = compute_ranks(model, np.asarray([[0, 0, 1]]))
        np.testing.assert_array_equal(ranks, [1.0])

    def test_worst_target_has_rank_n(self):
        table = np.zeros((5, 1, 5))
        table[0, 0, :] = [4.0, 3.0, 2.0, 1.0, 0.0]
        model = ScriptedModel(5, 1, table)
        ranks = compute_ranks(model, np.asarray([[0, 0, 4]]))
        np.testing.assert_array_equal(ranks, [5.0])

    def test_ties_use_expected_position(self):
        table = np.zeros((5, 1, 5))  # all scores equal
        model = ScriptedModel(5, 1, table)
        ranks = compute_ranks(model, np.asarray([[0, 0, 2]]))
        # 0 greater, 5 equal (incl. target): rank = 0 + (5-1)/2 + 1 = 3
        np.testing.assert_array_equal(ranks, [3.0])

    def test_filtered_removes_known_objects(self):
        table = np.zeros((5, 1, 5))
        table[0, 0, :] = [0.0, 9.0, 8.0, 1.0, 0.0]
        model = ScriptedModel(5, 1, table)
        # Object 1 outranks target 2, but (0,0,1) is a known true triple.
        graph_filter = build_graph([[0, 0, 1]])
        raw = compute_ranks(model, np.asarray([[0, 0, 2]]))
        filtered = compute_ranks(
            model, np.asarray([[0, 0, 2]]), filter_triples=graph_filter.train
        )
        np.testing.assert_array_equal(raw, [2.0])
        np.testing.assert_array_equal(filtered, [1.0])

    def test_filtered_target_itself_survives(self):
        """The target is in the filter set but must still be rankable."""
        table = np.zeros((5, 1, 5))
        table[0, 0, :] = [0.0, 5.0, 1.0, 0.0, 0.0]
        model = ScriptedModel(5, 1, table)
        graph_filter = build_graph([[0, 0, 1]])
        ranks = compute_ranks(
            model, np.asarray([[0, 0, 1]]), filter_triples=graph_filter.train
        )
        np.testing.assert_array_equal(ranks, [1.0])

    def test_subject_side(self):
        table = np.zeros((5, 1, 5))
        table[:, 0, 3] = [1.0, 9.0, 2.0, 3.0, 4.0]
        model = ScriptedModel(5, 1, table)
        ranks = compute_ranks(model, np.asarray([[1, 0, 3]]), side="subject")
        np.testing.assert_array_equal(ranks, [1.0])

    def test_invalid_side(self):
        model = ScriptedModel(5, 1, np.zeros((5, 1, 5)))
        with pytest.raises(ValueError):
            compute_ranks(model, np.asarray([[0, 0, 1]]), side="diagonal")

    def test_empty_input(self):
        model = ScriptedModel(5, 1, np.zeros((5, 1, 5)))
        assert compute_ranks(model, np.zeros((0, 3))).shape == (0,)

    def test_chunking_matches_single_batch(self):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(6, 2, 6))
        model = ScriptedModel(6, 2, table)
        triples = np.stack(
            [rng.integers(0, 6, 20), rng.integers(0, 2, 20), rng.integers(0, 6, 20)],
            axis=1,
        )
        full = compute_ranks(model, triples, chunk_size=100)
        chunked = compute_ranks(model, triples, chunk_size=3)
        np.testing.assert_array_equal(full, chunked)


class TestRankingMetrics:
    def test_from_ranks(self):
        metrics = RankingMetrics.from_ranks(np.asarray([1.0, 2.0, 10.0]))
        assert metrics.mrr == pytest.approx((1 + 0.5 + 0.1) / 3)
        assert metrics.mean_rank == pytest.approx(13 / 3)
        assert metrics.hits[1] == pytest.approx(1 / 3)
        assert metrics.hits[10] == pytest.approx(1.0)

    def test_empty_ranks(self):
        metrics = RankingMetrics.from_ranks(np.zeros(0))
        assert metrics.mrr == 0.0

    def test_custom_hits_levels(self):
        metrics = RankingMetrics.from_ranks(np.asarray([1.0, 5.0]), hits_at=(1, 5))
        assert set(metrics.hits) == {1, 5}


class TestEvaluateRanking:
    def test_unknown_split_raises(self, trained_distmult, tiny_graph):
        with pytest.raises(KeyError):
            evaluate_ranking(trained_distmult, tiny_graph, split="dev")

    def test_filtered_at_least_as_good_as_raw(self, trained_distmult, tiny_graph):
        filtered = evaluate_ranking(trained_distmult, tiny_graph, filtered=True)
        raw = evaluate_ranking(trained_distmult, tiny_graph, filtered=False)
        assert filtered.mrr >= raw.mrr - 1e-12

    def test_trained_model_beats_random_ranking(self, trained_distmult, tiny_graph):
        metrics = evaluate_ranking(trained_distmult, tiny_graph)
        random_mrr = np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1))
        assert metrics.mrr > 2 * random_mrr


class TestBothSidesEvaluation:
    def test_both_concatenates_sides(self, trained_distmult, tiny_graph):
        both = evaluate_ranking(trained_distmult, tiny_graph, side="both")
        object_only = evaluate_ranking(trained_distmult, tiny_graph, side="object")
        subject_only = evaluate_ranking(trained_distmult, tiny_graph, side="subject")
        assert both.ranks.size == object_only.ranks.size + subject_only.ranks.size
        expected = (object_only.mrr + subject_only.mrr) / 2
        assert both.mrr == pytest.approx(expected)


class TestHardNegatives:
    def test_negatives_are_false_and_type_consistent(
        self, trained_distmult, tiny_graph
    ):
        from repro.kge import generate_hard_negatives

        positives = tiny_graph.test.array
        negatives = generate_hard_negatives(tiny_graph, positives, seed=0)
        known = tiny_graph.all_triples()
        hits = known.contains(negatives)
        # The resampling loop may rarely fall through; false triples must
        # dominate overwhelmingly.
        assert hits.mean() < 0.05
        # Same subjects and relations, objects replaced.
        np.testing.assert_array_equal(negatives[:, 0], positives[:, 0])
        np.testing.assert_array_equal(negatives[:, 1], positives[:, 1])
        # Objects drawn from the relation's observed range (type
        # consistency) for the vast majority of rows.
        in_range = 0
        for (s, r, o) in negatives:
            rel_range = tiny_graph.train.by_relation(int(r))[:, 2]
            in_range += int(o in set(rel_range.tolist()))
        assert in_range / len(negatives) > 0.9

    def test_hard_classification_not_easier(self, trained_distmult, tiny_graph):
        from repro.kge import triple_classification

        easy = triple_classification(trained_distmult, tiny_graph, seed=0)
        hard = triple_classification(
            trained_distmult, tiny_graph, seed=0, hard_negatives=True
        )
        # Type-consistent negatives are (weakly) harder to reject.
        assert hard["test_accuracy"] <= easy["test_accuracy"] + 0.1


class TestTripleClassification:
    def test_accuracy_above_chance(self, trained_distmult, tiny_graph):
        result = triple_classification(trained_distmult, tiny_graph, seed=0)
        assert result["test_accuracy"] > 0.55
        assert 0.0 <= result["valid_accuracy"] <= 1.0

    def test_returns_threshold(self, trained_distmult, tiny_graph):
        result = triple_classification(trained_distmult, tiny_graph, seed=0)
        assert np.isfinite(result["threshold"])
