"""CLI observability: --metrics-out snapshots and the `repro obs` viewer."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.kg import save_dataset_dir
from repro.kge import create_model, save_model


@pytest.fixture()
def checkpoint(tmp_path, tiny_graph):
    model = create_model(
        "distmult",
        num_entities=tiny_graph.num_entities,
        num_relations=tiny_graph.num_relations,
        dim=8,
        seed=0,
    )
    path = tmp_path / "model.npz"
    save_model(model, path)
    return path


@pytest.fixture()
def dataset_dir(tmp_path, tiny_graph):
    directory = tmp_path / "tinyds"
    save_dataset_dir(tiny_graph, directory)
    return directory


class TestMetricsOut:
    def test_discover_writes_snapshot_with_span_timings(
        self, checkpoint, dataset_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "m.json"
        code = main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64", "--limit", "2",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        assert "metrics snapshot written to" in capsys.readouterr().out
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        discover = snapshot["spans"]["discover"]
        rank = discover["children"]["rank"]
        # The headline phases are all present and timings reconcile:
        # children never account for more wall time than their parent.
        assert {"discover.weights", "discover.generate", "rank"} <= set(
            discover["children"]
        )
        assert {"rank.filter", "rank.score"} <= set(rank["children"])
        for parent in (discover, rank):
            child_wall = sum(
                child["wall_seconds"] for child in parent["children"].values()
            )
            assert child_wall <= parent["wall_seconds"]
        assert snapshot["counters"]["discover.candidates_count"] > 0

    def test_train_writes_snapshot_with_train_spans(
        self, dataset_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "m.json"
        code = main(
            [
                "train", str(dataset_dir), "distmult",
                "--dim", "8", "--epochs", "2",
                "--output", str(tmp_path / "ckpt.npz"),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        train = snapshot["spans"]["train"]
        assert "train.epoch" in train["children"]
        assert snapshot["counters"]["train.epochs_count"] == 2
        capsys.readouterr()

    def test_without_flag_no_snapshot_and_obs_stays_disabled(
        self, checkpoint, dataset_dir, tmp_path, capsys
    ):
        from repro.obs import get_registry

        code = main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64", "--limit", "2",
            ]
        )
        assert code == 0
        assert not get_registry().enabled
        assert not list(tmp_path.glob("*.json"))
        capsys.readouterr()


class TestObsCommand:
    @pytest.fixture()
    def snapshot_file(self, checkpoint, dataset_dir, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64", "--limit", "2",
                "--metrics-out", str(metrics),
            ]
        )
        capsys.readouterr()
        return metrics

    def test_table_render_default(self, snapshot_file, capsys):
        assert main(["obs", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "discover" in out

    def test_prometheus_render(self, snapshot_file, capsys):
        assert main(["obs", str(snapshot_file), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'repro_span_wall_seconds_total{path="discover"}' in out

    def test_json_render_to_file(self, snapshot_file, tmp_path, capsys):
        out_path = tmp_path / "render.json"
        assert main(
            ["obs", str(snapshot_file), "--format", "json", "-o", str(out_path)]
        ) == 0
        assert "spans" in json.loads(out_path.read_text(encoding="utf-8"))
        capsys.readouterr()

    def test_missing_snapshot_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", str(tmp_path / "nope.json")])

    def test_invalid_json_exits(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["obs", str(bad)])
