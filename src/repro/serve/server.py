"""The stdlib-only threaded HTTP server for discovery-as-a-service.

Two layers:

- :class:`ServeApp` — transport-agnostic request handling.  It owns the
  single-flight coalescer, mints per-request deadlines, dispatches to
  the shared :class:`~repro.api.Session`, and renders every outcome
  (including failures) as wire bytes.  The load benchmark drives this
  layer directly, so benchmarked throughput includes the full JSON
  encode/decode and coalescing cost of a real request minus the socket.
- :class:`DiscoveryServer` — an :class:`http.server.HTTPServer` whose
  connections are handled on a **bounded** worker pool (unbounded
  thread-per-connection is exactly the overload failure mode a serving
  layer must not have).  ``close()`` drains gracefully: stop accepting,
  wait out in-flight requests up to ``drain_seconds``, then tear down.

Endpoints: ``GET /healthz``, ``GET /metrics`` (Prometheus text from the
live :mod:`repro.obs` registry), ``GET /v1/models``, and JSON ``POST``
``/v1/rank`` / ``/v1/discover`` / ``/v1/classify``.  Error responses are
the one :class:`~repro.api.types.ApiError` envelope; deadline expiry
maps to a typed 504.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer

from ..api.session import Session
from ..api.types import (
    ApiError,
    BadRequestError,
    NotFoundError,
    encode_payload,
    request_type_for,
)
from ..obs import enable_observability, get_registry, render_prometheus
from ..obs.spans import Stopwatch
from ..resilience import Deadline
from .coalesce import SingleFlight

__all__ = ["ServeApp", "DiscoveryServer", "start_server"]

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4"

# Drain polling slice; every wait in this module is bounded (RPR018).
_WAIT_SLICE_SECONDS = 0.05


class ServeApp:
    """Routes one decoded HTTP exchange through the shared session."""

    def __init__(
        self,
        session: Session,
        *,
        deadline_seconds: float | None = None,
    ) -> None:
        self._session = session
        self._flight = SingleFlight()
        self._deadline_seconds = deadline_seconds

    @property
    def session(self) -> Session:
        return self._session

    def coalescing_counters(self) -> dict[str, int]:
        return self._flight.counters()

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        """One request in, ``(status, content_type, payload)`` out.

        Never raises: typed :class:`ApiError` failures serialise to their
        envelope, anything else becomes the generic 500 ``internal``
        envelope so the wire never leaks stack traces.
        """
        metrics = get_registry()
        metrics.counter("serve.requests_count").inc()
        watch = Stopwatch()
        try:
            status, content_type, payload = self._route(method, path, body)
        except ApiError as error:
            metrics.counter("serve.errors_count").inc()
            status, content_type, payload = (
                error.status,
                _JSON,
                encode_payload(error.envelope()),
            )
        except Exception as error:  # lint: disable=RPR014 — a server maps
            # unexpected failures (corrupt checkpoint, bad state) to a 500
            # envelope instead of killing the worker; the taxonomy is the
            # contract, the message carries the cause.
            metrics.counter("serve.errors_count").inc()
            internal = ApiError(f"{type(error).__name__}: {error}")
            status, content_type, payload = (
                internal.status,
                _JSON,
                encode_payload(internal.envelope()),
            )
        metrics.histogram("serve.request_seconds").observe(watch.elapsed_seconds)
        return status, content_type, payload

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, str, bytes]:
        if method == "GET":
            if path == "/healthz":
                return 200, _JSON, self._session.health().to_bytes()
            if path == "/metrics":
                text = render_prometheus(get_registry().snapshot())
                return 200, _TEXT, text.encode("utf-8")
            if path == "/v1/models":
                return 200, _JSON, self._session.models().to_bytes()
            raise NotFoundError(f"no route GET {path}")
        if method == "POST":
            prefix = "/v1/"
            if not path.startswith(prefix):
                raise NotFoundError(f"no route POST {path}")
            endpoint = path[len(prefix) :]
            request_type_for(endpoint)  # unknown endpoints 404 before parsing
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise BadRequestError(f"invalid JSON body: {error}") from None
            if not isinstance(payload, dict):
                raise BadRequestError("request body must be a JSON object")
            deadline = (
                Deadline.after(self._deadline_seconds)
                if self._deadline_seconds is not None
                else None
            )
            key = (endpoint, encode_payload(payload))
            response = self._flight.run(
                key,
                lambda: self._session.execute(endpoint, payload, deadline),
                deadline,
            )
            return 200, _JSON, response.to_bytes()
        raise NotFoundError(f"unsupported method {method}")


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from the socket to :meth:`ServeApp.handle`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    timeout = 30.0  # a stalled client cannot park a worker forever

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        status, content_type, payload = self.server.app.handle(
            method, self.path, body
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging; /metrics is the signal."""


class DiscoveryServer(HTTPServer):
    """HTTP server with a bounded worker pool and graceful draining."""

    def __init__(
        self,
        app: ServeApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        drain_seconds: float = 5.0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.app = app
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._cond = threading.Condition()
        self._inflight = 0
        self._draining = False
        self._drain_seconds = drain_seconds
        self._accept_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- socketserver integration --------------------------------------

    def process_request(self, request, client_address) -> None:
        """Hand the accepted connection to the bounded pool."""
        with self._cond:
            if self._draining:
                self.shutdown_request(request)
                return
            self._inflight += 1
        try:
            self._pool.submit(self._work, request, client_address)
        except RuntimeError:
            # Pool already shut down: refuse the connection.
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()
            self.shutdown_request(request)

    def _work(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:  # lint: disable=RPR014 — a torn client socket
            # must not take down the worker; socketserver's handle_error
            # hook is the sanctioned reporter.
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()

    def handle_error(self, request, client_address) -> None:
        get_registry().counter("serve.connection_errors_count").inc()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> threading.Thread:
        """Serve in a daemon thread; returns it (joined by ``close``)."""
        thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": _WAIT_SLICE_SECONDS},
            name="repro-serve-accept",
            daemon=True,
        )
        with self._cond:
            self._accept_thread = thread
        thread.start()
        return thread

    def close(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, release the socket."""
        with self._cond:
            started = self._accept_thread is not None
        if started:
            # shutdown() blocks until serve_forever's loop notices; only
            # meaningful (and safe) once the accept thread is running.
            self.shutdown()
        deadline = (
            Deadline.after(self._drain_seconds)
            if drain and self._drain_seconds > 0
            else None
        )
        with self._cond:
            self._draining = True
            while self._inflight > 0 and deadline is not None:
                if deadline.expired():
                    break
                self._cond.wait(timeout=_WAIT_SLICE_SECONDS)
            thread = self._accept_thread
        self._pool.shutdown(wait=False)
        if thread is not None:
            thread.join(timeout=self._drain_seconds)
        self.server_close()


def start_server(
    session: Session,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 8,
    deadline_seconds: float | None = None,
    drain_seconds: float = 5.0,
    observability: bool = True,
) -> DiscoveryServer:
    """Build and start a server for ``session``; caller owns ``close()``.

    By default the process-global metrics registry is switched on so
    ``/metrics`` reports live traffic; pass ``observability=False`` to
    leave the ambient (possibly null) registry untouched.
    """
    if observability:
        enable_observability()
    app = ServeApp(session, deadline_seconds=deadline_seconds)
    server = DiscoveryServer(
        app,
        host=host,
        port=port,
        max_workers=max_workers,
        drain_seconds=drain_seconds,
    )
    server.start()
    return server
