"""Unit and property tests for the integer triple store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kg import TripleSet, encode_keys


def make(triples, n=10, k=3) -> TripleSet:
    return TripleSet(np.asarray(triples, dtype=np.int64), n, k)


class TestConstruction:
    def test_basic(self):
        ts = make([[0, 0, 1], [1, 1, 2]])
        assert len(ts) == 2
        assert ts.num_entities == 10
        assert ts.num_relations == 3

    def test_deduplicates(self):
        ts = make([[0, 0, 1], [0, 0, 1], [1, 0, 2]])
        assert len(ts) == 2

    def test_empty(self):
        ts = make([])
        assert len(ts) == 0
        assert ts.contains(np.zeros((0, 3))).shape == (0,)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            TripleSet(np.zeros((2, 2)), 5, 2)

    def test_rejects_out_of_range_entity(self):
        with pytest.raises(ValueError, match="entity id"):
            make([[0, 0, 99]])

    def test_rejects_out_of_range_relation(self):
        with pytest.raises(ValueError, match="relation id"):
            make([[0, 9, 1]])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            make([[-1, 0, 1]])

    def test_rejects_empty_id_space(self):
        with pytest.raises(ValueError):
            TripleSet(np.zeros((0, 3)), 0, 1)

    def test_array_is_readonly(self):
        ts = make([[0, 0, 1]])
        with pytest.raises(ValueError):
            ts.array[0, 0] = 5

    def test_accepts_iterable_of_tuples(self):
        ts = TripleSet([(0, 0, 1), (1, 1, 2)], 5, 2)
        assert len(ts) == 2


class TestQueries:
    def test_contains_single(self):
        ts = make([[0, 0, 1], [1, 1, 2]])
        assert (0, 0, 1) in ts
        assert (0, 0, 2) not in ts

    def test_contains_batch(self):
        ts = make([[0, 0, 1], [1, 1, 2]])
        mask = ts.contains(np.asarray([[0, 0, 1], [5, 2, 5], [1, 1, 2]]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_contains_on_empty_set(self):
        ts = make([])
        mask = ts.contains(np.asarray([[0, 0, 1]]))
        np.testing.assert_array_equal(mask, [False])

    def test_by_relation(self):
        ts = make([[0, 0, 1], [1, 1, 2], [2, 1, 3]])
        rel1 = ts.by_relation(1)
        assert len(rel1) == 2
        assert set(rel1[:, 1]) == {1}

    def test_unique_relations_and_entities(self):
        ts = make([[0, 2, 1], [1, 0, 2]])
        np.testing.assert_array_equal(ts.unique_relations(), [0, 2])
        np.testing.assert_array_equal(ts.unique_entities(), [0, 1, 2])

    def test_sp_index(self):
        ts = make([[0, 0, 1], [0, 0, 2], [1, 0, 3]])
        index = ts.sp_index()
        np.testing.assert_array_equal(sorted(index[(0, 0)]), [1, 2])
        np.testing.assert_array_equal(index[(1, 0)], [3])

    def test_po_index(self):
        ts = make([[0, 0, 2], [1, 0, 2]])
        index = ts.po_index()
        np.testing.assert_array_equal(sorted(index[(0, 2)]), [0, 1])

    def test_iteration_yields_python_ints(self):
        ts = make([[0, 1, 2]])
        triple = next(iter(ts))
        assert triple == (0, 1, 2)
        assert all(isinstance(v, int) for v in triple)


class TestSetAlgebra:
    def test_union(self):
        a = make([[0, 0, 1]])
        b = make([[1, 0, 2], [0, 0, 1]])
        assert len(a.union(b)) == 2

    def test_difference(self):
        a = make([[0, 0, 1], [1, 0, 2]])
        b = make([[0, 0, 1]])
        diff = a.difference(b)
        assert len(diff) == 1
        assert (1, 0, 2) in diff

    def test_intersection(self):
        a = make([[0, 0, 1], [1, 0, 2]])
        b = make([[1, 0, 2], [3, 0, 4]])
        inter = a.intersection(b)
        assert len(inter) == 1
        assert (1, 0, 2) in inter

    def test_incompatible_spaces_rejected(self):
        a = make([[0, 0, 1]], n=10)
        b = TripleSet(np.asarray([[0, 0, 1]]), 11, 3)
        with pytest.raises(ValueError):
            a.union(b)

    def test_equality(self):
        assert make([[0, 0, 1], [1, 0, 2]]) == make([[1, 0, 2], [0, 0, 1]])
        assert make([[0, 0, 1]]) != make([[0, 0, 2]])


class TestDerived:
    def test_complement_size(self):
        ts = make([[0, 0, 1], [1, 1, 2]], n=10, k=3)
        assert ts.complement_size() == 10 * 10 * 3 - 2

    def test_yago_complement_magnitude(self):
        """The paper's motivating number: ~533 × 10⁹ for YAGO3-10."""
        ts = TripleSet(np.asarray([[0, 0, 1]]), 123_182, 37)
        assert abs(ts.complement_size() - 533e9) / 533e9 < 0.06

    def test_density(self):
        ts = make([[0, 0, 1]], n=10, k=1)
        assert ts.density() == pytest.approx(0.01)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
triple_lists = st.lists(
    st.tuples(
        st.integers(0, 19), st.integers(0, 4), st.integers(0, 19)
    ),
    max_size=60,
)


@given(triple_lists)
def test_keys_injective(triples):
    arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
    keys = encode_keys(arr, 20, 5)
    unique_triples = {tuple(t) for t in arr.tolist()}
    assert len(np.unique(keys)) == len(unique_triples)


@given(triple_lists)
def test_every_stored_triple_is_contained(triples):
    arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
    if len(arr) == 0:
        return
    ts = TripleSet(arr, 20, 5)
    assert ts.contains(arr).all()


@given(triple_lists, triple_lists)
def test_union_is_commutative(t1, t2):
    a = TripleSet(np.asarray(t1, dtype=np.int64).reshape(-1, 3), 20, 5)
    b = TripleSet(np.asarray(t2, dtype=np.int64).reshape(-1, 3), 20, 5)
    assert a.union(b) == b.union(a)


@given(triple_lists, triple_lists)
def test_difference_disjoint_from_subtrahend(t1, t2):
    a = TripleSet(np.asarray(t1, dtype=np.int64).reshape(-1, 3), 20, 5)
    b = TripleSet(np.asarray(t2, dtype=np.int64).reshape(-1, 3), 20, 5)
    diff = a.difference(b)
    assert len(diff.intersection(b)) == 0
    # And difference + intersection partition a.
    assert len(diff) + len(a.intersection(b)) == len(a)


@given(triple_lists)
def test_complement_plus_size_is_total(triples):
    arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
    ts = TripleSet(arr, 20, 5)
    assert ts.complement_size() + len(ts) == 20 * 20 * 5
