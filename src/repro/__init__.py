"""repro — fact discovery from knowledge graph embeddings.

A from-scratch reproduction of *“Evaluation of Sampling Methods for
Discovering Facts from Knowledge Graph Embeddings”* (EDBT 2024):

* :mod:`repro.autograd` — numpy autodiff engine (the training substrate);
* :mod:`repro.kg` — knowledge-graph storage, statistics, dataset replicas;
* :mod:`repro.kge` — TransE/DistMult/ComplEx/RESCAL/HolE/ConvE models,
  training and the ranking evaluation protocol;
* :mod:`repro.discovery` — Algorithm 1 (``discover_facts``), the six
  sampling strategies, and the exhaustive CHAI-style baseline;
* :mod:`repro.experiments` — the run matrix, hyperparameter grids and
  reporting used by the benchmark harness.

Quickstart::

    from repro import FactDiscoveryWorkflow
    report = FactDiscoveryWorkflow(dataset="fb15k237-like",
                                   model="distmult",
                                   strategy="entity_frequency").run()
    print(report.summary())
"""

from .api import (
    ClassifyRequest,
    DiscoverRequest,
    RankRequest,
    Session,
)
from .discovery import (
    DiscoveryConfig,
    DiscoveryResult,
    RuleFilter,
    available_strategies,
    create_strategy,
    discover_facts,
    exhaustive_discover_facts,
    heldout_discovery_protocol,
)
from .experiments import FactDiscoveryWorkflow, run_matrix
from .kg import (
    KnowledgeGraph,
    TripleSet,
    available_datasets,
    dataset_report,
    load_dataset,
    load_dataset_dir,
)
from .kge import (
    ModelConfig,
    TrainConfig,
    available_models,
    compute_ranks,
    create_model,
    evaluate_ranking,
    fit,
    load_model,
    save_model,
    train_model,
)
from .obs import (
    MetricsRegistry,
    disable_observability,
    enable_observability,
    get_registry,
    span,
    use_registry,
    write_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "RankRequest",
    "DiscoverRequest",
    "ClassifyRequest",
    "KnowledgeGraph",
    "TripleSet",
    "load_dataset",
    "available_datasets",
    "create_model",
    "available_models",
    "ModelConfig",
    "TrainConfig",
    "DiscoveryConfig",
    "fit",
    "train_model",
    "evaluate_ranking",
    "compute_ranks",
    "discover_facts",
    "exhaustive_discover_facts",
    "heldout_discovery_protocol",
    "DiscoveryResult",
    "RuleFilter",
    "create_strategy",
    "available_strategies",
    "run_matrix",
    "FactDiscoveryWorkflow",
    "dataset_report",
    "load_dataset_dir",
    "save_model",
    "load_model",
    "MetricsRegistry",
    "span",
    "get_registry",
    "use_registry",
    "enable_observability",
    "disable_observability",
    "write_snapshot",
]
