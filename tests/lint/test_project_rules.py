"""Whole-program pass 2 over a real multi-module package.

``fixtures/miniproj`` exercises what the single-file fixtures cannot:
relative imports, package re-exports, method dispatch through a local
instance, and an import cycle.  The same package drives the incremental
cache (cold / warm / ``--changed-only`` byte-identity), the SARIF and
baseline reporters against golden files, the ``--fix`` autofixer, and
the generated rule reference's freshness check.
"""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

import pytest

from repro.lint import (
    LintEngine,
    ProjectIndex,
    build_module_info,
    derive_module_name,
    fix_file,
    load_baseline,
    match_baseline,
    render_baseline,
    render_diff,
    render_rules_doc,
    render_sarif,
)
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every finding the miniproj scan must produce, in sorted order.
EXPECTED = [
    ("RPR013", "miniproj/__init__.py", 8, 1),
    ("RPR010", "miniproj/util.py", 15, 11),
]


def _scan(monkeypatch, **kwargs):
    monkeypatch.chdir(FIXTURES)
    engine = LintEngine(use_cache=kwargs.pop("use_cache", False), **kwargs)
    return engine.run(["miniproj"])


def _keys(findings):
    return [(f.rule_id, f.path, f.line, f.col) for f in findings]


def _miniproj_index(root: Path) -> ProjectIndex:
    modules = {}
    for path in sorted(root.rglob("*.py")):
        name = derive_module_name(path)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        modules[name] = build_module_info(name, str(path), tree)
    return ProjectIndex(modules)


# ----------------------------------------------------------------------
# Cross-module resolution
# ----------------------------------------------------------------------
def test_whole_program_findings(monkeypatch):
    run = _scan(monkeypatch)
    assert sorted(_keys(run.findings)) == sorted(EXPECTED)
    taint = next(f for f in run.findings if f.rule_id == "RPR010")
    # The witness walks a relative import, a local-instance method
    # dispatch, self-dispatch, and a cross-module call.
    assert (
        "discover_facts -> compute -> Engine.run -> Engine.sample -> draw"
        in taint.message
    )


def test_import_cycle_is_indexed_not_fatal():
    index = _miniproj_index(FIXTURES / "miniproj")
    graph = index.import_graph()
    assert "miniproj.core" in graph["miniproj.util"]
    assert "miniproj.util" in graph["miniproj.core"]


def test_transitive_importers_is_the_invalidation_frontier():
    index = _miniproj_index(FIXTURES / "miniproj")
    # The cycle makes core and util mutually invalidating, and the
    # package root re-exports both.
    assert index.transitive_importers({"miniproj.util"}) == {
        "miniproj",
        "miniproj.core",
        "miniproj.util",
    }
    # The package root is a leaf of the reverse graph: nothing imports it.
    assert index.transitive_importers({"miniproj"}) == {"miniproj"}
    # Unknown modules never widen the frontier.
    assert index.transitive_importers({"nonexistent"}) == frozenset()


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
@pytest.fixture
def mini_copy(tmp_path):
    target = tmp_path / "miniproj"
    shutil.copytree(FIXTURES / "miniproj", target)
    return target


def test_cache_cold_warm_and_changed_only_are_byte_identical(
    mini_copy, tmp_path, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = LintEngine(cache_dir=cache_dir).run(["miniproj"])
    assert cold.cache_misses == 3 and cold.cache_hits == 0
    assert not cold.project_reused

    warm = LintEngine(cache_dir=cache_dir).run(["miniproj"])
    assert warm.cache_hits == 3 and warm.cache_misses == 0
    assert warm.findings == cold.findings

    reused = LintEngine(cache_dir=cache_dir).run(
        ["miniproj"], changed_only=True
    )
    assert reused.project_reused
    assert reused.changed == []
    assert reused.findings == cold.findings

    shutil.rmtree(cache_dir)
    fresh = LintEngine(cache_dir=cache_dir).run(["miniproj"])
    assert fresh.cache_misses == 3
    assert fresh.findings == cold.findings


def test_changed_only_reruns_pass2_after_an_edit(
    mini_copy, tmp_path, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"
    engine = LintEngine(cache_dir=cache_dir)
    before = engine.run(["miniproj"])
    assert any(f.rule_id == "RPR010" for f in before.findings)

    util = mini_copy / "util.py"
    util.write_text(
        util.read_text(encoding="utf-8").replace(
            "np.random.default_rng()", "np.random.default_rng(13)"
        ),
        encoding="utf-8",
    )
    after = LintEngine(cache_dir=cache_dir).run(
        ["miniproj"], changed_only=True
    )
    assert not after.project_reused
    assert after.cache_hits == 2 and after.cache_misses == 1
    assert [f.rule_id for f in after.findings] == ["RPR013"]


# ----------------------------------------------------------------------
# Reporters: SARIF + baseline against golden files
# ----------------------------------------------------------------------
def test_sarif_output_matches_golden(monkeypatch):
    run = _scan(monkeypatch)
    rendered = render_sarif(run.findings, checked_files=run.checked_files)
    assert rendered + "\n" == (GOLDEN / "miniproj.sarif").read_text(
        encoding="utf-8"
    )


def test_baseline_round_trips_through_golden(monkeypatch, tmp_path):
    run = _scan(monkeypatch)
    golden = GOLDEN / "miniproj.baseline.json"
    assert render_baseline(run.findings) == golden.read_text(encoding="utf-8")
    new, accepted = match_baseline(run.findings, load_baseline(golden))
    assert new == [] and len(accepted) == len(run.findings)


def test_cli_baseline_gates_only_new_findings(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(FIXTURES)
    baseline = tmp_path / "baseline.json"
    code = lint_main(
        ["miniproj", "--no-config", "--no-cache",
         "--write-baseline", str(baseline)]
    )
    assert code == 0
    code = lint_main(
        ["miniproj", "--no-config", "--no-cache", "--baseline", str(baseline)]
    )
    assert code == 0
    assert "(2 baselined)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# --fix / --diff autofixer
# ----------------------------------------------------------------------
def test_fix_rewrites_all_in_both_directions(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text(
        (FIXTURES / "rpr005_bad.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    result = fix_file(broken, apply=True)
    assert result.changed
    assert "public_but_unlisted" in result.added
    assert "exported_missing" in result.removed
    assert LintEngine().lint_file(broken) == []
    assert "+" in render_diff(result)


def test_cli_fix_repairs_the_package_reexport(mini_copy, tmp_path, capsys):
    code = lint_main(
        [str(mini_copy), "--no-config", "--no-cache", "--fix"]
    )
    # The RPR013 __all__ gap is fixed; the RPR010 hazard remains.
    assert code == 1
    out = capsys.readouterr().out
    assert "1 file fixed" in out
    assert "RPR013" not in out and "RPR010" in out
    assert '"helper"' in (mini_copy / "__init__.py").read_text(
        encoding="utf-8"
    ).replace("'", '"')


def test_cli_diff_previews_without_writing(mini_copy, capsys):
    original = (mini_copy / "__init__.py").read_text(encoding="utf-8")
    code = lint_main([str(mini_copy), "--no-config", "--no-cache", "--diff"])
    assert code == 0
    assert "+" in capsys.readouterr().out
    assert (mini_copy / "__init__.py").read_text(encoding="utf-8") == original


# ----------------------------------------------------------------------
# Generated documentation
# ----------------------------------------------------------------------
def test_rule_reference_doc_is_fresh():
    committed = (REPO_ROOT / "docs" / "lint_rules.md").read_text(
        encoding="utf-8"
    )
    assert committed == render_rules_doc(), (
        "docs/lint_rules.md is stale; regenerate with "
        "`python -m repro.lint --explain-all > docs/lint_rules.md`"
    )


def test_every_rule_documents_rationale_and_example():
    from repro.lint import all_rules

    for rule in all_rules():
        assert rule.rationale, f"{rule.rule_id} missing rationale"
        assert rule.example, f"{rule.rule_id} missing example"
