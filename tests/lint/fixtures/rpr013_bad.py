"""RPR013 bad fixture: top-level bindings shadowing earlier ones."""

from os import path


def path(value):
    return value


def helper():
    return 1


def helper():
    return 2
