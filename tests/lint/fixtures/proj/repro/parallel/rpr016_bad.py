"""RPR016 bad fixture: unbounded waits on the fabric's primitives, five ways."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Lock, Process, Queue


def dispatch_worker(context, payload, rng):
    return payload


def collect(pool, payload):
    future = pool.submit(dispatch_worker, None, payload, None)
    return future.result()


def collect_inline(pool, payload):
    return pool.submit(dispatch_worker, None, payload, None).result()


def drain():
    inbox = Queue()
    return inbox.get()


def guarded_update(state):
    gate = Lock()
    gate.acquire()
    try:
        state["cells"] = state.get("cells", 0) + 1
    finally:
        gate.release()


def run_sidecar(target):
    sidecar = Process(target=target)
    sidecar.start()
    sidecar.join()


def run_batches(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [collect(pool, job) for job in jobs]
