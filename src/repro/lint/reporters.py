"""Finding reporters: text, JSON, and SARIF 2.1.0 for CI upload."""

from __future__ import annotations

import json

from .findings import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: list[Finding], checked_files: int | None = None) -> str:
    """Compiler-style ``path:line:col: RPRxxx message`` lines + summary."""
    lines = [finding.render() for finding in findings]
    affected = len({finding.path for finding in findings})
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if findings:
        summary += f" in {affected} file{'s' if affected != 1 else ''}"
    if checked_files is not None:
        summary += f" ({checked_files} files checked)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: list[Finding], checked_files: int | None = None) -> str:
    payload: dict[str, object] = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if checked_files is not None:
        payload["checked_files"] = checked_files
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: list[Finding], checked_files: int | None = None) -> str:
    """SARIF 2.1.0 log, the interchange format CI annotation tools ingest.

    The rule table is built from the live registry so every finding's
    ``ruleId`` has a matching ``rules`` entry, as the spec recommends.
    """
    from .rules import all_rules

    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    run: dict[str, object] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro-lint",
                "rules": rules,
            }
        },
        "results": results,
    }
    if checked_files is not None:
        run["properties"] = {"checkedFiles": checked_files}
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
