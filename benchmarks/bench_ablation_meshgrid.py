"""Ablation — mesh-grid candidate generation vs independent pair sampling.

Algorithm 1 samples √max_candidates subjects and objects and takes their
cross product (line 11).  The alternative is drawing max_candidates
independent (s, o) pairs.  The mesh grid reuses each sampled entity ~√C
times, concentrating candidates on fewer distinct entities — this
ablation quantifies the effect on yield and quality.
"""

from __future__ import annotations

import time

import numpy as np
from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import discover_facts
from repro.discovery.discover import MAX_GENERATION_ITERATIONS
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset
from repro.kg.stats import OBJECT, SUBJECT
from repro.kge.evaluation import compute_ranks


def _pair_sampling_discover(model, graph, strategy, top_n, max_candidates, seed, stats):
    """Algorithm 1 with line 11 replaced by independent pair draws."""
    from repro.discovery.strategies import create_strategy

    rng = np.random.default_rng(seed)
    strat = create_strategy(strategy)
    strat.prepare(stats)
    train = graph.train
    facts, ranks = [], []
    start = time.perf_counter()
    for relation in train.unique_relations():
        pool_s, probs_s = strat.distribution(SUBJECT)
        pool_o, probs_o = strat.distribution(OBJECT)
        collected = np.zeros((0, 3), dtype=np.int64)
        for _ in range(MAX_GENERATION_ITERATIONS):
            if len(collected) >= max_candidates:
                break
            s = rng.choice(pool_s, size=max_candidates, p=probs_s)
            o = rng.choice(pool_o, size=max_candidates, p=probs_o)
            cand = np.stack([s, np.full(max_candidates, relation), o], axis=1)
            cand = cand[cand[:, 0] != cand[:, 2]]
            cand = cand[~train.contains(cand)]
            collected = np.unique(np.concatenate([collected, cand]), axis=0)
        collected = collected[:max_candidates]
        if not len(collected):
            continue
        r = compute_ranks(model, collected, filter_triples=train, side="object")
        keep = r <= top_n
        facts.append(collected[keep])
        ranks.append(r[keep])
    runtime = time.perf_counter() - start
    all_facts = np.concatenate(facts) if facts else np.zeros((0, 3), dtype=np.int64)
    all_ranks = np.concatenate(ranks) if ranks else np.zeros(0)
    return all_facts, all_ranks, runtime


def test_ablation_meshgrid_vs_pairs(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)

    mesh = benchmark.pedantic(
        lambda: discover_facts(
            model, graph, strategy="entity_frequency", top_n=TOP_N_DEFAULT,
            max_candidates=MAX_CANDIDATES_DEFAULT, seed=0, stats=stats,
        ),
        rounds=1,
        iterations=1,
    )
    pair_facts, pair_ranks, pair_runtime = _pair_sampling_discover(
        model, graph, "entity_frequency", TOP_N_DEFAULT,
        MAX_CANDIDATES_DEFAULT, seed=0, stats=stats,
    )

    def distinct_entities(facts: np.ndarray) -> int:
        return len(np.unique(facts[:, [0, 2]])) if len(facts) else 0

    rows = [
        {
            "variant": "mesh grid (Algorithm 1)",
            "facts": mesh.num_facts,
            "mrr": round(mesh.mrr(), 4),
            "distinct_entities": distinct_entities(mesh.facts),
        },
        {
            "variant": "independent pairs",
            "facts": len(pair_facts),
            "mrr": round(float((1 / pair_ranks).mean()) if len(pair_ranks) else 0.0, 4),
            "distinct_entities": distinct_entities(pair_facts),
        },
    ]
    save_and_print(
        "ablation_meshgrid",
        format_table(
            rows,
            title="Ablation — mesh-grid vs independent pair generation "
            "(fb15k237-like, DistMult, EF)",
        ),
    )

    # The mesh grid concentrates candidates on fewer distinct entities.
    assert distinct_entities(mesh.facts) <= distinct_entities(pair_facts)
    # Both remain usable discovery procedures.
    assert mesh.num_facts > 0 and len(pair_facts) > 0
