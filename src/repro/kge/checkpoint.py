"""Model checkpointing: save/load trained models to a single ``.npz``.

The archive stores the parameter arrays plus a JSON header describing how
to rebuild the model (registry name, sizes, seed and model-specific
constructor options from :meth:`KGEModel.config_options`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .base import KGEModel, create_model

__all__ = ["save_model", "load_model"]

_HEADER_KEY = "__repro_header__"


def save_model(model: KGEModel, path: Path | str) -> None:
    """Serialise a model (architecture + parameters) to ``path``.

    The file is a standard ``.npz`` archive and can be inspected with
    ``numpy.load``.
    """
    header = {
        "model": model.model_name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
        "seed": model.seed,
        "options": model.config_options(),
    }
    payload = model.state_dict()
    if _HEADER_KEY in payload:
        raise ValueError(f"parameter name collides with header key {_HEADER_KEY!r}")
    payload[_HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_model(path: Path | str) -> KGEModel:
    """Rebuild a model saved with :func:`save_model` (evaluation mode)."""
    stored = np.load(path)
    if _HEADER_KEY not in stored.files:
        raise ValueError(f"{path} is not a repro model checkpoint (missing header)")
    header = json.loads(bytes(stored[_HEADER_KEY].tobytes()).decode("utf-8"))
    model = create_model(
        header["model"],
        num_entities=header["num_entities"],
        num_relations=header["num_relations"],
        dim=header["dim"],
        seed=header["seed"],
        **header["options"],
    )
    state = {key: stored[key] for key in stored.files if key != _HEADER_KEY}
    model.load_state_dict(state)
    model.eval()
    return model
