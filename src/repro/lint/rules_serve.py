"""RPR018 — handler hygiene in the ``repro.serve`` query server.

The serving contract is stricter than the fabric's: a request handler
runs on a bounded worker pool inside a process that must keep answering
``/healthz`` and draining gracefully.  Three habits break that contract,
and each is cheap to detect statically:

**Unbounded blocking waits.**  RPR016 bounds the fabric's four blocking
primitives; handlers add the coordination primitives the server itself
is built from — ``Event.wait()`` / ``Condition.wait()`` /
``Barrier.wait()`` without a timeout.  A follower waiting forever on a
leader that died holds a pool slot forever, so graceful shutdown can
never drain.  Every wait in a handler must be a bounded slice inside a
loop that re-checks its deadline (see
:class:`~repro.serve.coalesce.SingleFlight` for the pattern).

**Mutable module-global state.**  Handlers run concurrently; state they
mutate must live in an object that owns a lock (RPR011 then enforces the
locking).  A ``global`` statement inside a function, or an in-place
mutation of a module-level binding (``CACHE[key] = ...``,
``_SEEN.append(...)``), is shared state with no owner and no lock.
Read-only module constants are fine — only mutation trips the rule.

**Hand-rolled wire payloads.**  Every byte on the wire comes from the
versioned schema types — :meth:`~repro.api.types.WireType.to_bytes`,
:meth:`~repro.api.types.ApiError.envelope` through
:func:`~repro.api.types.encode_payload`.  ``json.dumps`` applied to a
dict/list literal is an ad-hoc response shape that silently escapes the
``schema_version`` contract and drifts from the documented API.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["ServeHandlerHygieneRule"]

#: The package whose request/handler code this rule watches.
_SCOPES = ("repro.serve",)

#: Constructor name -> kind of waitable the binding becomes.
_WAITABLE_FACTORIES = {
    "Event": "event",
    "Condition": "condition",
    "Barrier": "barrier",
    "Process": "process",
    "Thread": "thread",
    "Queue": "queue",
    "SimpleQueue": "queue",
    "LifoQueue": "queue",
    "PriorityQueue": "queue",
    "Lock": "lock",
    "RLock": "lock",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
}

#: Method -> kinds it blocks on.  ``wait`` is the serve-specific addition
#: over RPR016's fabric set.
_BLOCKING_METHODS = {
    "wait": ("event", "condition", "barrier"),
    "result": ("future",),
    "exception": ("future",),
    "get": ("queue",),
    "acquire": ("lock",),
    "join": ("process", "thread"),
}

#: In-place mutators on the stdlib containers handlers reach for.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "appendleft", "extendleft",
    }
)

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_tail(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_false(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def _is_bounded(method: str, call: ast.Call) -> bool:
    """Does this blocking call carry a timeout or opt out of blocking?"""
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return True
        if keyword.arg in ("block", "blocking") and _is_false(keyword.value):
            return True
    if method in ("wait", "result", "exception", "join"):
        # First positional parameter is the timeout itself.
        return bool(call.args)
    if method in ("get", "acquire") and call.args and _is_false(call.args[0]):
        return True  # get(False)/acquire(False) poll instead of waiting.
    return False


def _waitable_kind(value: ast.expr) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    tail = _call_tail(value)
    if tail in _WAITABLE_FACTORIES:
        return _WAITABLE_FACTORIES[tail]
    if tail == "submit" and isinstance(value.func, ast.Attribute):
        return "future"
    return None


def _is_self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` receiver -> attribute name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _waitable_bindings(root: ast.AST) -> tuple[dict[str, str], dict[str, str]]:
    """``({name: kind}, {self_attr: kind})`` bound anywhere under ``root``."""
    names: dict[str, str] = {}
    attrs: dict[str, str] = {}

    def bind(target: ast.expr, kind: str) -> None:
        if isinstance(target, ast.Name):
            names[target.id] = kind
        else:
            attr = _is_self_attr(target)
            if attr is not None:
                attrs[attr] = kind

    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            kind = _waitable_kind(node.value)
            if kind is not None:
                for target in node.targets:
                    bind(target, kind)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = _waitable_kind(node.value)
            if kind is not None:
                bind(node.target, kind)
        elif isinstance(node, ast.withitem):
            kind = _waitable_kind(node.context_expr)
            if kind is not None and node.optional_vars is not None:
                bind(node.optional_vars, kind)
    return names, attrs


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    """Names bound to values (not defs/imports) at module scope."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                names.add(stmt.target.id)
    return frozenset(names)


def _root_name(node: ast.expr) -> str | None:
    """Leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class ServeHandlerHygieneRule(Rule):
    rule_id = "RPR018"
    name = "serve-handler-hygiene"
    description = (
        "query-server handler hygiene in repro.serve — no unbounded "
        "blocking waits (Event/Condition/Barrier.wait and the RPR016 "
        "primitives must carry timeouts), no mutation of module-global "
        "state from handler code, and no hand-rolled json.dumps payloads "
        "outside the versioned schema types"
    )
    rationale = (
        "A handler that waits forever holds a bounded pool slot forever, "
        "so one dead leader starves the pool and graceful shutdown never "
        "drains; module-global state mutated from concurrent handlers has "
        "no owning lock for RPR011 to check; and a json.dumps'd literal "
        "is a wire shape that silently escapes the schema_version "
        "contract the public API documents."
    )
    example = (
        "done = Event()\n"
        "done.wait()                      # RPR018: leader may have died\n"
        "done.wait(timeout=0.05)          # ok: bounded slice in a loop\n"
        "_SEEN = set()\n"
        "def handle(key):\n"
        "    _SEEN.add(key)               # RPR018: unlocked shared state\n"
        "    return json.dumps({'ok': 1}) # RPR018: ad-hoc wire payload\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(_SCOPES):
            return
        yield from self._check_waits(ctx)
        yield from self._check_global_mutation(ctx)
        yield from self._check_adhoc_payloads(ctx)

    # -- unbounded waits ------------------------------------------------

    def _check_waits(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Scopes mirror RPR016: each top-level function is one scope;
        # class bodies form one scope so ``self.<attr>`` waitables bound
        # in ``__init__`` are visible from every method.
        scopes: list[ast.AST] = []
        module_stmts = ast.Module(body=[], type_ignores=[])
        for stmt in ctx.tree.body:
            if isinstance(stmt, (*_FunctionDef, ast.ClassDef)):
                scopes.append(stmt)
            else:
                module_stmts.body.append(stmt)
        scopes.append(module_stmts)
        for root in scopes:
            names, attrs = _waitable_bindings(root)
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                method = node.func.attr
                kinds = _BLOCKING_METHODS.get(method)
                if kinds is None or _is_bounded(method, node):
                    continue
                receiver = node.func.value
                kind = None
                owner = None
                if isinstance(receiver, ast.Name):
                    kind = names.get(receiver.id)
                    owner = f"'{receiver.id}'"
                else:
                    attr = _is_self_attr(receiver)
                    if attr is not None:
                        kind = attrs.get(attr)
                        owner = f"'self.{attr}'"
                if kind not in kinds:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"unbounded {method}() on {owner} ({kind}) can pin a "
                    f"pool slot forever; wait in bounded slices "
                    f"(timeout=...) and re-check the deadline",
                )

    # -- module-global mutation -----------------------------------------

    def _check_global_mutation(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_names = _module_level_names(ctx.tree)
        for func in (
            n for n in ast.walk(ctx.tree) if isinstance(n, _FunctionDef)
        ):
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        ctx,
                        node,
                        f"handler rebinds module global(s) "
                        f"{', '.join(repr(n) for n in node.names)}; move the "
                        f"state into a lock-owning object",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        node.targets
                        if isinstance(node, (ast.Assign, ast.Delete))
                        else [node.target]
                    )
                    for target in targets:
                        # Plain local rebinding is fine; only stores
                        # *into* a module-level container mutate state.
                        if not isinstance(target, (ast.Subscript, ast.Attribute)):
                            continue
                        name = _root_name(target)
                        if name in module_names:
                            yield self.finding(
                                ctx,
                                node,
                                f"in-place mutation of module global "
                                f"{name!r} from handler code; shared state "
                                f"needs a lock-owning object",
                            )
                elif isinstance(node, ast.Call):
                    if not isinstance(node.func, ast.Attribute):
                        continue
                    if node.func.attr not in _MUTATING_METHODS:
                        continue
                    receiver = node.func.value
                    if (
                        isinstance(receiver, ast.Name)
                        and receiver.id in module_names
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{node.func.attr}() mutates module global "
                            f"{receiver.id!r} from handler code; shared "
                            f"state needs a lock-owning object",
                        )

    # -- ad-hoc wire payloads -------------------------------------------

    def _check_adhoc_payloads(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_dumps = (
                isinstance(func, ast.Attribute)
                and func.attr == "dumps"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ) or (isinstance(func, ast.Name) and func.id == "dumps")
            if not is_dumps or not node.args:
                continue
            if isinstance(node.args[0], (ast.Dict, ast.List, ast.Set, ast.Tuple)):
                yield self.finding(
                    ctx,
                    node,
                    "hand-rolled json.dumps payload; wire responses come "
                    "from the schema types (WireType.to_bytes / "
                    "ApiError.envelope via encode_payload)",
                )
