"""RPR014 — exception-contract checks across the call graph.

The resilience layer raises *typed* errors (``CheckpointCorruptError``,
``RetryBudgetExceededError``) precisely so callers can tell corrupt
state from exhausted retries.  A caller that wraps such a call in a
broad ``except Exception`` throws that type information away.  The rule
computes each function's transitive raise set over the call graph and
flags broad handlers that swallow a project-typed error no earlier
typed handler covers.  Handlers that re-raise are exempt — conditional
propagation is a legitimate isolation pattern.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .callgraph import split_node
from .findings import Finding
from .rules import ProjectRule, register_rule

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = ["ExceptionContractRule"]

_BROAD = frozenset({"Exception", "BaseException"})


@register_rule
class ExceptionContractRule(ProjectRule):
    rule_id = "RPR014"
    name = "exception-contract"
    description = (
        "broad except handlers that swallow project-typed errors raised "
        "(transitively) inside the try body"
    )
    rationale = (
        "Typed errors are an API contract: retry logic, journaling, and "
        "campaign isolation all branch on them.  A broad handler around "
        "a call that transitively raises CheckpointCorruptError treats "
        "a corrupt checkpoint like any hiccup — the caller can no "
        "longer quarantine the file or stop burning the retry budget.  "
        "Knowing what a call can raise requires the whole call graph."
    )
    example = (
        "def load(path):\n"
        "    raise CheckpointCorruptError(path)\n"
        "\n"
        "def run(path):\n"
        "    try:\n"
        "        load(path)\n"
        "    except Exception:   # RPR014: swallows the typed error\n"
        "        pass\n"
    )

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        raises = graph.transitive_raises()
        for key in sorted(graph.nodes):
            module, fn = graph.nodes[key]
            info = index.modules[module]
            for try_info in fn.tries:
                escaping: set[str] = set()
                for site in try_info.calls:
                    for target in graph.resolve_call(module, fn, site.parts):
                        escaping.update(
                            exc for exc in raises.get(target, ()) if ":" in exc
                        )
                for raise_site in try_info.raises:
                    resolved = graph.resolve_exception(module, raise_site.parts)
                    if resolved is not None and ":" in resolved:
                        escaping.add(resolved)
                if not escaping:
                    continue

                handler_types = [
                    [
                        graph.resolve_exception(module, parts)
                        for parts in handler.types
                    ]
                    for handler in try_info.handlers
                ]
                covered: set[str] = set()
                for types in handler_types:
                    typed = [t for t in types if t is not None and t not in _BROAD]
                    for exc in escaping:
                        ancestry = index.exception_ancestry(*split_node(exc))
                        if any(t in ancestry for t in typed):
                            covered.add(exc)
                uncovered = escaping - covered
                if not uncovered:
                    continue

                for handler, types in zip(try_info.handlers, handler_types):
                    broad = not handler.types or any(t in _BROAD for t in types)
                    if not broad or handler.reraises:
                        continue
                    names = ", ".join(
                        sorted(split_node(exc)[1] for exc in uncovered)
                    )
                    yield self.project_finding(
                        info.path,
                        handler.lineno,
                        handler.col,
                        f"broad except in '{fn.qual}' swallows typed "
                        f"{names}; catch the typed error first or re-raise",
                    )
