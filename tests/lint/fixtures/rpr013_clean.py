"""RPR013 clean fixture: every top-level name bound exactly once."""

from os import path


def resolve(value):
    return path.basename(value)


def helper():
    return 1
