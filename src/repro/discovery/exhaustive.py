"""Exhaustive candidate generation — the CHAI-style baseline (paper §5.1).

Enumerates the complement of the graph per relation (optionally pruned by
:class:`~repro.discovery.rules.RuleFilter`), scores every candidate, and
keeps the ones ranking within ``top_n``.  Its cost demonstrates concretely
why sampling is necessary: even on the scaled-down replicas it evaluates
orders of magnitude more candidates than Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kge.base import KGEModel
from ..kge.ranking import RankingEngine
from ..obs import flatten_spans, get_registry, span, span_tree_delta
from .discover import DiscoveryResult
from .rules import RuleFilter

__all__ = ["exhaustive_discover_facts"]


def _complement_for_relation(
    graph: KnowledgeGraph, relation: int, drop_self_loops: bool
) -> np.ndarray:
    """All non-existing triples with the given relation."""
    n = graph.num_entities
    s_grid, o_grid = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    candidates = np.empty((n * n, 3), dtype=np.int64)
    candidates[:, 0] = s_grid.ravel()
    candidates[:, 1] = relation
    candidates[:, 2] = o_grid.ravel()
    if drop_self_loops:
        candidates = candidates[candidates[:, 0] != candidates[:, 2]]
    return candidates[~graph.train.contains(candidates)]


def exhaustive_discover_facts(
    model: KGEModel,
    graph: KnowledgeGraph,
    top_n: int = 500,
    relations: list[int] | None = None,
    rule_filter: RuleFilter | None = None,
    max_candidates_per_relation: int | None = None,
    drop_self_loops: bool = True,
    seed: int = 0,
    engine: RankingEngine | None = None,
    workers: int = 1,
) -> DiscoveryResult:
    """Exhaustively discover facts for the given relations.

    Parameters
    ----------
    rule_filter:
        Optional CHAI-style pruning step applied between generation and
        scoring.
    max_candidates_per_relation:
        Safety cap (uniform subsample) so the baseline stays runnable on
        larger graphs; ``None`` means the full complement is scored.
    engine:
        A shared :class:`~repro.kge.ranking.RankingEngine`.  Query dedup
        pays off dramatically here: the full complement of one relation
        holds ~``N²`` candidates but only ``N`` unique ``(s, r)``
        queries, so the engine scores ~``N``× fewer rows.
    workers:
        Thread-pool width when ``engine`` is omitted.

    Returns the same :class:`DiscoveryResult` structure as Algorithm 1 so
    the two approaches can be compared on equal footing.
    """
    if relations is None:
        relations = [int(r) for r in graph.train.unique_relations()]
    rng = np.random.default_rng(seed)
    if engine is None:
        engine = RankingEngine(workers=workers)
    stats_baseline = engine.stats.as_dict()

    all_facts: list[np.ndarray] = []
    all_ranks: list[np.ndarray] = []
    per_relation: dict[int, int] = {}
    generation_seconds = 0.0
    ranking_seconds = 0.0
    candidates_generated = 0
    registry = get_registry()
    spans_before = registry.snapshot()["spans"] if registry.enabled else None

    with span("discover"):
        for relation in relations:
            with span("discover.generate") as generate_span:
                candidates = _complement_for_relation(
                    graph, relation, drop_self_loops
                )
                if rule_filter is not None:
                    candidates = rule_filter.filter(candidates)
                if (
                    max_candidates_per_relation is not None
                    and len(candidates) > max_candidates_per_relation
                ):
                    pick = rng.choice(
                        len(candidates),
                        size=max_candidates_per_relation,
                        replace=False,
                    )
                    candidates = candidates[pick]
            generation_seconds += generate_span.wall_seconds
            candidates_generated += len(candidates)
            registry.counter("discover.relations_count").inc()
            registry.counter("discover.candidates_count").inc(len(candidates))
            if len(candidates) == 0:
                per_relation[relation] = 0
                continue

            with span("rank") as rank_span:
                with no_grad():
                    ranks = engine.compute_ranks(
                        model, candidates, filter_triples=graph.train, side="object"
                    )
            ranking_seconds += rank_span.wall_seconds

            keep = ranks <= top_n
            all_facts.append(candidates[keep])
            all_ranks.append(ranks[keep])
            per_relation[relation] = int(keep.sum())
            registry.counter("discover.facts_count").inc(int(keep.sum()))

    facts = (
        np.concatenate(all_facts, axis=0)
        if all_facts
        else np.zeros((0, 3), dtype=np.int64)
    )
    ranks = np.concatenate(all_ranks) if all_ranks else np.zeros(0)
    after = engine.stats.as_dict()
    trace: dict[str, dict[str, float]] = {}
    if spans_before is not None:
        trace = flatten_spans(
            span_tree_delta(spans_before, registry.snapshot()["spans"])
        )
    return DiscoveryResult(
        facts=facts,
        ranks=ranks,
        strategy="exhaustive" + ("+rules" if rule_filter is not None else ""),
        top_n=top_n,
        max_candidates=candidates_generated,
        candidates_generated=candidates_generated,
        generation_seconds=generation_seconds,
        ranking_seconds=ranking_seconds,
        weight_seconds=0.0,
        per_relation=per_relation,
        ranking_stats={
            key: after[key] - stats_baseline.get(key, 0) for key in after
        },
        trace=trace,
    )
