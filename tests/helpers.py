"""Test utilities: numerical gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd import Tensor


def numeric_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = func(x)
        flat[i] = orig - eps
        minus = func(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    build: Callable[[Tensor], Tensor],
    x_data: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``build(x).sum()`` match numeric ones.

    ``build`` maps a requires-grad tensor to an output tensor; the scalar
    objective is the sum of that output.
    """
    x = Tensor(np.asarray(x_data, dtype=np.float64).copy(), requires_grad=True)
    out = build(x)
    out.sum().backward()
    analytic = x.grad.copy()

    def objective(arr: np.ndarray) -> float:
        return float(build(Tensor(arr)).data.sum())

    numeric = numeric_gradient(objective, x.data.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
