"""Per-rule fixture pairs plus targeted unit checks.

Every rule RPR001–RPR018 has one *bad* fixture (flagged with exactly the
expected findings) and one *clean* fixture (no findings under the full
rule set, which also proves the fixtures do not trip each other's rules).
The scoped rules (RPR002/RPR004/RPR007/RPR008/RPR009/RPR012) live under
a fake package tree in ``fixtures/proj`` so module-name derivation
resolves them into the ``repro.*`` namespaces the rules watch.  The
whole-program rules (RPR010–RPR014) are exercised here on single
self-contained modules — ``lint_file`` runs pass 2 over a singleton
index — and again over a real multi-module package in
``test_project_rules.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintEngine, derive_module_name

FIXTURES = Path(__file__).parent / "fixtures"

ENGINE = LintEngine()

#: (rule id, bad fixture, clean fixture, findings expected in the bad one).
CASES = [
    ("RPR001", "rpr001_bad.py", "rpr001_clean.py", 3),
    (
        "RPR002",
        "proj/repro/discovery/rpr002_bad.py",
        "proj/repro/discovery/rpr002_clean.py",
        2,
    ),
    ("RPR003", "rpr003_bad.py", "rpr003_clean.py", 1),
    (
        "RPR004",
        "proj/repro/autograd/rpr004_bad.py",
        "proj/repro/autograd/rpr004_clean.py",
        2,
    ),
    ("RPR005", "rpr005_bad.py", "rpr005_clean.py", 2),
    ("RPR006", "rpr006_bad.py", "rpr006_clean.py", 4),
    (
        "RPR007",
        "proj/repro/kge/rpr007_bad.py",
        "proj/repro/kge/rpr007_clean.py",
        4,
    ),
    (
        "RPR008",
        "proj/repro/kge/rpr008_bad.py",
        "proj/repro/kge/rpr008_clean.py",
        3,
    ),
    (
        "RPR009",
        "proj/repro/discovery/rpr009_bad.py",
        "proj/repro/discovery/rpr009_clean.py",
        6,
    ),
    ("RPR010", "rpr010_bad.py", "rpr010_clean.py", 2),
    ("RPR011", "rpr011_bad.py", "rpr011_clean.py", 1),
    (
        "RPR012",
        "proj/repro/discovery/rpr012_bad.py",
        "proj/repro/discovery/rpr012_clean.py",
        3,
    ),
    ("RPR013", "rpr013_bad.py", "rpr013_clean.py", 2),
    ("RPR014", "rpr014_bad.py", "rpr014_clean.py", 1),
    ("RPR015", "rpr015_bad.py", "rpr015_clean.py", 6),
    (
        "RPR016",
        "proj/repro/parallel/rpr016_bad.py",
        "proj/repro/parallel/rpr016_clean.py",
        5,
    ),
    (
        "RPR017",
        "proj/repro/kg/rpr017_bad.py",
        "proj/repro/kg/rpr017_clean.py",
        4,
    ),
    (
        "RPR018",
        "proj/repro/serve/rpr018_bad.py",
        "proj/repro/serve/rpr018_clean.py",
        6,
    ),
]


@pytest.mark.parametrize(
    "rule_id, bad, clean, count", CASES, ids=[case[0] for case in CASES]
)
def test_bad_fixture_is_flagged(rule_id, bad, clean, count):
    findings = ENGINE.lint_file(FIXTURES / bad)
    assert [finding.rule_id for finding in findings] == [rule_id] * count


@pytest.mark.parametrize(
    "rule_id, bad, clean, count", CASES, ids=[case[0] for case in CASES]
)
def test_clean_fixture_passes_all_rules(rule_id, bad, clean, count):
    assert ENGINE.lint_file(FIXTURES / clean) == []


def test_derive_module_name_walks_packages():
    scoped = FIXTURES / "proj" / "repro" / "discovery" / "rpr002_bad.py"
    assert derive_module_name(scoped) == "repro.discovery.rpr002_bad"
    assert derive_module_name(FIXTURES / "rpr001_bad.py") == "rpr001_bad"


def test_rpr001_flags_global_rng_imports():
    findings = ENGINE.lint_source("from numpy.random import rand\n")
    assert [finding.rule_id for finding in findings] == ["RPR001"]
    findings = ENGINE.lint_source("from random import shuffle\n")
    assert [finding.rule_id for finding in findings] == ["RPR001"]


def test_rpr001_allows_generator_surface():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "bits = np.random.PCG64(0)\n"
    )
    assert ENGINE.lint_source(source) == []


def test_rpr002_only_fires_in_scoped_modules():
    source = "def f(model, c):\n    return model.score_spo(c)\n"
    assert ENGINE.lint_source(source, module="repro.kge.base") == []
    findings = ENGINE.lint_source(source, module="repro.discovery.candidates")
    assert [finding.rule_id for finding in findings] == ["RPR002"]


def test_rpr002_nested_function_escapes_enclosing_guard():
    source = (
        "def outer(model, c):\n"
        "    with no_grad():\n"
        "        def later():\n"
        "            return model.score_spo(c)\n"
        "        return later\n"
    )
    findings = ENGINE.lint_source(source, module="repro.discovery.lazy")
    assert [finding.rule_id for finding in findings] == ["RPR002"]


def test_rpr003_exempts_the_parameter_update_modules():
    source = "def step(param, grad):\n    param.data[:] = param.data - grad\n"
    assert ENGINE.lint_source(source, module="repro.autograd.optim") == []
    findings = ENGINE.lint_source(source, module="repro.kge.training")
    assert [finding.rule_id for finding in findings] == ["RPR003"]


def test_rpr003_exempts_scipy_sparse_value_buffers():
    sparse = (
        "import scipy.sparse as sp\n"
        "def collapse(x):\n"
        "    adj = sp.csr_matrix(x)\n"
        "    adj.data[:] = 1\n"
        "    return adj\n"
    )
    assert ENGINE.lint_source(sparse, module="repro.kg.stats") == []
    # A name ever rebound to something else loses the exemption.
    ambiguous = (
        "import scipy.sparse as sp\n"
        "def collapse(x, tensor):\n"
        "    adj = sp.csr_matrix(x)\n"
        "    adj = tensor\n"
        "    adj.data[:] = 1\n"
        "    return adj\n"
    )
    findings = ENGINE.lint_source(ambiguous, module="repro.kg.stats")
    assert [finding.rule_id for finding in findings] == ["RPR003"]


def test_rpr004_flags_direct_grad_writes():
    source = (
        "def scale(a, factor):\n"
        "    def backward(grad):\n"
        "        a.grad = grad * factor\n"
        "    return a._make(a.data * factor, (a,), backward)\n"
    )
    findings = ENGINE.lint_source(source, module="repro.autograd.extra")
    assert [finding.rule_id for finding in findings] == ["RPR004"]


def test_rpr005_rejects_non_literal_all():
    findings = ENGINE.lint_source("__all__ = [name for name in dir()]\n")
    assert [finding.rule_id for finding in findings] == ["RPR005"]
    assert "literal" in findings[0].message


def test_rpr005_skips_modules_without_all():
    assert ENGINE.lint_source("def public():\n    return 1\n") == []


def test_rpr007_atomic_writes_only_fire_in_scoped_modules():
    source = "import numpy as np\ndef save(path, a):\n    np.savez(path, a=a)\n"
    findings = ENGINE.lint_source(source, module="repro.kge.checkpoint")
    assert [finding.rule_id for finding in findings] == ["RPR007"]
    findings = ENGINE.lint_source(source, module="repro.experiments.runner")
    assert [finding.rule_id for finding in findings] == ["RPR007"]
    # The sanctioned writer itself is out of scope.
    assert ENGINE.lint_source(source, module="repro.resilience.atomic") == []
    assert ENGINE.lint_source(source, module="repro.discovery.candidates") == []


def test_rpr009_raw_clocks_only_fire_in_scoped_modules():
    source = "import time\ndef f():\n    return time.perf_counter()\n"
    findings = ENGINE.lint_source(source, module="repro.kge.training")
    assert [finding.rule_id for finding in findings] == ["RPR009"]
    findings = ENGINE.lint_source(source, module="repro.experiments.runner")
    assert [finding.rule_id for finding in findings] == ["RPR009"]
    # The obs package owns the clocks; unscoped modules are free too.
    assert ENGINE.lint_source(source, module="repro.obs.spans") == []
    assert ENGINE.lint_source(source, module="repro.resilience.retry") == []


def test_rpr009_summary_without_reportable_is_flagged():
    source = (
        "class R:\n"
        "    def summary(self):\n"
        "        return {}\n"
    )
    findings = ENGINE.lint_source(source, module="repro.resilience.guards")
    assert [finding.rule_id for finding in findings] == ["RPR009"]
    mixed_in = (
        "from repro.obs import ReportableMixin\n"
        "class R(ReportableMixin):\n"
        "    def summary(self):\n"
        "        return {}\n"
    )
    assert ENGINE.lint_source(mixed_in, module="repro.resilience.guards") == []


def test_rpr007_swallowed_broad_except_fires_everywhere():
    source = "def f(fn):\n    try:\n        fn()\n    except Exception:\n        pass\n"
    findings = ENGINE.lint_source(source)
    assert [finding.rule_id for finding in findings] == ["RPR007"]
    # A handler that actually does something is fine.
    handled = (
        "def f(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except Exception as error:\n"
        "        raise RuntimeError('wrapped') from error\n"
    )
    assert ENGINE.lint_source(handled) == []
