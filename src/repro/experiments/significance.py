"""Statistical support for the evaluation study.

An experimental comparison paper lives or dies by whether its deltas are
real; these helpers provide the two standard tools for rank-based KGE
metrics, implemented from scratch on numpy:

* :func:`bootstrap_mrr_ci` — percentile bootstrap confidence interval of
  an MRR computed from a rank vector;
* :func:`paired_sign_test` — exact binomial sign test over paired
  per-configuration metric values (e.g. EF vs UR across all
  dataset × model cells of the run matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

__all__ = ["MRRInterval", "bootstrap_mrr_ci", "SignTestResult", "paired_sign_test"]


@dataclass(frozen=True)
class MRRInterval:
    """Bootstrap confidence interval of an MRR."""

    mrr: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_mrr_ci(
    ranks: np.ndarray,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> MRRInterval:
    """Percentile-bootstrap CI of the mean reciprocal rank."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("cannot bootstrap an empty rank vector")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    reciprocal = 1.0 / ranks
    rng = np.random.default_rng(seed)
    samples = rng.choice(reciprocal, size=(num_resamples, reciprocal.size))
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return MRRInterval(
        mrr=float(reciprocal.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class SignTestResult:
    """Outcome of an exact two-sided paired sign test."""

    wins: int
    losses: int
    ties: int
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional α = 0.05 verdict."""
        return self.p_value < 0.05


def paired_sign_test(
    first: np.ndarray, second: np.ndarray
) -> SignTestResult:
    """Exact binomial sign test of ``first > second`` over paired values.

    Ties are discarded (the standard treatment).  The p-value is the
    exact two-sided binomial tail probability under H₀: P(win) = ½.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("paired samples must have the same shape")
    if first.size == 0:
        raise ValueError("need at least one pair")
    diff = first - second
    wins = int((diff > 0).sum())
    losses = int((diff < 0).sum())
    ties = int((diff == 0).sum())
    n = wins + losses
    if n == 0:
        return SignTestResult(wins=0, losses=0, ties=ties, p_value=1.0)
    k = max(wins, losses)
    # Two-sided exact tail: 2 · P(X >= k), capped at 1.
    tail = sum(comb(n, i) for i in range(k, n + 1)) / (2.0**n)
    return SignTestResult(
        wins=wins, losses=losses, ties=ties, p_value=float(min(1.0, 2.0 * tail))
    )
