"""Config dataclass and grid-expansion tests."""

from __future__ import annotations

import pytest

from repro.kge import ModelConfig, TrainConfig, expand_grid


class TestModelConfig:
    def test_defaults(self):
        config = ModelConfig()
        assert config.name == "transe"
        assert config.options == {}

    def test_with_(self):
        config = ModelConfig("distmult", dim=64).with_(dim=128)
        assert config.dim == 128
        assert config.name == "distmult"

    def test_to_dict_roundtrip(self):
        config = ModelConfig("conve", dim=32, options={"num_filters": 8})
        data = config.to_dict()
        assert data["options"]["num_filters"] == 8
        assert ModelConfig(**data) == config

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ModelConfig().dim = 7


class TestTrainConfig:
    def test_to_dict(self):
        assert TrainConfig().to_dict()["job"] == "negative_sampling"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TrainConfig().lr = 1.0


class TestExpandGrid:
    def test_cartesian_product(self):
        grid = list(expand_grid({"a": [1, 2], "b": ["x", "y"]}))
        assert len(grid) == 4
        assert {"a": 1, "b": "x"} in grid
        assert {"a": 2, "b": "y"} in grid

    def test_slowest_first_order(self):
        grid = list(expand_grid({"a": [1, 2], "b": [10, 20]}))
        assert grid[0] == {"a": 1, "b": 10}
        assert grid[1] == {"a": 1, "b": 20}
        assert grid[2] == {"a": 2, "b": 10}

    def test_empty_space(self):
        assert list(expand_grid({})) == [{}]

    def test_single_param(self):
        assert list(expand_grid({"lr": [0.1]})) == [{"lr": 0.1}]
