"""Discovery-metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import (
    compare_results,
    discover_facts,
    discovery_mrr,
    efficiency_facts_per_hour,
    theoretical_mrr_floor,
)


class TestDiscoveryMRR:
    def test_known_value(self):
        assert discovery_mrr(np.asarray([1.0, 2.0, 4.0])) == pytest.approx(
            (1 + 0.5 + 0.25) / 3
        )

    def test_empty_is_zero(self):
        assert discovery_mrr(np.zeros(0)) == 0.0

    def test_rejects_sub_one_ranks(self):
        with pytest.raises(ValueError):
            discovery_mrr(np.asarray([0.5]))


class TestEfficiency:
    def test_facts_per_hour(self):
        assert efficiency_facts_per_hour(100, 3600.0) == pytest.approx(100.0)

    def test_rejects_zero_runtime(self):
        with pytest.raises(ValueError):
            efficiency_facts_per_hour(10, 0.0)

    def test_rejects_negative_facts(self):
        with pytest.raises(ValueError):
            efficiency_facts_per_hour(-1, 10.0)


class TestTheoreticalFloor:
    def test_paper_value(self):
        """§4.2.2: top_n = 500 implies an MRR floor of 0.002."""
        assert theoretical_mrr_floor(500) == pytest.approx(0.002)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            theoretical_mrr_floor(0)


class TestCompare:
    def test_sorted_by_mrr(self, trained_distmult, tiny_graph):
        results = {
            name: discover_facts(
                trained_distmult, tiny_graph, strategy=name, top_n=15,
                max_candidates=64, seed=0,
            )
            for name in ("uniform_random", "entity_frequency")
        }
        rows = compare_results(results)
        assert len(rows) == 2
        assert rows[0]["mrr"] >= rows[1]["mrr"]
        assert {"label", "facts_count", "runtime_seconds"} <= set(rows[0])
