"""Domain-aware static analysis for the repro codebase.

The paper's experimental claims rest on invariants no framework enforces
for us: deterministic sampling (every strategy draws from seeded
``np.random.Generator`` streams) and a correct, lean autodiff tape.  This
package is an AST-based analyzer with a rule registry, per-file parallel
walking, inline ``# lint: disable=RPRxxx`` suppressions, and text/JSON
reporters — run as ``python -m repro.lint``, ``repro lint``, or the
``repro-lint`` console script.

Rules
-----

========  ==========================================================
RPR001    no global-RNG calls — require explicit ``np.random.Generator``
RPR002    tape hygiene — inference modules score under ``no_grad``
RPR003    no in-place ``Tensor.data`` mutation outside optim/modules
RPR004    backward-closure completeness (``_unbroadcast`` / guards)
RPR005    ``__all__`` ↔ public-def consistency
RPR006    float64 dtype hygiene, mutable defaults, bare ``except``
RPR007    resilience — no swallowed broad excepts; atomic binary writes
RPR008    sparse-grad safety — dense ``.grad`` reads in kge/autograd
          must handle ``SparseGrad``, densify, or ``flush()`` first
RPR009    observability — no raw ``time.*`` clocks in
          kge/discovery/experiments (use ``repro.obs.span``);
          ``summary()``-bearing result classes speak ``Reportable``
========  ==========================================================

The tier-1 test ``tests/lint/test_self_clean.py`` runs the analyzer over
``src/repro`` and fails on any unsuppressed finding, so these invariants
hold on every future change.
"""

from .config import LintConfig, find_pyproject, load_config
from .engine import LintEngine
from .findings import PARSE_ERROR_ID, Finding
from .reporters import render_json, render_text
from .rules import (
    ModuleContext,
    Rule,
    all_rules,
    derive_module_name,
    get_rule,
    numpy_aliases,
    register_rule,
)
from .suppress import filter_suppressed, suppressed_rule_ids

# Importing the rule modules populates the registry.
from . import (
    rules_api,
    rules_hygiene,
    rules_obs,
    rules_resilience,
    rules_rng,
    rules_sparse,
    rules_tape,
    rules_tensor,
)

__all__ = [
    "Finding",
    "PARSE_ERROR_ID",
    "Rule",
    "ModuleContext",
    "register_rule",
    "all_rules",
    "get_rule",
    "derive_module_name",
    "numpy_aliases",
    "LintConfig",
    "find_pyproject",
    "load_config",
    "LintEngine",
    "render_text",
    "render_json",
    "filter_suppressed",
    "suppressed_rule_ids",
    "rules_api",
    "rules_hygiene",
    "rules_obs",
    "rules_resilience",
    "rules_rng",
    "rules_sparse",
    "rules_tape",
    "rules_tensor",
]
