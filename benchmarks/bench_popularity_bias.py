"""§4.2.2 — popularity bias across the KGE models.

The paper hypothesises popularity bias to explain why frequency-based
sampling pairs so well with certain models.  The probe: rank-correlate
each entity's query-averaged object score with its training frequency.
Every trained model on the skewed replicas should exhibit a positive
correlation — that *is* the mechanism that makes ENTITY FREQUENCY and
CLUSTERING TRIANGLES effective — and the probe quantifies how much each
model amplifies it.
"""

from __future__ import annotations

from common import save_and_print

from repro.experiments import PAPER_MODELS, format_table, get_trained_model
from repro.kg import load_dataset
from repro.kge.diagnostics import popularity_bias


def test_popularity_bias_probe(benchmark):
    graph = load_dataset("fb15k237-like")

    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    benchmark.pedantic(
        lambda: popularity_bias(model, graph, num_queries=100, seed=0),
        rounds=2,
        iterations=1,
    )

    rows = []
    results = {}
    for name in PAPER_MODELS:
        trained = get_trained_model("fb15k237-like", name, graph=graph)
        probe = popularity_bias(trained, graph, num_queries=200, seed=0)
        results[name] = probe
        rows.append(
            {
                "model": name,
                "spearman(score, frequency)": round(probe.correlation, 3),
                "p_value": probe.p_value,
                "biased": str(probe.is_biased),
            }
        )
    rows.sort(key=lambda r: r["spearman(score, frequency)"], reverse=True)
    save_and_print(
        "popularity_bias",
        format_table(
            rows,
            precision=6,
            title="§4.2.2 — popularity-bias probe (fb15k237-like)",
        ),
    )

    # Every model trained on the skewed replica tracks popularity — the
    # mechanism behind the frequency-based strategies' quality advantage.
    for name, probe in results.items():
        assert probe.correlation > 0.2, name
        assert probe.is_biased, name