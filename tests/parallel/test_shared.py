"""SharedEmbeddingStore: publish/attach round trip and segment lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.parallel import SharedEmbeddingStore, attach_model
from repro.parallel import registry
from repro.resilience import FaultInjectedError, SegmentLostError


class TestPublishAttachRoundTrip:
    def test_attached_state_matches_published_model(self, trained_distmult):
        with SharedEmbeddingStore.publish(trained_distmult) as store:
            model, shm = attach_model(store.handle)
            try:
                original = trained_distmult.state_dict()
                attached = model.state_dict()
                assert sorted(attached) == sorted(original)
                for name in original:
                    np.testing.assert_array_equal(attached[name], original[name])
            finally:
                shm.close()

    def test_attached_model_scores_bit_identically(self, trained_distmult, tiny_graph):
        triples = tiny_graph.train.array[:64]
        expected = trained_distmult.scores_spo(triples)
        with SharedEmbeddingStore.publish(trained_distmult) as store:
            model, shm = attach_model(store.handle)
            try:
                np.testing.assert_array_equal(model.scores_spo(triples), expected)
            finally:
                shm.close()

    def test_attached_views_are_read_only_and_zero_copy(self, trained_distmult):
        with SharedEmbeddingStore.publish(trained_distmult) as store:
            model, shm = attach_model(store.handle)
            try:
                assert not model.training
                parameters = list(model.parameters())
                assert parameters
                for parameter in parameters:
                    assert not parameter.data.flags.writeable
                    with pytest.raises(ValueError):
                        parameter.data[...] = 0.0
                    # The array aliases the segment, not a per-process copy.
                    assert not parameter.data.flags.owndata
            finally:
                shm.close()

    def test_specs_are_cache_line_aligned(self, trained_distmult):
        with SharedEmbeddingStore.publish(trained_distmult) as store:
            assert store.handle.specs  # at least one state array
            for spec in store.handle.specs:
                assert spec.offset % 64 == 0
            assert store.nbytes >= sum(
                np.dtype(spec.dtype).itemsize * int(np.prod(spec.shape))
                for spec in store.handle.specs
            )

    def test_handle_is_picklable(self, trained_distmult):
        import pickle

        with SharedEmbeddingStore.publish(trained_distmult) as store:
            clone = pickle.loads(pickle.dumps(store.handle))
            assert clone == store.handle


class TestLifecycle:
    def test_close_is_idempotent(self, trained_distmult):
        store = SharedEmbeddingStore.publish(trained_distmult)
        store.close(unlink=True)
        store.close(unlink=True)  # second close must be a no-op

    def test_unlink_prevents_new_attachments(self, trained_distmult):
        store = SharedEmbeddingStore.publish(trained_distmult)
        handle = store.handle
        store.close(unlink=True)
        with pytest.raises(FileNotFoundError):
            attach_model(handle)

    def test_lost_segment_raises_typed_error(self, trained_distmult):
        # SegmentLostError subclasses FileNotFoundError, so generic
        # handlers keep working while the scheduler can tell "segment
        # gone" apart from an ordinary missing file.
        store = SharedEmbeddingStore.publish(trained_distmult)
        handle = store.handle
        store.close(unlink=True)
        with pytest.raises(SegmentLostError, match=handle.segment):
            attach_model(handle)
        assert issubclass(SegmentLostError, FileNotFoundError)

    def test_publish_registers_and_close_unregisters(self, trained_distmult):
        store = SharedEmbeddingStore.publish(trained_distmult)
        name = store.handle.segment
        assert name in registry.registered_segments()
        assert registry.owner_pid(name) is not None
        store.close(unlink=True)
        assert name not in registry.registered_segments()

    def test_shared_attach_is_a_fault_site(self, trained_distmult):
        with SharedEmbeddingStore.publish(trained_distmult) as store:
            with faults.inject(FaultPlan().fail("shared_attach")):
                with pytest.raises(FaultInjectedError):
                    attach_model(store.handle)
            model, shm = attach_model(store.handle)  # budget spent
            shm.close()

    def test_context_manager_unlinks_on_error(self, trained_distmult):
        handle = None
        with pytest.raises(RuntimeError, match="campaign failed"):
            with SharedEmbeddingStore.publish(trained_distmult) as store:
                handle = store.handle
                raise RuntimeError("campaign failed")
        with pytest.raises(FileNotFoundError):
            attach_model(handle)

    def test_existing_attachment_survives_owner_unlink(self, trained_distmult):
        """POSIX semantics: unlink only blocks new attachments; mappings
        already held keep working until their holder closes them."""
        store = SharedEmbeddingStore.publish(trained_distmult)
        model, shm = attach_model(store.handle)
        try:
            store.close(unlink=True)
            matrix = model.entity_matrix()
            np.testing.assert_array_equal(
                matrix, trained_distmult.entity_matrix()
            )
        finally:
            shm.close()
