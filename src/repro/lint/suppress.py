"""Inline suppression comments.

A finding is suppressed by a ``# lint: disable=RPR001`` comment either on
the offending line itself or on a standalone comment line directly above
it (the place to put the justification).  Several ids may be given
comma-separated; ``all`` disables every rule for that line.  Suppressions
are deliberately line-scoped — there is no file- or block-level escape
hatch, so every exception stays visible next to the code it excuses.
"""

from __future__ import annotations

import re

from .findings import Finding

__all__ = ["suppressed_rule_ids", "filter_suppressed"]

_MARKER = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)")


def suppressed_rule_ids(source: str) -> dict[int, frozenset[str]]:
    """Map of 1-based line number → rule ids suppressed on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            out[lineno] = frozenset(ids)
    return out


def _suppresses(ids: frozenset[str] | None, rule_id: str) -> bool:
    return ids is not None and (rule_id in ids or "all" in ids)


def filter_suppressed(findings: list[Finding], source: str) -> list[Finding]:
    """Drop findings silenced by an inline or directly-preceding comment."""
    markers = suppressed_rule_ids(source)
    if not markers:
        return findings
    lines = source.splitlines()
    kept = []
    for finding in findings:
        if _suppresses(markers.get(finding.line), finding.rule_id):
            continue
        previous = finding.line - 1
        if (
            _suppresses(markers.get(previous), finding.rule_id)
            and 1 <= previous <= len(lines)
            and lines[previous - 1].lstrip().startswith("#")
        ):
            continue
        kept.append(finding)
    return kept
