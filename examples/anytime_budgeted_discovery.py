"""Budgeted discovery with model selection — the full practitioner loop.

Scenario: you have a fixed compute budget.  Spend a slice of it picking
the best embedding configuration by validation MRR (grid search, the
paper's "Model Training" step), then spend the rest discovering facts
with the bandit scheduler that prioritises productive relations.

Usage::

    python examples/anytime_budgeted_discovery.py
"""

from __future__ import annotations

from repro.discovery import anytime_discover
from repro.experiments import format_table, grid_search_models
from repro.kg import load_dataset
from repro.kge import ModelConfig, TrainConfig


def main() -> None:
    graph = load_dataset("fb15k237-like")
    print(f"{graph}\n")

    print("phase 1 — model selection (grid search on validation MRR)...")
    search = grid_search_models(
        graph,
        ModelConfig("distmult", dim=32, seed=0),
        TrainConfig(
            job="kvsall", loss="bce", epochs=40, batch_size=128,
            lr=0.05, label_smoothing=0.1,
        ),
        model_grid={"dim": [16, 32]},
        train_grid={"lr": [0.02, 0.05]},
    )
    print(format_table(search.leaderboard(), title="Grid-search leaderboard"))
    best = search.best
    print(
        f"\nselected: dim={best.model_config.dim}, lr={best.train_config.lr} "
        f"(valid MRR {best.valid_mrr:.3f})\n"
    )

    print("phase 2 — anytime discovery (3-second budget, UCB scheduler)...")
    result = anytime_discover(
        best.training.model,
        graph,
        budget_seconds=3.0,
        scheduler="ucb",
        top_n=50,
        batch_candidates=100,
        seed=0,
    )
    print(
        f"  {result.num_facts} facts in {result.elapsed_seconds:.2f}s "
        f"(MRR {result.mrr():.3f}, {result.facts_per_hour():,.0f} facts/hour)"
    )

    rows = [
        {
            "relation": graph.relations.label_of(rel),
            "pulls": pulls,
            "acceptance_rate": round(result.rewards[rel], 3),
        }
        for rel, pulls in sorted(
            result.pulls.items(), key=lambda kv: kv[1], reverse=True
        )[:8]
    ]
    print()
    print(format_table(rows, title="Most-pulled relations (bandit view)"))
    print(
        "\nThe bandit spends its pulls where candidates keep passing the"
        "\nrank filter — relations whose embedding neighbourhoods are"
        "\ndense with plausible missing facts."
    )


if __name__ == "__main__":
    main()
