"""RPR001 bad fixture: global RNG state in three flavours."""

import random

import numpy as np


def sample_ids(n):
    np.random.seed(0)
    picks = np.random.choice(n, size=3)
    return picks, random.randint(0, n)
