"""Out-of-core substrate scaling — storage backends across 1×/10×/50×.

The sharded substrate makes two performance claims this benchmark pins:

1. **Kernel speedup.**  The blocked CSR squares kernel
   (:func:`repro.kg.blocked.square_clustering_blocked`) replaces the
   retained Θ(Σ deg²) Python reference.  At 1× replica scale the blocked
   kernel must be ≥10× faster (it is typically hundreds of times
   faster); the outputs are asserted bit-identical first.
2. **Bounded residency.**  The full statistics suite — degree,
   triangles, clustering coefficient *and* squares — runs at 1×, 10×
   and 50× replica scale on both backends (materialised vs mmap) inside
   a bounded peak RSS, and at full YAGO3-10 scale (123k entities,
   ~1.09M triples) the streaming generator plus the complete suite stay
   under ``FULL_SCALE_RSS_LIMIT_MIB``.  A dense adjacency at that scale
   would be ~121 GiB; the 50× gate (``SCALED_RSS_LIMIT_MIB``) sits two
   orders of magnitude below the dense footprint.

Every stats measurement runs in a fresh *spawned* subprocess so its
``ru_maxrss`` is a per-measurement high-water mark, not contaminated by
whatever the pytest process allocated before.

Results: ``benchmarks/results/BENCH_substrate.json`` plus the rendered
table in ``benchmarks/results/substrate_scaling.txt``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import tempfile
import time
from pathlib import Path

import numpy as np

from common import RESULTS_DIR, save_and_print

from repro.experiments import format_table
from repro.kg import (
    DATASET_PROFILES,
    load_dataset,
    square_clustering_blocked,
    square_clustering_reference,
    undirected_adjacency,
)

BASE_PROFILE = DATASET_PROFILES["yago310-like"]
SCALES = (1, 10, 50)
BACKENDS = ("memory", "mmap")

#: Minimum blocked-kernel speedup over the Python reference at 1×.
SQUARES_SPEEDUP_FLOOR = 10.0
#: Peak-RSS gate for the complete stats suite at 50× replica scale.
SCALED_RSS_LIMIT_MIB = 1024.0
#: Peak-RSS gate for full-scale generation and statistics (measured
#: ~240 MiB generating and ~270 MiB for the stats suite; the gate
#: leaves headroom for allocator noise while staying far below the
#: ~121 GiB a dense adjacency would need).
FULL_SCALE_RSS_LIMIT_MIB = 1024.0


def _generate_worker(profile_name, factor, store_dir, conn):
    """Child: stream a scaled replica into a store, report time + RSS."""
    import resource

    from repro.kg import (
        DATASET_PROFILES,
        FULL_SCALE_PROFILES,
        generate_kg_streaming,
        scale_profile,
    )

    profile = (
        FULL_SCALE_PROFILES[profile_name]
        if profile_name in FULL_SCALE_PROFILES
        else DATASET_PROFILES[profile_name]
    )
    if factor != 1:
        profile = scale_profile(profile, factor)
    start = time.perf_counter()
    graph = generate_kg_streaming(profile, store_dir)
    seconds = time.perf_counter() - start
    conn.send(
        {
            "seconds": seconds,
            "peak_rss_mib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            / 1024.0,
            "num_entities": graph.num_entities,
            "num_triples": graph.num_triples,
        }
    )
    conn.close()


def _stats_worker(store_dir, mmap, conn):
    """Child: run the full statistics suite, report time + RSS + sums."""
    import resource

    from repro.kg import GraphStatistics, load_kg_store

    graph = load_kg_store(store_dir, mmap=mmap)
    stats = GraphStatistics(graph.train)
    start = time.perf_counter()
    fingerprint = [
        float(stats.degree.sum()),
        float(stats.triangles.sum()),
        float(stats.clustering_coefficient.sum()),
        float(stats.squares_clustering.sum()),
    ]
    seconds = time.perf_counter() - start
    conn.send(
        {
            "seconds": seconds,
            "peak_rss_mib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            / 1024.0,
            "fingerprint": fingerprint,
        }
    )
    conn.close()


def _run_in_subprocess(target, *args):
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=target, args=(*args, child))
    proc.start()
    child.close()
    try:
        result = parent.recv()
    finally:
        proc.join(timeout=600)
    return result


def _squares_speedup_gate():
    """Blocked vs reference squares at 1×: bit-identical and ≥10× faster."""
    adj = undirected_adjacency(load_dataset("yago310-like").train)
    start = time.perf_counter()
    reference = square_clustering_reference(adj)
    reference_s = time.perf_counter() - start

    square_clustering_blocked(adj)  # warm-up (scipy init)
    start = time.perf_counter()
    blocked = square_clustering_blocked(adj)
    blocked_s = time.perf_counter() - start

    np.testing.assert_array_equal(blocked, reference)
    speedup = reference_s / blocked_s
    assert speedup >= SQUARES_SPEEDUP_FLOOR, (
        f"blocked squares only {speedup:.1f}× faster than the reference "
        f"(floor {SQUARES_SPEEDUP_FLOOR}×)"
    )
    return {
        "reference_seconds": round(reference_s, 3),
        "blocked_seconds": round(blocked_s, 4),
        "speedup": round(speedup, 1),
        "bit_identical": True,
    }


def test_substrate_scaling():
    squares_gate = _squares_speedup_gate()

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-substrate-") as tmp:
        tmp = Path(tmp)
        for factor in SCALES:
            store = tmp / f"x{factor}"
            generation = _run_in_subprocess(
                _generate_worker, BASE_PROFILE.name, factor, store
            )
            fingerprints = {}
            for backend in BACKENDS:
                stats = _run_in_subprocess(
                    _stats_worker, store, backend == "mmap"
                )
                fingerprints[backend] = stats.pop("fingerprint")
                rows.append(
                    {
                        "scale": f"{factor}x",
                        "entities": generation["num_entities"],
                        "triples": generation["num_triples"],
                        "backend": backend,
                        "generate_s": round(generation["seconds"], 2),
                        "stats_s": round(stats["seconds"], 2),
                        "stats_rss_mib": round(stats["peak_rss_mib"], 1),
                    }
                )
            # The two storage backends must compute identical statistics.
            assert fingerprints["memory"] == fingerprints["mmap"], factor

        # RSS gate at the largest replica scale, both backends.
        for row in rows:
            if row["scale"] == f"{SCALES[-1]}x":
                assert row["stats_rss_mib"] <= SCALED_RSS_LIMIT_MIB, row

        # Full-scale YAGO3-10: generate, persist, full suite under budget.
        full_store = tmp / "yago310-full"
        full_generation = _run_in_subprocess(
            _generate_worker, "yago310-full", 1, full_store
        )
        full_stats = _run_in_subprocess(_stats_worker, full_store, True)
        assert full_generation["peak_rss_mib"] <= FULL_SCALE_RSS_LIMIT_MIB
        assert full_stats["peak_rss_mib"] <= FULL_SCALE_RSS_LIMIT_MIB
        full_scale = {
            "profile": "yago310-full",
            "num_entities": full_generation["num_entities"],
            "num_triples": full_generation["num_triples"],
            "generate_seconds": round(full_generation["seconds"], 2),
            "generate_rss_mib": round(full_generation["peak_rss_mib"], 1),
            "stats_seconds": round(full_stats["seconds"], 2),
            "stats_rss_mib": round(full_stats["peak_rss_mib"], 1),
            "includes_squares": True,
        }
        rows.append(
            {
                "scale": "full",
                "entities": full_scale["num_entities"],
                "triples": full_scale["num_triples"],
                "backend": "mmap",
                "generate_s": full_scale["generate_seconds"],
                "stats_s": full_scale["stats_seconds"],
                "stats_rss_mib": full_scale["stats_rss_mib"],
            }
        )

    payload = {
        "base_profile": BASE_PROFILE.name,
        "scales": [f"{s}x" for s in SCALES] + ["full"],
        "squares_kernel_gate": squares_gate,
        "gates": {
            "squares_speedup_floor": SQUARES_SPEEDUP_FLOOR,
            "scaled_rss_limit_mib": SCALED_RSS_LIMIT_MIB,
            "full_scale_rss_limit_mib": FULL_SCALE_RSS_LIMIT_MIB,
        },
        "full_scale": full_scale,
        "scaling": rows,
        "note": (
            "each stats measurement runs in a fresh spawned subprocess so "
            "peak_rss is per-measurement; statistics cover degree, "
            "triangles, clustering coefficient and squares clustering"
        ),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_substrate.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "substrate_scaling",
        format_table(
            rows,
            title=(
                f"substrate scaling ({BASE_PROFILE.name}; blocked squares "
                f"{squares_gate['speedup']}× over the Python reference)"
            ),
        ),
    )
