"""Fault plans: scripted failure schedules with a process-spanning wire format.

A :class:`FaultPlan` is an ordered list of faults, each matching a
``(kind, site, token)`` triple by :func:`fnmatch` patterns and firing a
bounded number of times.  Plans are pure data: building one never arms
anything — :func:`repro.faults.install` (or the :func:`repro.faults.inject`
context manager) activates a plan for the current process, and
:meth:`FaultPlan.to_payload` / :meth:`FaultPlan.from_payload` serialize
one through the spawn boundary so worker processes fire the same
schedule (see :data:`repro.faults.FAULT_PLAN_ENV`).

Fault kinds
-----------

``fail``
    Raise an exception when the site triggers — a crashed training
    epoch, a failed dispatch, a poisoned journal append.
``kill``
    SIGKILL the *current process* when the site triggers: the
    high-fidelity stand-in for a segfaulted or OOM-killed worker.  The
    parent sees a dead process, never an exception.
``stall``
    Two flavours share the builder.  A *virtual* stall (default) is
    reported through :func:`repro.faults.stall_seconds` so retry
    deadlines can be exercised without real waiting; a *wall* stall
    (``wall=True``) really sleeps at the trigger site, which is what
    watchdog/deadline tests need.
``corrupt``
    Damage a just-published file (byte flip or truncation) — a torn
    write the checksum layer must catch.
``torn``
    Tear the next matching journal append: the record is half-written
    with no trailing newline and the append raises, leaving exactly the
    truncated-tail state a crash mid-``write`` produces.

Counters are per-process: a worker installing a serialized plan starts
from fresh ``times`` budgets, so a ``times=1`` fault at a worker-side
site fires once *per worker process that reaches it* — scope worker
faults with precise ``match`` patterns (and clear the environment
payload for recovery passes) when a single firing is required.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatch

__all__ = ["FaultPlan", "PAYLOAD_VERSION"]

#: Wire-format version of :meth:`FaultPlan.to_payload`.
PAYLOAD_VERSION = 1


def _default_exception() -> type[Exception]:
    # Imported lazily: repro.faults sits below repro.resilience in the
    # layering, and a module-level import would recreate the cycle that
    # moving the subsystem out of resilience was meant to break.
    from ..resilience.errors import FaultInjectedError

    return FaultInjectedError


def _exception_path(exc: type[Exception] | None) -> str | None:
    if exc is None:
        return None
    return f"{exc.__module__}:{exc.__qualname__}"


def _resolve_exception(path: str | None) -> type[Exception] | None:
    """Importable exception type behind a ``module:qualname`` path.

    Unresolvable paths degrade to ``None`` (= :class:`FaultInjectedError`
    at fire time) instead of failing plan installation inside a worker.
    """
    if path is None:
        return None
    module_name, _, qualname = path.partition(":")
    try:
        obj: object = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError):
        return None
    if isinstance(obj, type) and issubclass(obj, Exception):
        return obj
    return None


@dataclass
class _Fault:
    kind: str  # "fail" | "corrupt" | "stall" | "kill" | "torn"
    site: str
    pattern: str
    times: int  # remaining firings; < 0 means unlimited
    exc: type[Exception] | None = None  # None = FaultInjectedError
    seconds: float = 0.0
    mode: str = "flip"  # corrupt mode: "flip" | "truncate"
    wall: bool = False  # stall flavour: real sleep vs virtual report
    fired: int = 0

    def matches(self, kind: str, site: str, token: str) -> bool:
        return (
            self.kind == kind
            and self.times != 0
            and fnmatch(site, self.site)
            and fnmatch(token, self.pattern)
        )

    def consume(self) -> None:
        self.fired += 1
        if self.times > 0:
            self.times -= 1

    def exception(self) -> type[Exception]:
        return self.exc if self.exc is not None else _default_exception()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "pattern": self.pattern,
            "times": self.times,
            "exc": _exception_path(self.exc),
            "seconds": self.seconds,
            "mode": self.mode,
            "wall": self.wall,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_Fault":
        return cls(
            kind=str(data["kind"]),
            site=str(data["site"]),
            pattern=str(data["pattern"]),
            times=int(data["times"]),
            exc=_resolve_exception(data.get("exc")),
            seconds=float(data.get("seconds", 0.0)),
            mode=str(data.get("mode", "flip")),
            wall=bool(data.get("wall", False)),
        )


@dataclass
class FaultPlan:
    """A scripted set of faults; builder methods chain."""

    faults: list[_Fault] = field(default_factory=list)

    def fail(
        self,
        site: str,
        match: str = "*",
        times: int = 1,
        exc: type[Exception] | None = None,
    ) -> "FaultPlan":
        """Raise ``exc`` the next ``times`` times ``site``/``match`` triggers.

        ``exc=None`` raises :class:`~repro.resilience.FaultInjectedError`.
        """
        self.faults.append(_Fault("fail", site, match, times, exc=exc))
        return self

    def kill(self, site: str, match: str = "*", times: int = 1) -> "FaultPlan":
        """SIGKILL the triggering process — a worker death, not an exception.

        Remember that fault counters are per-process: at worker-side
        sites every fresh worker re-arms the budget, so scope ``match``
        to the exact cell whose death is under test.
        """
        self.faults.append(_Fault("kill", site, match, times))
        return self

    def corrupt(
        self, match: str = "*", times: int = 1, mode: str = "flip"
    ) -> "FaultPlan":
        """Damage files matching ``match`` right after an atomic publish.

        ``mode="flip"`` inverts a byte run mid-file (checksum-level
        corruption); ``mode="truncate"`` chops the tail (zip-level).
        """
        if mode not in ("flip", "truncate"):
            raise ValueError(f"corrupt mode must be flip/truncate, got {mode!r}")
        self.faults.append(_Fault("corrupt", "save", match, times, mode=mode))
        return self

    def stall(
        self,
        site: str,
        seconds: float,
        match: str = "*",
        times: int = 1,
        wall: bool = False,
    ) -> "FaultPlan":
        """Stall at ``site``: virtually (default) or for real (``wall=True``).

        Virtual stalls are reported through
        :func:`repro.faults.stall_seconds` — the retry executor adds them
        to its measured attempt time so deadline logic can be tested
        without waiting.  Wall stalls sleep inside
        :func:`repro.faults.trigger`, which is how a hung worker is
        simulated for the scheduler watchdog.
        """
        self.faults.append(
            _Fault("stall", site, match, times, seconds=seconds, wall=wall)
        )
        return self

    def torn(self, match: str = "*", times: int = 1) -> "FaultPlan":
        """Tear the next matching journal append mid-write.

        The journal writes roughly half the record with no trailing
        newline, fsyncs, and raises — the exact on-disk state a process
        crash between ``write`` and the newline leaves behind.
        """
        self.faults.append(_Fault("torn", "journal_append", match, times))
        return self

    def fired(self) -> int:
        """Total fault firings so far (did the plan actually trigger?)."""
        return sum(fault.fired for fault in self.faults)

    def _consume(self, kind: str, site: str, token: str) -> _Fault | None:
        for fault in self.faults:
            if fault.matches(kind, site, token):
                fault.consume()
                return fault
        return None

    def to_payload(self) -> str:
        """Serialize for the spawn boundary (fresh counters on arrival)."""
        return json.dumps(
            {
                "version": PAYLOAD_VERSION,
                "faults": [fault.to_dict() for fault in self.faults],
            }
        )

    @classmethod
    def from_payload(cls, payload: str) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_payload`."""
        data = json.loads(payload)
        version = data.get("version")
        if version != PAYLOAD_VERSION:
            raise ValueError(
                f"unsupported fault-plan payload version {version!r} "
                f"(this build speaks {PAYLOAD_VERSION})"
            )
        return cls(faults=[_Fault.from_dict(item) for item in data["faults"]])
