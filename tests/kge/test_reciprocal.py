"""Tests for the reciprocal-relations wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import TrainConfig, evaluate_ranking, train_model
from repro.kge.reciprocal import ReciprocalWrapper


@pytest.fixture()
def wrapper():
    return ReciprocalWrapper.create(
        "distmult", num_entities=12, num_relations=3, dim=8, seed=1
    )


class TestConstruction:
    def test_inner_has_doubled_relations(self, wrapper):
        assert wrapper.inner.num_relations == 6
        assert wrapper.num_relations == 3

    def test_rejects_odd_inner(self):
        from repro.kge import create_model

        inner = create_model("distmult", num_entities=4, num_relations=3, dim=4)
        with pytest.raises(ValueError):
            ReciprocalWrapper(inner)

    def test_parameters_are_inner_parameters(self, wrapper):
        assert list(wrapper.parameters()) == list(wrapper.inner.parameters())

    def test_train_eval_propagate(self, wrapper):
        wrapper.eval()
        assert not wrapper.inner.training
        wrapper.train()
        assert wrapper.inner.training


class TestScoring:
    def test_forward_scores_delegate(self, wrapper):
        s = np.asarray([0, 5])
        r = np.asarray([0, 2])
        o = np.asarray([1, 7])
        np.testing.assert_array_equal(
            wrapper.scores_spo(np.stack([s, r, o], 1)),
            wrapper.inner.scores_spo(np.stack([s, r, o], 1)),
        )

    def test_score_po_uses_reciprocal_relation(self, wrapper):
        r = np.asarray([0, 2])
        o = np.asarray([1, 7])
        via_wrapper = wrapper.scores_po(r, o)
        via_inner = wrapper.inner.scores_sp(o, r + 3)
        np.testing.assert_array_equal(via_wrapper, via_inner)

    def test_score_po_shape(self, wrapper):
        out = wrapper.scores_po(np.asarray([0]), np.asarray([4]))
        assert out.shape == (1, 12)


class TestAugmentation:
    def test_adds_inverted_triples(self, wrapper):
        triples = np.asarray([[0, 0, 1], [2, 1, 3]])
        augmented = wrapper.augment_training_triples(triples)
        assert augmented.shape == (4, 3)
        np.testing.assert_array_equal(augmented[2], [1, 3, 0])
        np.testing.assert_array_equal(augmented[3], [3, 4, 2])


class TestTraining:
    def test_trains_and_evaluates_both_sides(self, tiny_graph):
        wrapper = ReciprocalWrapper.create(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=16,
            seed=0,
        )
        # Train the inner model on the reciprocal-augmented triple set by
        # constructing an augmented graph view.
        from repro.kg import KnowledgeGraph

        augmented = KnowledgeGraph.from_arrays(
            name="aug",
            num_entities=tiny_graph.num_entities,
            num_relations=2 * tiny_graph.num_relations,
            train=wrapper.augment_training_triples(tiny_graph.train.array),
            valid=np.zeros((0, 3), dtype=np.int64),
            test=np.zeros((0, 3), dtype=np.int64),
        )
        result = train_model(
            wrapper.inner,
            augmented,
            TrainConfig(
                job="kvsall", loss="bce", epochs=20, batch_size=64, lr=0.05,
                label_smoothing=0.1,
            ),
        )
        assert result.losses[-1] < result.losses[0]
        wrapper.eval()
        both = evaluate_ranking(wrapper, tiny_graph, side="both")
        random_mrr = float(
            np.mean(1.0 / np.arange(1, tiny_graph.num_entities + 1))
        )
        assert both.mrr > 2 * random_mrr

    def test_state_dict_roundtrip(self, wrapper):
        state = wrapper.state_dict()
        other = ReciprocalWrapper.create(
            "distmult", num_entities=12, num_relations=3, dim=8, seed=9
        )
        other.load_state_dict(state)
        s = np.asarray([0, 1])
        r = np.asarray([0, 1])
        np.testing.assert_array_equal(
            wrapper.scores_sp(s, r), other.scores_sp(s, r)
        )
