"""Ranking engine — query deduplication vs the legacy per-candidate path.

Algorithm 1's mesh-grid candidates share only ~``⌊√max_candidates⌋ + 10``
unique ``(s, r)`` queries per relation, so the legacy chunked path
(:func:`repro.kge.evaluation.compute_ranks_reference`) recomputes each shared
1-vs-all score row ~``sample_size`` times.  :class:`repro.kge.RankingEngine`
scores every unique query exactly once and reuses the row for all of its
candidates.  This benchmark verifies the two paths are *bit-identical*
on real discovery workloads while the engine:

* scores ``rows_scored == unique_queries`` rows, at least 5× fewer than
  the candidate count on mesh-grid workloads;
* improves ``discover_facts`` end-to-end wall-clock with the same seed
  producing the same facts and ranks.

Beyond the usual table, the measurements are written to
``benchmarks/results/BENCH_ranking.json`` so the dedup ratios and
speedups are tracked as a committed artefact.
"""

from __future__ import annotations

import json
import time

import numpy as np
from common import (
    MAX_CANDIDATES_DEFAULT,
    RESULTS_DIR,
    TOP_N_DEFAULT,
    save_and_print,
)

from repro.discovery import discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import load_dataset
from repro.kge import RankingEngine
from repro.kge.evaluation import compute_ranks_reference


class _ReferenceEngine:
    """Duck-typed engine adapter running the legacy chunked path.

    ``discover_facts`` only needs ``compute_ranks``; it reads counters
    via ``getattr(engine, "stats", None)`` so omitting ``stats`` is fine.
    """

    def compute_ranks(self, model, triples, filter_triples=None, side="object"):
        return compute_ranks_reference(
            model, triples, filter_triples=filter_triples, side=side
        )


def _mesh(num_entities: int, side: int, relation: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    subjects = rng.choice(num_entities, size=side, replace=False)
    objects = rng.choice(num_entities, size=side, replace=False)
    s_grid, o_grid = np.meshgrid(subjects, objects, indexing="ij")
    out = np.empty((s_grid.size, 3), dtype=np.int64)
    out[:, 0] = s_grid.ravel()
    out[:, 1] = relation
    out[:, 2] = o_grid.ravel()
    return out


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-N wall-clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_ranking_engine(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "transe", graph=graph)
    payload: dict[str, object] = {
        "dataset": "fb15k237-like",
        "model": "transe",
        "top_n": TOP_N_DEFAULT,
        "max_candidates": MAX_CANDIDATES_DEFAULT,
    }

    # --- Microbenchmark: raw compute_ranks on pure mesh-grid workloads.
    mesh_rows = []
    for side in (8, 16, 32):
        cands = _mesh(graph.num_entities, side, relation=0, seed=side)
        engine = RankingEngine()

        def run_engine():
            engine.reset_stats()  # counters cover the last repeat only
            return engine.compute_ranks(model, cands, filter_triples=graph.train)

        engine_s, engine_ranks = _time(run_engine)
        reference_s, reference_ranks = _time(
            lambda: compute_ranks_reference(
                model, cands, filter_triples=graph.train
            )
        )
        np.testing.assert_array_equal(engine_ranks, reference_ranks)
        stats = engine.stats
        assert stats.rows_scored <= stats.unique_queries
        assert stats.rows_scored * 5 <= len(cands)
        mesh_rows.append(
            {
                "mesh": f"{side}x{side}",
                "candidates": len(cands),
                "unique_queries": stats.unique_queries,
                "rows_scored": stats.rows_scored,
                "rows_reused": stats.rows_reused,
                "engine_s": round(engine_s, 4),
                "reference_s": round(reference_s, 4),
                "speedup": round(reference_s / engine_s, 2),
            }
        )

    # --- End-to-end: discover_facts through the engine vs the legacy path.
    kwargs = dict(
        strategy="entity_frequency",
        top_n=TOP_N_DEFAULT,
        max_candidates=MAX_CANDIDATES_DEFAULT,
        seed=0,
    )
    reference_s, reference = _time(
        lambda: discover_facts(model, graph, engine=_ReferenceEngine(), **kwargs)
    )
    engine_s, result = _time(lambda: discover_facts(model, graph, **kwargs))
    benchmark.pedantic(
        lambda: discover_facts(model, graph, **kwargs), rounds=3, iterations=1
    )

    # Same seed ⇒ same facts and ranks, regardless of the ranking path.
    np.testing.assert_array_equal(result.facts, reference.facts)
    np.testing.assert_array_equal(result.ranks, reference.ranks)

    counters = result.ranking_stats
    assert counters["rows_scored"] <= counters["unique_queries"]
    assert counters["rows_scored"] * 5 <= result.candidates_generated
    assert engine_s < reference_s

    e2e_rows = [
        {
            "path": "RankingEngine",
            "candidates": result.candidates_generated,
            "unique_queries": counters["unique_queries"],
            "rows_scored": counters["rows_scored"],
            "rows_reused": counters["rows_reused"],
            "runtime_s": round(engine_s, 3),
        },
        {
            "path": "reference (per-candidate)",
            "candidates": reference.candidates_generated,
            "unique_queries": "-",
            "rows_scored": reference.candidates_generated,
            "rows_reused": 0,
            "runtime_s": round(reference_s, 3),
        },
    ]

    payload["mesh_compute_ranks"] = mesh_rows
    payload["discover_facts"] = {
        "engine_seconds": engine_s,
        "reference_seconds": reference_s,
        "speedup": reference_s / engine_s,
        "candidates_generated": result.candidates_generated,
        "num_facts": result.num_facts,
        "identical_facts_and_ranks": True,
        "ranking_stats": counters,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_ranking.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "ranking_engine",
        format_table(
            mesh_rows,
            title="compute_ranks on mesh-grid candidates "
            "(fb15k237-like, transe, filtered; best of 3)",
        )
        + "\n\n"
        + format_table(
            e2e_rows,
            title=f"discover_facts end-to-end (entity_frequency, "
            f"top_n={TOP_N_DEFAULT}, max_candidates={MAX_CANDIDATES_DEFAULT}, "
            f"seed=0; best of 3)",
        ),
    )
