"""Tests for complement sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, sample_complement


def build(train, n=6, k=2) -> KnowledgeGraph:
    return KnowledgeGraph.from_arrays(
        name="g",
        num_entities=n,
        num_relations=k,
        train=np.asarray(train, dtype=np.int64).reshape(-1, 3),
        valid=np.zeros((0, 3), dtype=np.int64),
        test=np.zeros((0, 3), dtype=np.int64),
    )


class TestSampleComplement:
    def test_samples_are_not_in_graph(self, tiny_graph):
        sampled = sample_complement(tiny_graph, 200, seed=0)
        assert len(sampled) == 200
        assert not tiny_graph.all_triples().contains(sampled).any()

    def test_samples_are_distinct(self, tiny_graph):
        from repro.kg import encode_keys

        sampled = sample_complement(tiny_graph, 150, seed=1)
        keys = encode_keys(
            sampled, tiny_graph.num_entities, tiny_graph.num_relations
        )
        assert len(np.unique(keys)) == 150

    def test_ids_in_range(self, tiny_graph):
        sampled = sample_complement(tiny_graph, 50, seed=2)
        assert sampled[:, [0, 2]].max() < tiny_graph.num_entities
        assert sampled[:, 1].max() < tiny_graph.num_relations

    def test_deterministic(self, tiny_graph):
        a = sample_complement(tiny_graph, 40, seed=5)
        b = sample_complement(tiny_graph, 40, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_count(self, tiny_graph):
        with pytest.raises(ValueError):
            sample_complement(tiny_graph, 0)

    def test_rejects_impossible_count(self):
        graph = build([[0, 0, 1]], n=2, k=1)
        with pytest.raises(ValueError, match="only"):
            sample_complement(graph, 10)

    def test_works_on_near_complete_graph(self):
        # 2 entities, 1 relation: 4 possible triples, 3 present.
        graph = build([[0, 0, 1], [1, 0, 0], [0, 0, 0]], n=2, k=1)
        sampled = sample_complement(graph, 1, seed=0)
        np.testing.assert_array_equal(sampled, [[1, 0, 1]])


class TestDiscoverValidation:
    def test_model_graph_mismatch_rejected(self, trained_distmult):
        from repro.discovery import discover_facts
        from repro.kg import KGProfile, generate_kg

        other = generate_kg(
            KGProfile(name="other", num_entities=77, num_relations=3,
                      num_triples=300, seed=1)
        )
        with pytest.raises(ValueError, match="wrong dataset"):
            discover_facts(trained_distmult, other, top_n=10, max_candidates=25)
