"""Deterministic synthetic knowledge-graph generation.

The paper evaluates on four public benchmark KGs that are not available in
this offline environment.  The generator here produces *replica* graphs
whose shape statistics — entity/relation counts, density (triples per
entity), popularity skew, clustering level — can be dialled to match each
benchmark's profile (see :mod:`repro.kg.datasets`).

Two properties matter for a faithful reproduction:

1. **Learnability.**  Each entity carries a latent type and each relation
   connects specific (source type, target type) pairs.  KGE models can
   recover this structure, so held-out true triples rank well — without it
   every MRR in the study would be noise.
2. **Popularity skew.**  Entity participation follows a Zipf law, giving
   the long-tail structure on which the frequency/degree-based sampling
   strategies rely to beat UNIFORM RANDOM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import KnowledgeGraph
from .triples import TripleSet, encode_keys

__all__ = ["KGProfile", "generate_kg"]


@dataclass(frozen=True)
class KGProfile:
    """Shape parameters for a synthetic knowledge graph.

    Attributes
    ----------
    name:
        Dataset name recorded on the resulting graph.
    num_entities, num_relations:
        Id space sizes.
    num_triples:
        Target total triple count before splitting (deduplicated).
    valid_fraction, test_fraction:
        Split fractions; the remainder is training data.
    num_types:
        Number of latent entity types (the learnable signal).
    popularity_exponent:
        Zipf exponent of entity popularity; larger = heavier head.
    triangle_closure_prob:
        Fraction of triples created by closing open wedges, which directly
        controls the clustering-coefficient level of the graph.
    relation_skew:
        Zipf exponent of the per-relation triple share.
    pairs_per_relation:
        How many (source type, target type) pairs each relation connects.
    seed:
        RNG seed; generation is fully deterministic given the profile.
    """

    name: str
    num_entities: int
    num_relations: int
    num_triples: int
    valid_fraction: float = 0.05
    test_fraction: float = 0.05
    num_types: int = 8
    popularity_exponent: float = 0.9
    triangle_closure_prob: float = 0.15
    relation_skew: float = 0.8
    pairs_per_relation: int = 2
    seed: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_entities < 2:
            raise ValueError("need at least 2 entities")
        if self.num_relations < 1:
            raise ValueError("need at least 1 relation")
        if self.num_triples < 1:
            raise ValueError("need at least 1 triple")
        if not 0.0 <= self.triangle_closure_prob <= 1.0:
            raise ValueError("triangle_closure_prob must be in [0, 1]")
        if self.valid_fraction + self.test_fraction >= 1.0:
            raise ValueError("split fractions must leave room for training data")
        capacity = self.num_entities**2 * self.num_relations
        if self.num_triples > 0.5 * capacity:
            raise ValueError(
                f"num_triples={self.num_triples} exceeds half the id-space "
                f"capacity ({capacity}); the generator cannot avoid duplicates"
            )


def _zipf_weights(count: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Normalised Zipf weights over ``count`` items, randomly permuted."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return rng.permutation(weights)


def _sample_type_pairs(
    num_relations: int,
    num_types: int,
    pairs_per_relation: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """For each relation, the (source, target) type pairs it connects."""
    pairs: list[np.ndarray] = []
    for _ in range(num_relations):
        count = min(pairs_per_relation, num_types * num_types)
        chosen = rng.choice(num_types * num_types, size=count, replace=False)
        pairs.append(np.stack([chosen // num_types, chosen % num_types], axis=1))
    return pairs


def _close_wedges(
    triples: np.ndarray,
    relation: np.ndarray,
    count: int,
    num_entities: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Create ``count`` triples that close open wedges (u—v—w → u—w).

    Operates on the undirected projection: for a random centre node v with
    at least two neighbours, connect two of its neighbours with a random
    relation drawn from ``relation`` (a pool of relation ids to reuse).
    """
    if len(triples) == 0 or count <= 0:
        return np.zeros((0, 3), dtype=np.int64)
    neighbours: dict[int, list[int]] = {}
    for s, _, o in triples:
        if s != o:
            neighbours.setdefault(int(s), []).append(int(o))
            neighbours.setdefault(int(o), []).append(int(s))
    centres = [v for v, ns in neighbours.items() if len(ns) >= 2]
    if not centres:
        return np.zeros((0, 3), dtype=np.int64)
    centres_arr = np.asarray(centres)
    out = np.zeros((count, 3), dtype=np.int64)
    picked_centres = rng.choice(centres_arr, size=count)
    picked_relations = rng.choice(relation, size=count)
    for i in range(count):
        ns = neighbours[int(picked_centres[i])]
        u, w = rng.choice(len(ns), size=2, replace=False)
        out[i] = (ns[u], picked_relations[i], ns[w])
    return out


def generate_kg(profile: KGProfile) -> KnowledgeGraph:
    """Generate a deterministic synthetic knowledge graph from a profile."""
    rng = np.random.default_rng(profile.seed)
    n, k = profile.num_entities, profile.num_relations

    entity_types = rng.integers(0, profile.num_types, size=n)
    popularity = _zipf_weights(n, profile.popularity_exponent, rng)
    relation_share = _zipf_weights(k, profile.relation_skew, rng)
    type_pairs = _sample_type_pairs(
        k, profile.num_types, profile.pairs_per_relation, rng
    )

    # Pre-compute popularity restricted to each type.
    entities_of_type = [np.flatnonzero(entity_types == t) for t in range(profile.num_types)]
    type_popularity = []
    for members in entities_of_type:
        if members.size:
            w = popularity[members]
            type_popularity.append(w / w.sum())
        else:
            type_popularity.append(np.zeros(0))

    closure_count = int(round(profile.num_triples * profile.triangle_closure_prob))
    base_count = profile.num_triples - closure_count

    # Oversample to survive deduplication, then trim.
    oversample = int(base_count * 1.5) + 16
    relations = rng.choice(k, size=oversample, p=relation_share)
    subjects = np.zeros(oversample, dtype=np.int64)
    objects = np.zeros(oversample, dtype=np.int64)
    for r in range(k):
        idx = np.flatnonzero(relations == r)
        if idx.size == 0:
            continue
        pairs = type_pairs[r]
        picks = pairs[rng.integers(0, len(pairs), size=idx.size)]
        for row, (src_t, dst_t) in zip(idx, picks):
            src_pool = entities_of_type[src_t]
            dst_pool = entities_of_type[dst_t]
            if src_pool.size == 0 or dst_pool.size == 0:
                subjects[row] = rng.integers(0, n)
                objects[row] = rng.integers(0, n)
                continue
            subjects[row] = rng.choice(src_pool, p=type_popularity[src_t])
            objects[row] = rng.choice(dst_pool, p=type_popularity[dst_t])

    base = np.stack([subjects, relations, objects], axis=1)
    base = _dedup(base, n, k)[:base_count]

    closures = _close_wedges(
        base, rng.choice(k, size=max(closure_count, 1), p=relation_share),
        closure_count, n, rng,
    )
    combined = _dedup(np.concatenate([base, closures], axis=0), n, k)
    combined = combined[: profile.num_triples]
    combined = combined[rng.permutation(len(combined))]

    train_arr, valid_arr, test_arr = _split(
        combined, profile.valid_fraction, profile.test_fraction
    )

    metadata = dict(profile.metadata)
    metadata.update(
        {
            "profile": profile.name,
            "num_types": profile.num_types,
            "popularity_exponent": profile.popularity_exponent,
            "triangle_closure_prob": profile.triangle_closure_prob,
            "seed": profile.seed,
            "entity_types": entity_types,
        }
    )
    return KnowledgeGraph.from_arrays(
        name=profile.name,
        num_entities=n,
        num_relations=k,
        train=train_arr,
        valid=valid_arr,
        test=test_arr,
        metadata=metadata,
    )


def _dedup(triples: np.ndarray, num_entities: int, num_relations: int) -> np.ndarray:
    """Drop duplicate rows, preserving first-occurrence order."""
    if len(triples) == 0:
        return triples.reshape(0, 3).astype(np.int64)
    keys = encode_keys(triples, num_entities, num_relations)
    _, first = np.unique(keys, return_index=True)
    return triples[np.sort(first)]


def _split(
    triples: np.ndarray, valid_fraction: float, test_fraction: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split triples so valid/test never contain entities unseen in train.

    This mirrors the construction of CoDEx and the filtered benchmark
    datasets: any held-out triple referencing an entity or relation absent
    from the training split is moved back into training.
    """
    total = len(triples)
    n_valid = int(total * valid_fraction)
    n_test = int(total * test_fraction)
    n_train = total - n_valid - n_test

    train = triples[:n_train]
    heldout = triples[n_train:]

    seen_entities = set(train[:, 0].tolist()) | set(train[:, 2].tolist())
    seen_relations = set(train[:, 1].tolist())
    ok = np.asarray(
        [
            (s in seen_entities and o in seen_entities and r in seen_relations)
            for s, r, o in heldout
        ],
        dtype=bool,
    )
    train = np.concatenate([train, heldout[~ok]], axis=0)
    heldout = heldout[ok]

    n_valid = min(n_valid, len(heldout))
    valid = heldout[:n_valid]
    test = heldout[n_valid:]
    return train, valid, test
