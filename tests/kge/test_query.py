"""Tests for the label-level query-answering API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kge import top_objects, top_subjects


class TestTopObjects:
    def test_returns_k_ranked_answers(self, trained_distmult, tiny_graph):
        answers = top_objects(trained_distmult, tiny_graph, "e_0", "r_0", k=5)
        assert len(answers) == 5
        assert [a.rank for a in answers] == [1, 2, 3, 4, 5]
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)

    def test_exclude_known_filters_training_objects(
        self, trained_distmult, tiny_graph
    ):
        # Pick an (s, r) with at least one known object.
        s, r, o = map(int, tiny_graph.train.array[0])
        subject = tiny_graph.entities.label_of(s)
        relation = tiny_graph.relations.label_of(r)
        answers = top_objects(
            trained_distmult, tiny_graph, subject, relation,
            k=tiny_graph.num_entities, exclude_known=True,
        )
        known_label = tiny_graph.entities.label_of(o)
        assert all(a.entity != known_label for a in answers)
        assert all(not a.known for a in answers)

    def test_include_known_marks_training_facts(
        self, trained_distmult, tiny_graph
    ):
        s, r, _ = map(int, tiny_graph.train.array[0])
        answers = top_objects(
            trained_distmult,
            tiny_graph,
            tiny_graph.entities.label_of(s),
            tiny_graph.relations.label_of(r),
            k=tiny_graph.num_entities,
            exclude_known=False,
        )
        assert len(answers) == tiny_graph.num_entities
        assert any(a.known for a in answers)

    def test_unknown_labels_raise(self, trained_distmult, tiny_graph):
        with pytest.raises(KeyError):
            top_objects(trained_distmult, tiny_graph, "nobody", "r_0")
        with pytest.raises(KeyError):
            top_objects(trained_distmult, tiny_graph, "e_0", "unrelated")

    def test_scores_match_model(self, trained_distmult, tiny_graph):
        answers = top_objects(
            trained_distmult, tiny_graph, "e_0", "r_0", k=3, exclude_known=False
        )
        raw = trained_distmult.scores_sp(np.asarray([0]), np.asarray([0]))[0]
        for answer in answers:
            entity_id = tiny_graph.entities.id_of(answer.entity)
            assert answer.score == pytest.approx(raw[entity_id])


class TestTopSubjects:
    def test_returns_ranked_subjects(self, trained_distmult, tiny_graph):
        answers = top_subjects(trained_distmult, tiny_graph, "r_0", "e_1", k=4)
        assert len(answers) == 4
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)

    def test_consistent_with_scores_po(self, trained_distmult, tiny_graph):
        answers = top_subjects(
            trained_distmult, tiny_graph, "r_0", "e_1", k=1, exclude_known=False
        )
        raw = trained_distmult.scores_po(np.asarray([0]), np.asarray([1]))[0]
        assert answers[0].score == pytest.approx(raw.max())
