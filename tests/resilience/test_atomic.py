"""Atomic publication and content-checksum tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    atomic_savez,
    atomic_write,
    atomic_write_bytes,
    digest_arrays,
)


def _no_temp_residue(directory):
    return not list(directory.glob("*.tmp"))


class TestAtomicWrite:
    def test_publishes_content(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert _no_temp_residue(tmp_path)

    def test_overwrites_previous_file(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_crash_mid_write_leaves_old_file_intact(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"old")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_write(path) as tmp:
                tmp.write_bytes(b"half-writt")
                raise RuntimeError("boom")
        assert path.read_bytes() == b"old"
        assert _no_temp_residue(tmp_path)

    def test_crash_before_first_publish_leaves_nothing(self, tmp_path):
        path = tmp_path / "fresh.bin"
        with pytest.raises(RuntimeError):
            with atomic_write(path) as tmp:
                tmp.write_bytes(b"x")
                raise RuntimeError("boom")
        assert not path.exists()
        assert _no_temp_residue(tmp_path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.bin"
        atomic_write_bytes(path, b"deep")
        assert path.read_bytes() == b"deep"


class TestAtomicSavez:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        first = np.arange(12.0).reshape(3, 4)
        second = np.asarray([1, 2, 3], dtype=np.int64)
        atomic_savez(path, first=first, second=second)
        with np.load(path) as stored:
            np.testing.assert_array_equal(stored["first"], first)
            np.testing.assert_array_equal(stored["second"], second)
        assert _no_temp_residue(tmp_path)

    def test_filename_is_exactly_the_requested_path(self, tmp_path):
        # numpy appends ".npz" to plain string paths; the handle-based
        # writer must not, or temp names would never match their target.
        path = tmp_path / "cache.model"
        atomic_savez(path, data=np.zeros(2))
        assert path.is_file()
        assert list(tmp_path.iterdir()) == [path]


class TestDigestArrays:
    def test_order_independent(self):
        a = np.arange(6.0)
        b = np.ones((2, 2))
        assert digest_arrays({"a": a, "b": b}) == digest_arrays({"b": b, "a": a})

    def test_content_sensitivity(self):
        base = digest_arrays({"a": np.zeros(4)})
        changed = np.zeros(4)
        changed[2] = 1e-300  # tiniest possible bit-level change
        assert digest_arrays({"a": changed}) != base

    def test_dtype_and_shape_sensitivity(self):
        flat = np.zeros(4, dtype=np.float64)
        assert digest_arrays({"a": flat}) != digest_arrays(
            {"a": flat.reshape(2, 2)}
        )
        assert digest_arrays({"a": flat}) != digest_arrays(
            {"a": np.zeros(8, dtype=np.float32)}
        )

    def test_key_sensitivity(self):
        array = np.ones(3)
        assert digest_arrays({"a": array}) != digest_arrays({"b": array})
