"""RPR006 — dtype and general code hygiene.

Three checks share this id:

* **float64 dtype hygiene** — the autograd engine is float64-only (the
  ``Tensor`` constructor coerces), so introducing ``np.float32`` /
  ``np.float16`` (or their ``dtype="float32"`` string forms) anywhere
  creates silent up/down-casts at the tape boundary and non-reproducible
  precision drift between code paths.
* **mutable default arguments** — the classic shared-state trap.
* **bare ``except:``** — swallows ``KeyboardInterrupt``/``SystemExit``
  and hides real failures in long experiment runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, numpy_aliases, register_rule

__all__ = ["HygieneRule"]

_NARROW_FLOAT_ATTRS = frozenset({"float32", "float16", "half", "single"})
_NARROW_FLOAT_STRINGS = frozenset({"float32", "float16"})
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


@register_rule
class HygieneRule(Rule):
    rule_id = "RPR006"
    name = "hygiene"
    description = (
        "float64-only dtype discipline, no mutable default arguments, "
        "no bare except clauses"
    )
    rationale = (
        "Three classic reproducibility leaks: float32 arrays change "
        "ranking ties between machines, mutable defaults accumulate "
        "state across calls, and bare except catches KeyboardInterrupt "
        "and SystemExit along with real faults."
    )
    example = (
        "def f(x=[], dtype=np.float32):   # RPR006 twice\n"
        "    try:\n"
        "        ...\n"
        "    except:                      # RPR006: bare except\n"
        "        pass\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _NARROW_FLOAT_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in np_names
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.value.id}.{node.attr} breaks the engine's "
                    "float64-only dtype discipline",
                )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg == "dtype"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value in _NARROW_FLOAT_STRINGS
                    ):
                        yield self.finding(
                            ctx,
                            keyword.value,
                            f"dtype={keyword.value.value!r} breaks the "
                            "engine's float64-only dtype discipline",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {node.name}(); "
                            "use None and initialise inside the function",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )
