"""End-to-end chaos matrix: injected faults at every fabric site, across
``run_matrix`` / ``discover_facts`` / ``hyperparameter_grid``, serial and
parallel.

Every test follows the same contract the ``repro chaos`` CLI asserts:
after recovery the deterministic result fields are bit-identical to a
fault-free baseline, the journal is replayable (zero corrupt lines), and
no shared-memory segment leaks.  Worker-side fault counters are
per-process (each fresh worker re-arms the plan from the environment),
which is why SIGKILL faults exhaust a cell's in-run budget and recovery
happens on a resumed, fault-free pass.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro import faults
from repro.discovery import discover_facts
from repro.experiments import clear_model_cache, run_matrix
from repro.experiments.gridsearch import hyperparameter_grid
from repro.faults import FAULT_PLAN_ENV, FaultPlan
from repro.parallel import Cell, ParallelScheduler, WorkerCrashError, registry
from repro.resilience import FaultInjectedError, RunJournal

CAMPAIGN = dict(
    datasets=("wn18rr-like",),
    models=("distmult",),
    strategies=("uniform_random", "entity_frequency"),
    top_n=50,
    max_candidates=100,
    seed=0,
)

KILLED_KEY = "wn18rr-like/distmult/uniform_random"


def det_fields(rows):
    """The deterministic comparison tuple (repr makes NaN comparable)."""
    return [
        (r.dataset, r.model, r.strategy, r.status, r.num_facts, repr(r.mrr),
         repr(r.test_mrr))
        for r in rows
    ]


def assert_no_leaked_segments():
    assert registry.registered_segments() == []
    assert registry.orphaned_segments() == []


@pytest.fixture(scope="module", autouse=True)
def chaos_model_cache(tmp_path_factory):
    """One on-disk model cache for the whole module: train once, reuse."""
    path = tmp_path_factory.mktemp("chaos-model-cache")
    previous = os.environ.get("REPRO_MODEL_CACHE")
    os.environ["REPRO_MODEL_CACHE"] = str(path)
    clear_model_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_MODEL_CACHE", None)
    else:
        os.environ["REPRO_MODEL_CACHE"] = previous
    clear_model_cache()


@pytest.fixture(autouse=True)
def _pristine_faults(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def baseline_rows(chaos_model_cache):
    return run_matrix(**CAMPAIGN)


def stall_once_worker(context, payload, rng):
    """Hang (as if wedged in a syscall) the first time the cell runs."""
    sentinel = context["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        time.sleep(60.0)
    return payload


def echo_worker(context, payload, rng):
    return payload


class TestWatchdog:
    def test_overdue_cell_is_killed_charged_and_retried(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            stall_once_worker,
            1,
            context={"sentinel": str(tmp_path / "stalled")},
            journal=journal,
            max_attempts=3,
            on_error="degrade",
            cell_deadline=2.0,
        )
        outcomes = scheduler.run([Cell(key="cell-0", payload=7)])
        assert outcomes[0].status == "ok"
        assert outcomes[0].value == 7
        assert outcomes[0].attempts == 2
        timeouts = journal.read().by_event("cell_timeout")
        assert len(timeouts) == 1
        assert "deadline" in timeouts[0]["error"]
        assert_no_leaked_segments()

    def test_silent_pool_is_detected_by_heartbeat_staleness(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            stall_once_worker,
            1,
            context={"sentinel": str(tmp_path / "stalled")},
            journal=journal,
            max_attempts=3,
            on_error="degrade",
            # Must exceed pool spawn latency (~1-2s), or the fresh pool
            # of the retry is itself declared stalled before it can beat.
            heartbeat_timeout=4.0,
        )
        outcomes = scheduler.run([Cell(key="cell-0", payload=3)])
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2
        timeouts = journal.read().by_event("cell_timeout")
        assert len(timeouts) == 1
        assert "stalled" in timeouts[0]["error"]
        assert_no_leaked_segments()

    def test_failed_heartbeat_emit_charges_the_cell_not_the_pool(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with faults.inject(FaultPlan().fail("heartbeat_emit")):
            scheduler = ParallelScheduler(
                echo_worker,
                1,
                journal=journal,
                max_attempts=3,
                on_error="degrade",
                heartbeat_timeout=30.0,
            )
            outcomes = scheduler.run(
                [Cell(key=f"cell-{i}", payload=i) for i in range(2)]
            )
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert sorted(o.value for o in outcomes) == [0, 1]
        failed = journal.read().by_event("cell_failed")
        assert len(failed) == 1
        assert "FaultInjectedError" in failed[0]["error"]
        assert_no_leaked_segments()


class TestMatrixChaos:
    def test_sigkilled_cell_recovers_bit_identically_on_resume(
        self, baseline_rows, tmp_path
    ):
        journal_path = tmp_path / "run.jsonl"
        plan = FaultPlan().kill("worker_dispatch", match="*uniform_random*")
        with faults.inject(plan):
            chaos_rows = run_matrix(
                **CAMPAIGN,
                journal_path=journal_path,
                max_cell_attempts=2,
                on_error="degrade",
                procs=2,
            )
        killed = next(r for r in chaos_rows if r.strategy == "uniform_random")
        assert killed.status == "failed"
        assert "WorkerCrashError" in killed.error

        recovered = run_matrix(
            **CAMPAIGN,
            journal_path=journal_path,
            max_cell_attempts=6,
            on_error="degrade",
            procs=2,
        )
        assert det_fields(recovered) == det_fields(baseline_rows)
        view = RunJournal(journal_path).read()
        assert view.corrupt_lines == 0
        assert view.version == 2
        assert view.by_event("cell_failed")  # the crashes were journalled
        assert_no_leaked_segments()

    def test_lost_attach_is_retried_within_one_pass(self, baseline_rows, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        with faults.inject(FaultPlan().fail("shared_attach")):
            rows = run_matrix(
                **CAMPAIGN,
                journal_path=journal_path,
                max_cell_attempts=3,
                on_error="degrade",
                procs=2,
            )
        assert det_fields(rows) == det_fields(baseline_rows)
        failed = RunJournal(journal_path).read().by_event("cell_failed")
        assert failed  # at least one worker lost its first attach
        assert all("FaultInjectedError" in record["error"] for record in failed)
        assert_no_leaked_segments()

    def test_torn_success_record_heals_on_resume(self, baseline_rows, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        with faults.inject(FaultPlan().torn(match="cell_succeeded")):
            with pytest.raises(FaultInjectedError):
                run_matrix(
                    **CAMPAIGN, journal_path=journal_path, max_cell_attempts=3
                )
        journal = RunJournal(journal_path)
        assert journal.read().corrupt_lines == 1  # the torn tail, untouched
        faults.clear()
        recovered = run_matrix(
            **CAMPAIGN, journal_path=journal_path, max_cell_attempts=3
        )
        assert det_fields(recovered) == det_fields(baseline_rows)
        view = journal.read()
        assert view.corrupt_lines == 0  # resume quarantined the torn tail
        assert journal.quarantine_path.is_file()
        assert_no_leaked_segments()

    def test_parent_side_cell_fault_reruns_within_one_pass(
        self, baseline_rows, tmp_path
    ):
        journal_path = tmp_path / "run.jsonl"
        with faults.inject(FaultPlan().fail("matrix_cell", match="*entity_frequency*")):
            rows = run_matrix(
                **CAMPAIGN,
                journal_path=journal_path,
                max_cell_attempts=3,
                on_error="degrade",
            )
        assert det_fields(rows) == det_fields(baseline_rows)
        failed = RunJournal(journal_path).read().by_event("cell_failed")
        assert len(failed) == 1
        assert failed[0]["cell"] == "wn18rr-like/distmult/entity_frequency"
        assert_no_leaked_segments()


class TestDiscoveryChaos:
    def test_sigkilled_relation_exhausts_then_clean_run_matches(
        self, trained_distmult, tiny_graph
    ):
        kwargs = dict(
            strategy="uniform_random",
            top_n=15,
            max_candidates=36,
            relations=[1],
            seed=9,
        )
        serial = discover_facts(trained_distmult, tiny_graph, **kwargs)
        with faults.inject(FaultPlan().kill("worker_dispatch", match="relation/1")):
            with pytest.raises(WorkerCrashError):
                discover_facts(trained_distmult, tiny_graph, procs=2, **kwargs)
        assert_no_leaked_segments()
        faults.clear()
        recovered = discover_facts(trained_distmult, tiny_graph, procs=2, **kwargs)
        np.testing.assert_array_equal(recovered.facts, serial.facts)
        np.testing.assert_array_equal(recovered.ranks, serial.ranks)
        assert recovered.per_relation == serial.per_relation
        assert_no_leaked_segments()

    def test_failed_dispatch_propagates_and_leaves_no_segments(
        self, trained_distmult, tiny_graph
    ):
        kwargs = dict(
            strategy="entity_frequency", top_n=20, max_candidates=50, seed=3
        )
        serial = discover_facts(trained_distmult, tiny_graph, **kwargs)
        with faults.inject(FaultPlan().fail("worker_dispatch")):
            with pytest.raises(FaultInjectedError):
                discover_facts(trained_distmult, tiny_graph, procs=2, **kwargs)
        assert_no_leaked_segments()
        faults.clear()
        recovered = discover_facts(trained_distmult, tiny_graph, procs=2, **kwargs)
        np.testing.assert_array_equal(recovered.facts, serial.facts)
        np.testing.assert_array_equal(recovered.ranks, serial.ranks)
        assert recovered.mrr() == serial.mrr()


class TestGridChaos:
    def test_failed_grid_point_propagates_then_clean_run_matches(
        self, trained_distmult, tiny_graph
    ):
        kwargs = dict(
            strategy="uniform_random",
            top_n_values=(10, 25),
            max_candidates_values=(36,),
            seed=5,
        )
        serial = hyperparameter_grid(trained_distmult, tiny_graph, **kwargs)
        with faults.inject(FaultPlan().fail("worker_dispatch", match="grid/10/36")):
            with pytest.raises(FaultInjectedError):
                hyperparameter_grid(trained_distmult, tiny_graph, procs=2, **kwargs)
        assert_no_leaked_segments()
        faults.clear()
        recovered = hyperparameter_grid(
            trained_distmult, tiny_graph, procs=2, **kwargs
        )
        assert len(recovered) == len(serial) == 2
        for serial_point, parallel_point in zip(serial, recovered):
            assert parallel_point.top_n == serial_point.top_n
            assert parallel_point.max_candidates == serial_point.max_candidates
            assert parallel_point.num_facts == serial_point.num_facts
            assert parallel_point.mrr == serial_point.mrr


class TestJournalCompat:
    def test_v1_journal_resumes_under_the_v2_writer(self, baseline_rows, tmp_path):
        # A campaign journalled by the pre-envelope format: bare records,
        # no header, no checksums.  Resume must replay its completed cell
        # bit-identically and append v2 envelopes after it.
        journal_path = tmp_path / "run.jsonl"
        done = next(r for r in baseline_rows if r.strategy == "uniform_random")
        v1_records = [
            {"event": "cell_started", "cell": KILLED_KEY, "attempt": 1},
            {"event": "cell_succeeded", "cell": KILLED_KEY, "row": done.to_dict()},
        ]
        journal_path.write_text(
            "".join(json.dumps(record) + "\n" for record in v1_records),
            encoding="utf-8",
        )
        rows = run_matrix(**CAMPAIGN, journal_path=journal_path, max_cell_attempts=3)
        assert det_fields(rows) == det_fields(baseline_rows)
        view = RunJournal(journal_path).read()
        assert view.corrupt_lines == 0
        assert view.version == 1  # headerless file keeps its v1 identity
        # The replayed cell was not re-run; only the other cell started.
        started = view.by_event("cell_started")
        assert [r["cell"] for r in started].count(KILLED_KEY) == 1
        # New appends are enveloped even inside a v1 file.
        tail = journal_path.read_text(encoding="utf-8").strip().splitlines()[-1]
        assert set(json.loads(tail)) == {"crc", "record"}
