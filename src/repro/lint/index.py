"""Pass 1 of the whole-program analyzer: per-module fact extraction.

:func:`build_module_info` distils one parsed module into a
:class:`ModuleInfo` — a JSON-serialisable record of everything the
inter-procedural rules (RPR010–RPR014) need: the import/binding table
with relative imports resolved to absolute dotted targets, the top-level
symbol table and ``__all__``, per-class attribute/lock maps, and
per-function call sites, raise sites, ``try`` shapes, shared-state
mutations (with the ``with``-statement lock context they run under) and
determinism hazards.

The extraction is purely syntactic and local to one module, which is
what makes the on-disk cache sound: a ``ModuleInfo`` is a function of
the module source alone, so a content-digest match proves the cached
record is still valid.  Everything cross-module (name resolution, the
call graph, reachability) lives in :mod:`repro.lint.callgraph` and is
recomputed per run from the cached per-module records.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Binding",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "HandlerInfo",
    "Hazard",
    "ModuleInfo",
    "Mutation",
    "RaiseSite",
    "TryInfo",
    "build_module_info",
    "dotted_name",
    "scipy_sparse_aliases",
    "sparse_locals",
]

#: Constructor names of the scipy.sparse matrix/array types whose ``.data``
#: attribute is a raw value buffer, not an autograd ``Tensor.data``.
_SPARSE_CONSTRUCTORS = frozenset(
    {
        "bsr_matrix", "coo_matrix", "csc_matrix", "csr_matrix",
        "dia_matrix", "dok_matrix", "lil_matrix",
        "bsr_array", "coo_array", "csc_array", "csr_array",
        "dia_array", "dok_array", "lil_array",
    }
)

_EXECUTOR_NAMES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
        "setdefault", "update",
    }
)

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore"})


def dotted_name(expr: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name-rooted chains."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return tuple(reversed(parts))
    return None


def scipy_sparse_aliases(tree: ast.Module) -> frozenset[str]:
    """Names the module binds to the ``scipy.sparse`` package."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "scipy.sparse":
                    aliases.add(alias.asname or "scipy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "scipy":
                for alias in node.names:
                    if alias.name == "sparse":
                        aliases.add(alias.asname or "sparse")
    return frozenset(aliases)


def _is_sparse_constructor(call: ast.expr, sparse_names: frozenset[str]) -> bool:
    if not isinstance(call, ast.Call):
        return False
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    if dotted[-1] not in _SPARSE_CONSTRUCTORS:
        return False
    # Either ``sp.csr_matrix(...)`` through a scipy.sparse alias or a
    # bare ``csr_matrix(...)`` imported from it.
    return len(dotted) == 1 or dotted[0] in sparse_names


def sparse_locals(func: ast.AST, sparse_names: frozenset[str]) -> frozenset[str]:
    """Names in ``func`` statically known to hold scipy sparse matrices.

    A name qualifies when every assignment to it inside ``func`` binds a
    scipy.sparse constructor call (``sp.csr_matrix(...)``) — reassigned
    or ambiguous names never qualify, keeping the inference sound for
    RPR003's non-Tensor exemption.
    """
    assigned: dict[str, bool] = {}
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                is_sparse = _is_sparse_constructor(value, sparse_names)
                previous = assigned.get(target.id)
                assigned[target.id] = is_sparse if previous is None else (
                    previous and is_sparse
                )
    return frozenset(name for name, ok in assigned.items() if ok)


# ----------------------------------------------------------------------
# Serializable fact records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One resolved-later call expression: the dotted callee + location."""

    parts: tuple[str, ...]
    lineno: int
    col: int

    def to_list(self) -> list:
        return [list(self.parts), self.lineno, self.col]

    @classmethod
    def from_list(cls, data: list) -> "CallSite":
        return cls(tuple(data[0]), data[1], data[2])


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise X(...)`` site with the dotted exception name."""

    parts: tuple[str, ...]
    lineno: int
    col: int

    def to_list(self) -> list:
        return [list(self.parts), self.lineno, self.col]

    @classmethod
    def from_list(cls, data: list) -> "RaiseSite":
        return cls(tuple(data[0]), data[1], data[2])


@dataclass(frozen=True)
class Hazard:
    """A determinism hazard (RPR010): unseeded RNG or unordered iteration."""

    kind: str  # "unseeded-rng" | "set-iteration"
    detail: str
    lineno: int
    col: int

    def to_list(self) -> list:
        return [self.kind, self.detail, self.lineno, self.col]

    @classmethod
    def from_list(cls, data: list) -> "Hazard":
        return cls(data[0], data[1], data[2], data[3])


@dataclass(frozen=True)
class Mutation:
    """A write to shared state: instance attributes or module globals.

    ``scope`` is ``"self"`` (attribute chain rooted at the instance) or
    ``"global"`` (module-level name).  ``path`` is the attribute chain
    (``("stats", "rows_scored")``) or the global name.  ``withs`` holds
    the dotted context expressions of every enclosing ``with`` item, so
    the concurrency rule can decide whether an owning lock was held.
    """

    scope: str
    path: tuple[str, ...]
    lineno: int
    col: int
    withs: tuple[tuple[str, ...], ...]

    def to_list(self) -> list:
        return [
            self.scope, list(self.path), self.lineno, self.col,
            [list(w) for w in self.withs],
        ]

    @classmethod
    def from_list(cls, data: list) -> "Mutation":
        return cls(
            data[0], tuple(data[1]), data[2], data[3],
            tuple(tuple(w) for w in data[4]),
        )


@dataclass(frozen=True)
class TryInfo:
    """Shape of one ``try`` statement: body calls and handler clauses."""

    calls: tuple[CallSite, ...]
    raises: tuple[RaiseSite, ...]
    handlers: tuple["HandlerInfo", ...]

    def to_dict(self) -> dict:
        return {
            "calls": [c.to_list() for c in self.calls],
            "raises": [r.to_list() for r in self.raises],
            "handlers": [h.to_dict() for h in self.handlers],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TryInfo":
        return cls(
            calls=tuple(CallSite.from_list(c) for c in data["calls"]),
            raises=tuple(RaiseSite.from_list(r) for r in data["raises"]),
            handlers=tuple(HandlerInfo.from_dict(h) for h in data["handlers"]),
        )


@dataclass(frozen=True)
class HandlerInfo:
    """One ``except`` clause: caught types, location, re-raise flag."""

    types: tuple[tuple[str, ...], ...]  # empty → bare ``except:``
    lineno: int
    col: int
    reraises: bool

    def to_dict(self) -> dict:
        return {
            "types": [list(t) for t in self.types],
            "lineno": self.lineno,
            "col": self.col,
            "reraises": self.reraises,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HandlerInfo":
        return cls(
            types=tuple(tuple(t) for t in data["types"]),
            lineno=data["lineno"],
            col=data["col"],
            reraises=data["reraises"],
        )


@dataclass
class FunctionInfo:
    """Facts about one function, method, or nested closure."""

    name: str
    qual: str  # e.g. "RankingEngine._iter_row_chunks.<locals>.account"
    cls: str | None
    lineno: int
    col: int
    calls: tuple[CallSite, ...] = ()
    raises: tuple[RaiseSite, ...] = ()
    hazards: tuple[Hazard, ...] = ()
    mutations: tuple[Mutation, ...] = ()
    tries: tuple[TryInfo, ...] = ()
    spawns_pool: bool = False
    submitted: tuple[tuple[str, ...], ...] = ()
    nested: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "qual": self.qual,
            "cls": self.cls,
            "lineno": self.lineno,
            "col": self.col,
            "calls": [c.to_list() for c in self.calls],
            "raises": [r.to_list() for r in self.raises],
            "hazards": [h.to_list() for h in self.hazards],
            "mutations": [m.to_list() for m in self.mutations],
            "tries": [t.to_dict() for t in self.tries],
            "spawns_pool": self.spawns_pool,
            "submitted": [list(s) for s in self.submitted],
            "nested": dict(self.nested),
            "local_types": {k: list(v) for k, v in self.local_types.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            name=data["name"],
            qual=data["qual"],
            cls=data["cls"],
            lineno=data["lineno"],
            col=data["col"],
            calls=tuple(CallSite.from_list(c) for c in data["calls"]),
            raises=tuple(RaiseSite.from_list(r) for r in data["raises"]),
            hazards=tuple(Hazard.from_list(h) for h in data["hazards"]),
            mutations=tuple(Mutation.from_list(m) for m in data["mutations"]),
            tries=tuple(TryInfo.from_dict(t) for t in data["tries"]),
            spawns_pool=data["spawns_pool"],
            submitted=tuple(tuple(s) for s in data["submitted"]),
            nested=dict(data["nested"]),
            local_types={k: tuple(v) for k, v in data["local_types"].items()},
        )


@dataclass
class ClassInfo:
    """Facts about one top-level class."""

    name: str
    lineno: int
    col: int
    bases: tuple[tuple[str, ...], ...] = ()
    methods: dict[str, str] = field(default_factory=dict)  # name -> func qual
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    lock_attrs: tuple[str, ...] = ()
    threadlocal_attrs: tuple[str, ...] = ()
    summary_keys: tuple[tuple[str, int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "bases": [list(b) for b in self.bases],
            "methods": dict(self.methods),
            "attr_types": {k: list(v) for k, v in self.attr_types.items()},
            "lock_attrs": list(self.lock_attrs),
            "threadlocal_attrs": list(self.threadlocal_attrs),
            "summary_keys": [list(k) for k in self.summary_keys],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassInfo":
        return cls(
            name=data["name"],
            lineno=data["lineno"],
            col=data["col"],
            bases=tuple(tuple(b) for b in data["bases"]),
            methods=dict(data["methods"]),
            attr_types={k: tuple(v) for k, v in data["attr_types"].items()},
            lock_attrs=tuple(data["lock_attrs"]),
            threadlocal_attrs=tuple(data["threadlocal_attrs"]),
            summary_keys=tuple(
                (k[0], k[1], k[2]) for k in data["summary_keys"]
            ),
        )


@dataclass
class Binding:
    """One top-level name bound by an import, with its absolute target."""

    name: str
    target: str  # absolute dotted target, e.g. "repro.kg.triples.TripleSet"
    kind: str  # "module" | "symbol"
    lineno: int
    col: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Binding":
        return cls(**data)


@dataclass
class ModuleInfo:
    """The complete per-module fact record (one cache entry)."""

    module: str
    path: str
    is_package: bool = False
    digest: str = ""
    bindings: dict[str, Binding] = field(default_factory=dict)
    definitions: dict[str, str] = field(default_factory=dict)  # name -> kind
    all_names: tuple[str, ...] | None = None
    all_span: tuple[int, int, int, int] | None = None  # lineno,col,end_l,end_c
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    module_locks: tuple[str, ...] = ()
    #: (name, origin, lineno, col) of top-level straight-line bindings, in
    #: source order — the shadow check's input.  ``origin`` is the import
    #: target for imports, ``"<def>"`` for defs/classes, ``"<assign>"``
    #: for assignments.
    toplevel_order: tuple[tuple[str, str, int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "digest": self.digest,
            "bindings": {k: b.to_dict() for k, b in self.bindings.items()},
            "definitions": dict(self.definitions),
            "all_names": list(self.all_names) if self.all_names is not None else None,
            "all_span": list(self.all_span) if self.all_span else None,
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "module_locks": list(self.module_locks),
            "toplevel_order": [list(t) for t in self.toplevel_order],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleInfo":
        return cls(
            module=data["module"],
            path=data["path"],
            is_package=data["is_package"],
            digest=data["digest"],
            bindings={
                k: Binding.from_dict(b) for k, b in data["bindings"].items()
            },
            definitions=dict(data["definitions"]),
            all_names=(
                tuple(data["all_names"]) if data["all_names"] is not None else None
            ),
            all_span=tuple(data["all_span"]) if data["all_span"] else None,
            functions={
                k: FunctionInfo.from_dict(f) for k, f in data["functions"].items()
            },
            classes={
                k: ClassInfo.from_dict(c) for k, c in data["classes"].items()
            },
            module_locks=tuple(data["module_locks"]),
            toplevel_order=tuple(
                (t[0], t[1], t[2], t[3]) for t in data["toplevel_order"]
            ),
        )

    def imported_project_modules(self, prefix: str = "repro.") -> frozenset[str]:
        """Project modules this module's bindings point into."""
        out = set()
        for binding in self.bindings.values():
            target = binding.target
            if target.startswith(prefix) or target == prefix.rstrip("."):
                out.add(target)
        return frozenset(out)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _relative_base(module: str, is_package: bool, level: int) -> str:
    """Absolute package a relative import of ``level`` resolves against."""
    parts = module.split(".") if module else []
    anchor = parts if is_package else parts[:-1]
    if level - 1 >= len(anchor):
        return ""
    keep = len(anchor) - (level - 1)
    return ".".join(anchor[:keep])


def _literal_str_elements(node: ast.expr) -> tuple[str, ...] | None:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


def _is_lock_call(value: ast.expr) -> bool:
    if isinstance(value, ast.IfExp):
        return _is_lock_call(value.body) or _is_lock_call(value.orelse)
    if not isinstance(value, ast.Call):
        return False
    dotted = dotted_name(value.func)
    return dotted is not None and dotted[-1] in _LOCK_FACTORIES


def _is_threadlocal_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = dotted_name(value.func)
    return dotted is not None and dotted[-1] == "local"


def _value_type(value: ast.expr) -> tuple[str, ...] | None:
    """Dotted constructor of a value when it is a plain ``Cls(...)`` call."""
    if isinstance(value, ast.IfExp):
        return _value_type(value.body) or _value_type(value.orelse)
    if isinstance(value, ast.Call):
        return dotted_name(value.func)
    return None


class _SetTracker:
    """Function-local inference of names that definitely hold sets."""

    def __init__(self, func: ast.AST) -> None:
        assigned: dict[str, bool] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        is_set = self._is_set_expr(node.value, frozenset())
                        previous = assigned.get(target.id)
                        assigned[target.id] = (
                            is_set if previous is None else previous and is_set
                        )
        self.set_names = frozenset(n for n, ok in assigned.items() if ok)

    @staticmethod
    def _is_set_expr(expr: ast.expr, set_names: frozenset[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and dotted[-1] in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.Name) and expr.id in set_names:
            return True
        return False

    def is_set_expr(self, expr: ast.expr) -> bool:
        return self._is_set_expr(expr, self.set_names)


_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "array", "fromiter", "stack", "concatenate"})


class _FunctionExtractor(ast.NodeVisitor):
    """Collect call/raise/mutation/hazard facts for one function body."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        cls_name: str | None,
        global_names: frozenset[str],
    ) -> None:
        self.func = func
        self.qual = qual
        self.cls_name = cls_name
        self.global_names = global_names
        self.calls: list[CallSite] = []
        self.raises: list[RaiseSite] = []
        self.hazards: list[Hazard] = []
        self.mutations: list[Mutation] = []
        self.tries: list[TryInfo] = []
        self.spawns_pool = False
        self.submitted: list[tuple[str, ...]] = []
        self.local_types: dict[str, tuple[str, ...]] = {}
        self.nested: dict[str, str] = {}
        self._with_stack: list[tuple[str, ...]] = []
        self._declared_globals: set[str] = set()
        self._executor_locals: set[str] = set()
        self._sets = _SetTracker(func)
        self._is_init = func.name in ("__init__", "__new__")

    # -- driving --------------------------------------------------------
    def run(self) -> FunctionInfo:
        for stmt in self.func.body:
            self.visit(stmt)
        return FunctionInfo(
            name=self.func.name,
            qual=self.qual,
            cls=self.cls_name,
            lineno=self.func.lineno,
            col=self.func.col_offset,
            calls=tuple(self.calls),
            raises=tuple(self.raises),
            hazards=tuple(self.hazards),
            mutations=tuple(self.mutations),
            tries=tuple(self.tries),
            spawns_pool=self.spawns_pool,
            submitted=tuple(self.submitted),
            nested=dict(self.nested),
            local_types=dict(self.local_types),
        )

    # Nested defs are extracted separately by the module walker; don't
    # descend so their facts aren't double-counted here.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.nested[node.name] = f"{self.qual}.<locals>.{node.name}"

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._declared_globals.update(node.names)

    # -- with/lock context ---------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            call_target = expr.func if isinstance(expr, ast.Call) else expr
            dotted = dotted_name(call_target)
            if dotted is not None:
                if dotted[-1] in _EXECUTOR_NAMES:
                    self.spawns_pool = True
                    if item.optional_vars is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        self._executor_locals.add(item.optional_vars.id)
                self._with_stack.append(dotted)
                pushed += 1
            if isinstance(expr, ast.Call):
                self._record_call(expr)
                for child in ast.iter_child_nodes(expr):
                    self.visit(child)
        for stmt in node.body:
            self.visit(stmt)
        del self._with_stack[len(self._with_stack) - pushed :]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- try/except ----------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        body_calls: list[CallSite] = []
        body_raises: list[RaiseSite] = []
        mark = len(self.calls)
        raise_mark = len(self.raises)
        for stmt in node.body:
            self.visit(stmt)
        body_calls = self.calls[mark:]
        body_raises = self.raises[raise_mark:]
        handlers = []
        for handler in node.handlers:
            types: tuple[tuple[str, ...], ...] = ()
            if handler.type is not None:
                if isinstance(handler.type, ast.Tuple):
                    types = tuple(
                        d
                        for d in (dotted_name(e) for e in handler.type.elts)
                        if d is not None
                    )
                else:
                    dotted = dotted_name(handler.type)
                    types = (dotted,) if dotted is not None else ()
            reraises = any(
                isinstance(sub, ast.Raise) for sub in ast.walk(handler)
            )
            handlers.append(
                HandlerInfo(
                    types=types,
                    lineno=handler.lineno,
                    col=handler.col_offset + 1,
                    reraises=reraises,
                )
            )
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)
        self.tries.append(
            TryInfo(
                calls=tuple(body_calls),
                raises=tuple(body_raises),
                handlers=tuple(handlers),
            )
        )

    # -- raises --------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        if target is not None:
            dotted = dotted_name(target)
            if dotted is not None:
                self.raises.append(
                    RaiseSite(dotted, node.lineno, node.col_offset + 1)
                )
        self.generic_visit(node)

    # -- calls, hazards, pools -----------------------------------------
    def _record_call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        self.calls.append(CallSite(dotted, node.lineno, node.col_offset + 1))
        tail = dotted[-1]
        if tail in _EXECUTOR_NAMES:
            self.spawns_pool = True
        if tail in ("submit", "map") and len(dotted) >= 2:
            receiver = dotted[0]
            if receiver in self._executor_locals or (
                tail == "submit" and dotted[:-1] == ("self", "_pool")
            ):
                for arg in node.args[:1]:
                    fn = dotted_name(arg)
                    if fn is not None:
                        self.submitted.append(fn)
        if tail == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    fn = dotted_name(keyword.value)
                    if fn is not None:
                        self.submitted.append(fn)
                        self.spawns_pool = True
        # Unseeded RNG: default_rng()/SeedSequence() with no arguments.
        if tail in ("default_rng", "SeedSequence") and not node.args:
            self.hazards.append(
                Hazard(
                    "unseeded-rng",
                    f"{'.'.join(dotted)}() without a seed",
                    node.lineno,
                    node.col_offset + 1,
                )
            )
        # Ordered materialisation of an unordered set.
        if tail in _ORDER_SINKS and node.args:
            first = node.args[0]
            if self._sets.is_set_expr(first):
                self.hazards.append(
                    Hazard(
                        "set-iteration",
                        f"{tail}() over a set has no deterministic order",
                        first.lineno,
                        first.col_offset + 1,
                    )
                )
        # Mutating method calls on shared state.
        if tail in _MUTATOR_METHODS and len(dotted) >= 2:
            self._record_mutation_chain(dotted[:-1], node.lineno, node.col_offset + 1)
        if tail == "setattr" and len(dotted) == 1 and node.args:
            obj = dotted_name(node.args[0])
            if obj == ("self",) and not self._is_init:
                self.mutations.append(
                    Mutation(
                        "self", ("*",), node.lineno, node.col_offset + 1,
                        tuple(self._with_stack),
                    )
                )

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._sets.is_set_expr(node.iter):
            self.hazards.append(
                Hazard(
                    "set-iteration",
                    "iterating a set has no deterministic order",
                    node.iter.lineno,
                    node.iter.col_offset + 1,
                )
            )
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            if self._sets.is_set_expr(gen.iter):
                self.hazards.append(
                    Hazard(
                        "set-iteration",
                        "iterating a set has no deterministic order",
                        gen.iter.lineno,
                        gen.iter.col_offset + 1,
                    )
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    visit_GeneratorExp = visit_ListComp  # type: ignore[assignment]
    visit_DictComp = visit_ListComp  # type: ignore[assignment]

    # Set comprehensions produce sets — iterating a set *into* a set
    # stays unordered-in, unordered-out and is not a hazard.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    # -- mutations ------------------------------------------------------
    def _record_mutation_chain(
        self, chain: tuple[str, ...], lineno: int, col: int
    ) -> None:
        root = chain[0]
        if root in ("self", "cls") and len(chain) >= 2:
            if not self._is_init:
                self.mutations.append(
                    Mutation(
                        "self", chain[1:], lineno, col, tuple(self._with_stack)
                    )
                )
        elif len(chain) >= 1 and root in self._declared_globals | self.global_names:
            self.mutations.append(
                Mutation(
                    "global", chain, lineno, col, tuple(self._with_stack)
                )
            )

    def _record_assignment_target(self, target: ast.expr, lineno: int, col: int) -> None:
        subscripted = False
        while isinstance(target, (ast.Subscript, ast.Starred)):
            subscripted = isinstance(target, ast.Subscript) or subscripted
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_assignment_target(element, lineno, col)
            return
        dotted = dotted_name(target)
        if dotted is None:
            return
        if len(dotted) == 1:
            name = dotted[0]
            # ``name = ...`` rebinds a local unless declared global, but
            # ``name[k] = ...`` mutates whatever module object it names.
            if name in self._declared_globals or (
                subscripted and name in self.global_names
            ):
                self.mutations.append(
                    Mutation("global", dotted, lineno, col, tuple(self._with_stack))
                )
            return
        self._record_mutation_chain(dotted, lineno, col)

    def _record_assign(self, node, targets: list[ast.expr], value) -> None:
        for target in targets:
            self._record_assignment_target(
                target, node.lineno, node.col_offset + 1
            )
            if isinstance(target, ast.Name) and value is not None:
                inferred = _value_type(value)
                if inferred is not None:
                    self.local_types.setdefault(target.id, inferred)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assign(node, list(node.targets), node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_assignment_target(node.target, node.lineno, node.col_offset + 1)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assign(node, [node.target], node.value)
            self.generic_visit(node)


def _summary_payload_keys(
    func: ast.FunctionDef,
) -> tuple[tuple[str, int, int], ...]:
    """Literal string keys of the dict a ``summary()`` method returns.

    Handles the two idioms used across the codebase: returning a dict
    literal directly (possibly wrapped in ``DeprecatedKeyDict(out, ...)``)
    and building ``out = {...}`` then returning it (or the wrapper).
    """
    named_literals: dict[str, ast.Dict] = {}
    returned: ast.expr | None = None
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    named_literals.setdefault(target.id, node.value)
        elif isinstance(node, ast.Return) and node.value is not None:
            returned = node.value

    payload: ast.expr | None = returned
    if isinstance(payload, ast.Call) and payload.args:
        callee = dotted_name(payload.func)
        if callee is not None and callee[-1] in ("DeprecatedKeyDict", "dict"):
            payload = payload.args[0]
    if isinstance(payload, ast.Name):
        payload = named_literals.get(payload.id)
    if not isinstance(payload, ast.Dict):
        return ()
    keys = []
    for key in payload.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append((key.value, key.lineno, key.col_offset + 1))
    return tuple(keys)


def build_module_info(
    module: str, path: str, tree: ast.Module, digest: str = ""
) -> ModuleInfo:
    """Extract the full fact record for one parsed module."""
    from pathlib import Path

    is_package = Path(path).name == "__init__.py"
    info = ModuleInfo(
        module=module, path=path, is_package=is_package, digest=digest
    )

    toplevel: list[tuple[str, str, int, int]] = []
    module_lock_names: list[str] = []
    global_names: set[str] = set()

    def bind_import(node: ast.stmt, depth0: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.bindings[bound] = Binding(
                    bound, target, "module", node.lineno, node.col_offset + 1
                )
                if depth0:
                    toplevel.append(
                        (bound, target, node.lineno, node.col_offset + 1)
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(module, is_package, node.level)
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                target = f"{source}.{alias.name}" if source else alias.name
                info.bindings[bound] = Binding(
                    bound, target, "symbol", node.lineno, node.col_offset + 1
                )
                if depth0:
                    toplevel.append(
                        (bound, target, node.lineno, node.col_offset + 1)
                    )

    def collect_body(body: list[ast.stmt], depth0: bool) -> None:
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                bind_import(node, depth0)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name.split(".")[0]
                    info.definitions.setdefault(bound, "import")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.definitions[node.name] = "function"
                if depth0:
                    toplevel.append(
                        (node.name, "<def>", node.lineno, node.col_offset + 1)
                    )
            elif isinstance(node, ast.ClassDef):
                info.definitions[node.name] = "class"
                if depth0:
                    toplevel.append(
                        (node.name, "<def>", node.lineno, node.col_offset + 1)
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.definitions.setdefault(target.id, "assign")
                        global_names.add(target.id)
                        if target.id == "__all__" and info.all_names is None:
                            info.all_names = _literal_str_elements(node.value)
                            info.all_span = (
                                node.lineno,
                                node.col_offset,
                                node.end_lineno or node.lineno,
                                node.end_col_offset or 0,
                            )
                        if _is_lock_call(node.value):
                            module_lock_names.append(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.definitions.setdefault(node.target.id, "assign")
                global_names.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                collect_body(node.body, depth0=False)
                if isinstance(node, ast.Try):
                    for handler in node.handlers:
                        collect_body(handler.body, depth0=False)
                    collect_body(node.orelse, depth0=False)
                    collect_body(node.finalbody, depth0=False)
                else:
                    collect_body(node.orelse, depth0=False)

    collect_body(tree.body, depth0=True)
    info.module_locks = tuple(module_lock_names)
    info.toplevel_order = tuple(toplevel)
    frozen_globals = frozenset(global_names)

    def find_direct_nested(
        func: ast.AST, name: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """First def named ``name`` inside ``func``, not crossing other defs."""
        stack: list[ast.AST] = list(func.body)  # type: ignore[attr-defined]
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == name:
                    return node
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    stack.append(child)
        return None

    def extract_function(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        cls_name: str | None,
    ) -> None:
        extracted = _FunctionExtractor(func, qual, cls_name, frozen_globals).run()
        info.functions[qual] = extracted
        for name, nested_qual in extracted.nested.items():
            nested_def = find_direct_nested(func, name)
            if nested_def is not None:
                extract_function(nested_def, nested_qual, cls_name)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            cls_info = ClassInfo(
                name=node.name, lineno=node.lineno, col=node.col_offset + 1
            )
            bases = []
            for base in node.bases:
                dotted = dotted_name(base)
                if dotted is not None:
                    bases.append(dotted)
            cls_info.bases = tuple(bases)
            lock_attrs: list[str] = []
            threadlocal_attrs: list[str] = []
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{stmt.name}"
                    cls_info.methods[stmt.name] = qual
                    extract_function(stmt, qual, node.name)
                    if stmt.name == "summary":
                        cls_info.summary_keys = _summary_payload_keys(stmt)
                    # Instance attribute types and locks, from any method.
                    for sub in ast.walk(stmt):
                        if not isinstance(sub, ast.Assign):
                            continue
                        for target in sub.targets:
                            dotted = dotted_name(target)
                            if (
                                dotted is not None
                                and len(dotted) == 2
                                and dotted[0] == "self"
                            ):
                                attr = dotted[1]
                                if _is_lock_call(sub.value):
                                    lock_attrs.append(attr)
                                elif _is_threadlocal_call(sub.value):
                                    threadlocal_attrs.append(attr)
                                else:
                                    inferred = _value_type(sub.value)
                                    if inferred is not None:
                                        cls_info.attr_types.setdefault(
                                            attr, inferred
                                        )
            cls_info.lock_attrs = tuple(dict.fromkeys(lock_attrs))
            cls_info.threadlocal_attrs = tuple(dict.fromkeys(threadlocal_attrs))
            info.classes[node.name] = cls_info

    return info
