"""The :class:`KnowledgeGraph` container: vocabularies plus split triple sets.

Mirrors the standard benchmark layout used by LibKGE-style libraries: a
train/validation/test split over a shared entity and relation id space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .triples import TripleSet
from .vocabulary import Vocabulary

__all__ = ["KnowledgeGraph"]


@dataclass
class KnowledgeGraph:
    """A knowledge graph with train/validation/test splits.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"fb15k237-like"``).
    entities, relations:
        Label vocabularies; ids index embedding rows directly.
    train, valid, test:
        The three splits as :class:`TripleSet` instances over the shared
        id space.
    """

    name: str
    entities: Vocabulary
    relations: Vocabulary
    train: TripleSet
    valid: TripleSet
    test: TripleSet
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for split_name, split in (
            ("train", self.train),
            ("valid", self.valid),
            ("test", self.test),
        ):
            if split.num_entities != len(self.entities):
                raise ValueError(
                    f"{split_name} split entity space ({split.num_entities}) "
                    f"does not match vocabulary ({len(self.entities)})"
                )
            if split.num_relations != len(self.relations):
                raise ValueError(
                    f"{split_name} split relation space ({split.num_relations}) "
                    f"does not match vocabulary ({len(self.relations)})"
                )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_triples(self) -> int:
        """Total triples across all splits."""
        return len(self.train) + len(self.valid) + len(self.test)

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, train={len(self.train)}, "
            f"valid={len(self.valid)}, test={len(self.test)})"
        )

    # ------------------------------------------------------------------
    # Derived triple sets
    # ------------------------------------------------------------------
    def all_triples(self) -> TripleSet:
        """Union of train, validation and test triples."""
        return self.train.union(self.valid).union(self.test)

    def complement_size(self) -> int:
        """Size of the complement graph, |E|²·|R| − |G| over all splits."""
        return (
            self.num_entities**2 * self.num_relations - len(self.all_triples())
        )

    def average_relations_per_entity(self) -> float:
        """2·M / N — the paper quotes ≈4.5 for WN18RR to explain sparsity."""
        if self.num_entities == 0:
            return 0.0
        return 2.0 * len(self.train) / self.num_entities

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        num_entities: int,
        num_relations: int,
        train: np.ndarray,
        valid: np.ndarray,
        test: np.ndarray,
        entity_labels: list[str] | None = None,
        relation_labels: list[str] | None = None,
        metadata: dict | None = None,
    ) -> "KnowledgeGraph":
        """Build a graph from raw integer triple arrays.

        Labels default to synthetic ``e_i`` / ``r_j`` names.
        """
        entities = (
            Vocabulary(entity_labels)
            if entity_labels is not None
            else Vocabulary.from_range("e", num_entities)
        )
        relations = (
            Vocabulary(relation_labels)
            if relation_labels is not None
            else Vocabulary.from_range("r", num_relations)
        )
        if len(entities) != num_entities or len(relations) != num_relations:
            raise ValueError("label list lengths must match declared sizes")
        return cls(
            name=name,
            entities=entities,
            relations=relations,
            train=TripleSet(train, num_entities, num_relations),
            valid=TripleSet(valid, num_entities, num_relations),
            test=TripleSet(test, num_entities, num_relations),
            metadata=dict(metadata or {}),
        )

    def label_triple(self, triple: tuple[int, int, int]) -> tuple[str, str, str]:
        """Translate an id triple into its labels."""
        s, r, o = triple
        return (
            self.entities.label_of(int(s)),
            self.relations.label_of(int(r)),
            self.entities.label_of(int(o)),
        )
