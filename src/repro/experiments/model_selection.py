"""Model hyperparameter search — the paper's "Model Training" step.

The paper tunes every (dataset, model) pair before discovery ("we conduct
hyperparameter tuning on all possible combinations ... for instance
through grid search") and praises LibKGE's grid-search syntax.  This
module provides that driver: declare grids over model and training
parameters, train every combination, and rank them by validation MRR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kg.graph import KnowledgeGraph
from ..kge.config import ModelConfig, TrainConfig, expand_grid
from ..kge.evaluation import evaluate_ranking
from ..kge.training import TrainingResult, fit

__all__ = ["Trial", "SearchResult", "grid_search_models"]


@dataclass
class Trial:
    """One trained configuration and its validation score."""

    model_config: ModelConfig
    train_config: TrainConfig
    valid_mrr: float
    valid_hits10: float
    training: TrainingResult = field(repr=False)

    def describe(self) -> dict[str, Any]:
        """Flat dict of the varied parameters plus the scores."""
        out: dict[str, Any] = {
            "model": self.model_config.name,
            "dim": self.model_config.dim,
            "lr": self.train_config.lr,
            "epochs": self.train_config.epochs,
            "valid_mrr": self.valid_mrr,
            "valid_hits10": self.valid_hits10,
        }
        out.update(self.model_config.options)
        return out


@dataclass
class SearchResult:
    """All trials of a grid search, best first."""

    trials: list[Trial]

    @property
    def best(self) -> Trial:
        return self.trials[0]

    def leaderboard(self) -> list[dict[str, Any]]:
        return [trial.describe() for trial in self.trials]


def grid_search_models(
    graph: KnowledgeGraph,
    base_model: ModelConfig,
    base_train: TrainConfig,
    model_grid: dict[str, list[Any]] | None = None,
    train_grid: dict[str, list[Any]] | None = None,
    option_grid: dict[str, list[Any]] | None = None,
) -> SearchResult:
    """Train every grid combination and rank by filtered validation MRR.

    Parameters
    ----------
    base_model, base_train:
        The configuration to vary.
    model_grid:
        Grid over :class:`ModelConfig` fields (e.g. ``{"dim": [16, 32]}``).
    train_grid:
        Grid over :class:`TrainConfig` fields (e.g. ``{"lr": [0.01, 0.05]}``).
    option_grid:
        Grid over model-specific options (e.g. TransE's
        ``{"norm": ["l1", "l2"]}``).
    """
    trials: list[Trial] = []
    for model_overrides in expand_grid(model_grid or {}):
        for train_overrides in expand_grid(train_grid or {}):
            for option_overrides in expand_grid(option_grid or {}):
                options = dict(base_model.options)
                options.update(option_overrides)
                model_config = base_model.with_(options=options, **model_overrides)
                train_config = base_train.with_(**train_overrides)
                result = fit(graph, model_config, train_config)
                metrics = evaluate_ranking(result.model, graph, split="valid")
                trials.append(
                    Trial(
                        model_config=model_config,
                        train_config=train_config,
                        valid_mrr=metrics.mrr,
                        valid_hits10=metrics.hits.get(10, float("nan")),
                        training=result,
                    )
                )
    if not trials:
        raise ValueError("empty search space")
    trials.sort(key=lambda t: t.valid_mrr, reverse=True)
    return SearchResult(trials=trials)
