"""A generic retry executor with exponential backoff and deadlines.

``with_retries`` is the one retry loop in the codebase — training runs,
campaign cells, and cache rebuilds all go through it so attempt
accounting, backoff, and deadline enforcement behave identically
everywhere.  Determinism matters here: backoff jitter draws from an
*injected* ``np.random.Generator`` (never the global RNG), and both the
clock and the sleep function are injectable so tests run without real
waiting.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from . import faults
from .deadline import Deadline
from .errors import DeadlineExceededError, RetryBudgetExceededError

__all__ = ["RetryPolicy", "with_retries"]

logger = logging.getLogger(__name__)

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how spaced, and how long to keep trying.

    ``base_delay`` grows by ``multiplier`` per failed attempt, capped at
    ``max_delay``; ``jitter`` widens each delay to ``delay · (1 ± jitter)``
    using the generator passed to :func:`with_retries`.
    ``attempt_deadline`` marks a single attempt as overdue (an overdue
    *failure* stops retrying immediately); ``total_deadline`` bounds the
    whole retry loop including backoff sleeps.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0
    attempt_deadline: float | None = None
    total_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter > 0.0 and rng is not None and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


def with_retries(
    fn: Callable[[int], T],
    policy: RetryPolicy | None = None,
    *,
    retry_on: tuple[type[Exception], ...] = (Exception,),
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    label: str = "with_retries",
    deadline: Deadline | None = None,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or the budget runs out.

    ``fn`` receives the 0-based attempt index so it can derive
    attempt-specific state (e.g. a spawned RNG stream) instead of
    replaying the identical failing draw.  Exhausting ``max_attempts``
    or a policy deadline raises :class:`RetryBudgetExceededError` with
    the last failure as ``__cause__``; exceptions outside ``retry_on``
    propagate immediately.

    ``deadline`` is the caller's *outer* wall-clock budget (typically a
    per-cell :class:`Deadline` threaded down from the campaign).  Serial
    code cannot preempt a running attempt, so enforcement is
    cooperative: no attempt starts past the deadline, and no backoff
    sleep is entered that the deadline would outlast — both raise
    :class:`DeadlineExceededError`.
    """
    policy = policy or RetryPolicy()
    started = clock()
    last_error: Exception | None = None
    for attempt in range(policy.max_attempts):
        if deadline is not None:
            deadline.check(label)
        attempt_start = clock()
        stalled = faults.stall_seconds(label, str(attempt))
        try:
            result = fn(attempt)
        except retry_on as error:  # noqa: PERF203 — the loop IS the feature
            last_error = error
            elapsed = clock() - attempt_start + stalled
            total = clock() - started + stalled
            overdue = (
                policy.attempt_deadline is not None
                and elapsed > policy.attempt_deadline
            )
            logger.warning(
                "%s attempt %d/%d failed after %.2fs: %s",
                label, attempt + 1, policy.max_attempts, elapsed, error,
            )
            if attempt + 1 >= policy.max_attempts:
                break
            if overdue:
                raise RetryBudgetExceededError(
                    f"{label}: attempt {attempt + 1} overshot its "
                    f"{policy.attempt_deadline:.1f}s deadline ({elapsed:.1f}s)",
                    attempts=attempt + 1,
                    elapsed=total,
                ) from error
            delay = policy.delay_for(attempt, rng)
            if (
                policy.total_deadline is not None
                and total + delay > policy.total_deadline
            ):
                raise RetryBudgetExceededError(
                    f"{label}: total deadline {policy.total_deadline:.1f}s "
                    f"exhausted after {attempt + 1} attempts",
                    attempts=attempt + 1,
                    elapsed=total,
                ) from error
            if deadline is not None and deadline.remaining() <= delay:
                raise DeadlineExceededError(
                    f"{label}: deadline would expire during {delay:.1f}s backoff",
                    budget=deadline.seconds,
                    overdue=max(0.0, -deadline.remaining()),
                ) from error
            if delay > 0.0:
                sleep(delay)
        else:
            return result
    raise RetryBudgetExceededError(
        f"{label}: no success after {policy.max_attempts} attempts",
        attempts=policy.max_attempts,
        elapsed=clock() - started,
    ) from last_error
