"""Benchmark dataset replicas and the dataset registry.

The paper evaluates on FB15K-237, WN18RR, YAGO3-10 and CoDEx-L.  Those
graphs are not downloadable in this offline environment, so each is
replaced by a deterministic synthetic *replica* roughly 50–100× smaller but
matched on the shape statistics that drive every finding in the paper:

========================  ========  =======  ==========  =================
 statistic                 FB15K     WN18RR   YAGO3-10    CoDEx-L
========================  ========  =======  ==========  =================
 triples per entity (≈)     18.7      2.1       8.8        7.1
 relation count             high      tiny      small      medium
 clustering level           dense     sparse    medium     medium
 size rank                  2         smallest  largest    3
========================  ========  =======  ==========  =================

The replicas preserve those orderings (verified by tests), which is what
the paper's conclusions — WN18RR fastest runtimes, FB15K-237 best quality,
YAGO3-10 lowest efficiency — depend on.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .generators import KGProfile, generate_kg, generate_kg_streaming
from .graph import KnowledgeGraph
from .io import kg_store_exists, load_kg_store

__all__ = [
    "DATASET_PROFILES",
    "FULL_SCALE_PROFILES",
    "PAPER_METADATA",
    "PaperDatasetMetadata",
    "available_datasets",
    "available_full_datasets",
    "load_dataset",
    "load_full_dataset",
    "resolve_dataset",
]


@dataclass(frozen=True)
class PaperDatasetMetadata:
    """Table 1 of the paper: metadata of the original benchmark datasets."""

    name: str
    training: int
    validation: int
    test: int
    entities: int
    relations: int


PAPER_METADATA: dict[str, PaperDatasetMetadata] = {
    "fb15k237": PaperDatasetMetadata("FB15K-237", 272_115, 17_535, 20_429, 14_541, 237),
    "wn18rr": PaperDatasetMetadata("WN18RR", 86_835, 3_034, 3_134, 40_943, 11),
    "yago310": PaperDatasetMetadata("YAGO3-10", 1_079_040, 5_000, 5_000, 123_182, 37),
    "codexl": PaperDatasetMetadata("CoDEx-L", 550_800, 30_600, 30_600, 77_951, 69),
}


# Replica profiles: entities scaled ~50–100× down; triples scaled to keep the
# triples-per-entity ratio of the original; clustering dialled so the
# average-clustering ordering of Figure 3 holds (FB > YAGO ≈ CoDEx > WN).
DATASET_PROFILES: dict[str, KGProfile] = {
    "fb15k237-like": KGProfile(
        name="fb15k237-like",
        num_entities=300,
        num_relations=36,
        num_triples=6200,
        valid_fraction=0.055,
        test_fraction=0.065,
        num_types=6,
        popularity_exponent=0.85,
        triangle_closure_prob=0.32,
        relation_skew=0.7,
        pairs_per_relation=3,
        seed=1237,
        metadata={"paper_dataset": "fb15k237"},
    ),
    "wn18rr-like": KGProfile(
        name="wn18rr-like",
        num_entities=800,
        num_relations=11,
        num_triples=1850,
        valid_fraction=0.033,
        test_fraction=0.034,
        num_types=10,
        popularity_exponent=0.75,
        triangle_closure_prob=0.015,
        relation_skew=0.9,
        pairs_per_relation=2,
        seed=1811,
        metadata={"paper_dataset": "wn18rr"},
    ),
    "yago310-like": KGProfile(
        name="yago310-like",
        num_entities=1200,
        num_relations=13,
        num_triples=10600,
        valid_fraction=0.0046,
        test_fraction=0.0046,
        num_types=8,
        popularity_exponent=0.95,
        triangle_closure_prob=0.14,
        relation_skew=0.9,
        pairs_per_relation=2,
        seed=1310,
        metadata={"paper_dataset": "yago310"},
    ),
    "codexl-like": KGProfile(
        name="codexl-like",
        num_entities=780,
        num_relations=20,
        num_triples=5600,
        valid_fraction=0.05,
        test_fraction=0.05,
        num_types=8,
        popularity_exponent=0.9,
        triangle_closure_prob=0.12,
        relation_skew=0.8,
        pairs_per_relation=2,
        seed=1690,
        metadata={"paper_dataset": "codexl"},
    ),
}

# Full-scale replicas: entity/relation/triple counts taken directly from
# Table 1 (``PAPER_METADATA``), not scaled down.  These only exist on the
# out-of-core path — :func:`load_full_dataset` streams them into a
# mmap-backed KG store on first use and reopens the store afterwards, so
# the ~1.09M-triple YAGO3-10 replica never transits through the
# in-memory generator.
FULL_SCALE_PROFILES: dict[str, KGProfile] = {
    "yago310-full": KGProfile(
        name="yago310-full",
        num_entities=PAPER_METADATA["yago310"].entities,
        num_relations=PAPER_METADATA["yago310"].relations,
        num_triples=(
            PAPER_METADATA["yago310"].training
            + PAPER_METADATA["yago310"].validation
            + PAPER_METADATA["yago310"].test
        ),
        valid_fraction=PAPER_METADATA["yago310"].validation
        / (
            PAPER_METADATA["yago310"].training
            + PAPER_METADATA["yago310"].validation
            + PAPER_METADATA["yago310"].test
        ),
        test_fraction=PAPER_METADATA["yago310"].test
        / (
            PAPER_METADATA["yago310"].training
            + PAPER_METADATA["yago310"].validation
            + PAPER_METADATA["yago310"].test
        ),
        num_types=8,
        popularity_exponent=0.95,
        triangle_closure_prob=0.14,
        relation_skew=0.9,
        pairs_per_relation=2,
        seed=310,
        metadata={"paper_dataset": "yago310", "full_scale": True},
    ),
}

_CACHE: dict[str, KnowledgeGraph] = {}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`, in the paper's order."""
    return list(DATASET_PROFILES)


def available_full_datasets() -> list[str]:
    """Names accepted by :func:`load_full_dataset`."""
    return list(FULL_SCALE_PROFILES)


def load_dataset(name: str, use_cache: bool = True) -> KnowledgeGraph:
    """Load (generate) a benchmark replica by name.

    Generation is deterministic, so two calls with the same name return
    structurally identical graphs; with ``use_cache`` (the default) the
    same object is returned.
    """
    if name not in DATASET_PROFILES:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    if use_cache and name in _CACHE:
        return _CACHE[name]
    graph = generate_kg(DATASET_PROFILES[name])
    if use_cache:
        _CACHE[name] = graph
    return graph


def _default_store_root() -> Path:
    """Where generated full-scale stores live between runs."""
    override = os.environ.get("REPRO_STORE_ROOT")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-kg-stores"


def load_full_dataset(
    name: str,
    directory: Path | str | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> KnowledgeGraph:
    """Load a full-scale replica, generating its KG store on first use.

    ``directory`` defaults to ``$REPRO_STORE_ROOT/<name>`` (falling back
    to the system temp dir).  If a complete store already exists there it
    is reopened — mmap views, millisecond load — otherwise the streaming
    generator builds it first.  ``mmap=False`` materialises the store
    into RAM after loading (backend-equivalence testing).
    """
    if name not in FULL_SCALE_PROFILES:
        raise KeyError(
            f"unknown full-scale dataset {name!r}; "
            f"available: {available_full_datasets()}"
        )
    store_dir = (
        Path(directory) if directory is not None else _default_store_root() / name
    )
    if not kg_store_exists(store_dir):
        generate_kg_streaming(FULL_SCALE_PROFILES[name], store_dir)
    return load_kg_store(store_dir, mmap=mmap, verify=verify)


def resolve_dataset(name: str) -> KnowledgeGraph:
    """Resolve any dataset spelling: registry name, KG store, or TSV dir.

    One resolution order shared by the CLI and the serve-layer model
    registry: built-in replica names, full-scale replica names, a
    ``store:``-prefixed (or bare) KG store directory, then a directory of
    ``train/valid/test`` TSV files.  Raises :class:`KeyError` when
    nothing matches — callers choose how to surface it.
    """
    from .io import load_dataset_dir

    if name in DATASET_PROFILES:
        return load_dataset(name)
    if name in FULL_SCALE_PROFILES:
        return load_full_dataset(name)
    path = Path(name[len("store:") :] if name.startswith("store:") else name)
    if kg_store_exists(path):
        return load_kg_store(path)
    if path.is_dir():
        return load_dataset_dir(path)
    raise KeyError(
        f"unknown dataset {name!r} — not a registry name "
        f"({sorted(DATASET_PROFILES) + sorted(FULL_SCALE_PROFILES)}), "
        f"not a KG store, and not a dataset directory"
    )
