"""Tests for graph transforms and inverse-leakage detection/repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import (
    KnowledgeGraph,
    detect_inverse_leakage,
    filter_relations,
    induced_subgraph,
    remove_inverse_leakage,
)


def build(train, valid=(), test=(), n=10, k=4) -> KnowledgeGraph:
    return KnowledgeGraph.from_arrays(
        name="g",
        num_entities=n,
        num_relations=k,
        train=np.asarray(train, dtype=np.int64).reshape(-1, 3),
        valid=np.asarray(list(valid), dtype=np.int64).reshape(-1, 3),
        test=np.asarray(list(test), dtype=np.int64).reshape(-1, 3),
    )


@pytest.fixture()
def leaky_graph() -> KnowledgeGraph:
    """Relation 1 is the exact inverse of relation 0; relation 2 is
    symmetric; relation 3 is clean."""
    base = [[0, 0, 1], [1, 0, 2], [2, 0, 3], [3, 0, 4]]
    inverse = [[o, 1, s] for s, _, o in base]
    symmetric = [[5, 2, 6], [6, 2, 5], [7, 2, 8], [8, 2, 7]]
    clean = [[0, 3, 5], [1, 3, 6], [2, 3, 7]]
    return build(base + inverse + symmetric + clean)


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, small_graph):
        rng = np.random.default_rng(0)
        subset = rng.choice(small_graph.num_entities, size=40, replace=False)
        sub = induced_subgraph(small_graph, subset)
        # All triples use compacted ids within range.
        arr = sub.train.array
        if arr.size:
            assert arr[:, [0, 2]].max() < sub.num_entities

    def test_compacted_labels_preserved(self, small_graph):
        subset = np.arange(50)
        sub = induced_subgraph(small_graph, subset)
        original_labels = {small_graph.entities.label_of(i) for i in range(50)}
        assert set(sub.entities.labels) <= original_labels

    def test_non_compact_keeps_id_space(self, small_graph):
        subset = np.arange(50)
        sub = induced_subgraph(small_graph, subset, compact=False)
        assert sub.num_entities == small_graph.num_entities
        assert sub.num_relations == small_graph.num_relations

    def test_triples_subset_of_original(self, small_graph):
        subset = np.arange(60)
        sub = induced_subgraph(small_graph, subset, compact=False)
        assert small_graph.train.contains(sub.train.array).all()


class TestFilterRelations:
    def test_keeps_only_selected(self, leaky_graph):
        filtered = filter_relations(leaky_graph, [0, 3])
        assert set(filtered.train.unique_relations()) == {0, 3}

    def test_counts(self, leaky_graph):
        filtered = filter_relations(leaky_graph, [2])
        assert len(filtered.train) == 4


class TestDetectLeakage:
    def test_finds_inverse_pair(self, leaky_graph):
        leaks = detect_inverse_leakage(leaky_graph, threshold=0.8)
        pairs = {(l.relation, l.inverse) for l in leaks}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_finds_symmetric_self_leak(self, leaky_graph):
        leaks = detect_inverse_leakage(leaky_graph, threshold=0.8)
        assert (2, 2) in {(l.relation, l.inverse) for l in leaks}

    def test_clean_relation_not_flagged(self, leaky_graph):
        leaks = detect_inverse_leakage(leaky_graph, threshold=0.5)
        flagged = {l.relation for l in leaks} | {l.inverse for l in leaks}
        assert 3 not in flagged

    def test_overlap_values(self, leaky_graph):
        leaks = detect_inverse_leakage(leaky_graph, threshold=0.8)
        exact = [l for l in leaks if (l.relation, l.inverse) == (0, 1)]
        assert exact[0].overlap == pytest.approx(1.0)

    def test_threshold_validated(self, leaky_graph):
        with pytest.raises(ValueError):
            detect_inverse_leakage(leaky_graph, threshold=0.0)

    def test_partial_overlap_respects_threshold(self):
        # Only half of relation 0 is inverted in relation 1.
        base = [[0, 0, 1], [1, 0, 2], [2, 0, 3], [3, 0, 4]]
        partial_inverse = [[1, 1, 0], [2, 1, 1]]
        graph = build(base + partial_inverse, k=2)
        strict = detect_inverse_leakage(graph, threshold=0.8)
        assert (0, 1) not in {(l.relation, l.inverse) for l in strict}
        loose = detect_inverse_leakage(graph, threshold=0.4)
        assert (0, 1) in {(l.relation, l.inverse) for l in loose}


class TestRemoveLeakage:
    def test_drops_one_of_the_pair(self, leaky_graph):
        repaired, leaks = remove_inverse_leakage(leaky_graph, threshold=0.8)
        remaining = set(repaired.train.unique_relations().tolist())
        # Exactly one of {0, 1} must survive.
        assert len(remaining & {0, 1}) == 1
        assert leaks  # the detection result is returned

    def test_symmetric_relation_survives(self, leaky_graph):
        repaired, _ = remove_inverse_leakage(leaky_graph, threshold=0.8)
        assert 2 in set(repaired.train.unique_relations().tolist())

    def test_clean_relation_survives(self, leaky_graph):
        repaired, _ = remove_inverse_leakage(leaky_graph, threshold=0.8)
        assert 3 in set(repaired.train.unique_relations().tolist())

    def test_repaired_graph_has_no_cross_leaks(self, leaky_graph):
        repaired, _ = remove_inverse_leakage(leaky_graph, threshold=0.8)
        residual = [
            l
            for l in detect_inverse_leakage(repaired, threshold=0.8)
            if l.relation != l.inverse
        ]
        assert residual == []
