"""Label-level query answering: the link-prediction consumer API.

The rest of :mod:`repro.kge` works in integer ids; this module is the
thin human-facing layer that answers ``(subject, relation, ?)`` and
``(?, relation, object)`` queries with labelled, scored entity lists —
what a practitioner actually calls after training a model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from .base import KGEModel

__all__ = ["Answer", "top_objects", "top_subjects"]


@dataclass(frozen=True)
class Answer:
    """One ranked completion of a query."""

    entity: str
    score: float
    rank: int
    known: bool  # already a training fact?


def _answers(
    scores: np.ndarray,
    graph: KnowledgeGraph,
    known_ids: np.ndarray,
    k: int,
    exclude_known: bool,
) -> list[Answer]:
    known_mask = np.zeros(graph.num_entities, dtype=bool)
    known_mask[known_ids] = True
    order = np.argsort(-scores, kind="stable")
    answers: list[Answer] = []
    rank = 0
    for entity_id in order:
        if exclude_known and known_mask[entity_id]:
            continue
        rank += 1
        answers.append(
            Answer(
                entity=graph.entities.label_of(int(entity_id)),
                score=float(scores[entity_id]),
                rank=rank,
                known=bool(known_mask[entity_id]),
            )
        )
        if len(answers) == k:
            break
    return answers


def top_objects(
    model: KGEModel,
    graph: KnowledgeGraph,
    subject: str,
    relation: str,
    k: int = 10,
    exclude_known: bool = True,
) -> list[Answer]:
    """Answer ``(subject, relation, ?)``: the top-k object candidates.

    With ``exclude_known`` (default) entities already linked by a
    training triple are skipped — the discovery setting; pass ``False``
    to see the raw ranking including known facts.
    """
    s = graph.entities.id_of(subject)
    r = graph.relations.id_of(relation)
    with no_grad():
        scores = model.scores_sp(np.asarray([s]), np.asarray([r]))[0]
    known = graph.train.sp_index().get((s, r), np.zeros(0, dtype=np.int64))
    return _answers(scores, graph, known, k, exclude_known)


def top_subjects(
    model: KGEModel,
    graph: KnowledgeGraph,
    relation: str,
    obj: str,
    k: int = 10,
    exclude_known: bool = True,
) -> list[Answer]:
    """Answer ``(?, relation, object)``: the top-k subject candidates."""
    r = graph.relations.id_of(relation)
    o = graph.entities.id_of(obj)
    with no_grad():
        scores = model.scores_po(np.asarray([r]), np.asarray([o]))[0]
    known = graph.train.po_index().get((r, o), np.zeros(0, dtype=np.int64))
    return _answers(scores, graph, known, k, exclude_known)
