"""ComplEx (Trouillon et al., 2016): complex-valued bilinear scoring.

``f(s, r, o) = Re(⟨s, r, conj(o)⟩)``.  Embeddings of total dimension
``dim`` store the real part in the first half and the imaginary part in
the second half, as in LibKGE.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["ComplEx"]


@register_model("complex")
class ComplEx(KGEModel):
    """Complex bilinear factorisation model (provably subsumes HolE)."""

    def __init__(
        self, num_entities: int, num_relations: int, dim: int, seed: int = 0
    ) -> None:
        if dim % 2 != 0:
            raise ValueError(f"ComplEx needs an even dim (re/im halves), got {dim}")
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.rank = dim // 2

    def _split(self, emb: Tensor) -> tuple[Tensor, Tensor]:
        h = self.rank
        return emb[:, :h], emb[:, h:]

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        s_re, s_im = self._split(self.entity_embeddings(s))
        r_re, r_im = self._split(self.relation_embeddings(r))
        o_re, o_im = self._split(self.entity_embeddings(o))
        return (
            (s_re * r_re * o_re)
            + (s_im * r_re * o_im)
            + (s_re * r_im * o_im)
            - (s_im * r_im * o_re)
        ).sum(axis=-1)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        s_re, s_im = self._split(self.entity_embeddings(s))
        r_re, r_im = self._split(self.relation_embeddings(r))
        # Coefficients of the object's real and imaginary parts.
        coef_re = s_re * r_re - s_im * r_im
        coef_im = s_im * r_re + s_re * r_im
        ent = self.entity_embeddings.weight
        h = self.rank
        return coef_re @ ent[:, :h].T + coef_im @ ent[:, h:].T

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        r_re, r_im = self._split(self.relation_embeddings(r))
        o_re, o_im = self._split(self.entity_embeddings(o))
        # Coefficients of the subject's real and imaginary parts.
        coef_re = r_re * o_re + r_im * o_im
        coef_im = r_re * o_im - r_im * o_re
        ent = self.entity_embeddings.weight
        h = self.rank
        return coef_re @ ent[:, :h].T + coef_im @ ent[:, h:].T
