"""Backend equivalence: storage and compute backends never change results.

The substrate PR's contract is *bit-identity everywhere*: a graph served
from mmap views must produce the same statistics, the same strategy
weight vectors, and the same discovered facts as the in-memory path; the
sparse blocked kernels must agree with networkx; and ``procs=2``
discovery must agree with serial.  These tests pin all of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import create_strategy, discover_facts
from repro.kg import (
    GraphStatistics,
    available_datasets,
    load_dataset,
    load_kg_store,
    save_kg_store,
)
from repro.kge import ModelConfig, TrainConfig, fit

#: The paper's six sampling strategies (Figure 1's x-axis).
PAPER_STRATEGIES = (
    "uniform_random",
    "entity_frequency",
    "graph_degree",
    "cluster_coefficient",
    "cluster_triangles",
    "cluster_squares",
)

_METRICS = (
    "degree",
    "subject_frequency",
    "object_frequency",
    "triangles",
    "clustering_coefficient",
    "squares_clustering",
)


@pytest.fixture(scope="module")
def stored_graph(small_graph, tmp_path_factory):
    """The small graph plus its mmap and materialised store reloads."""
    store = tmp_path_factory.mktemp("equiv") / "small"
    save_kg_store(small_graph, store)
    return {
        "original": small_graph,
        "mmap": load_kg_store(store, mmap=True),
        "memory": load_kg_store(store, mmap=False),
    }


class TestStatisticsEquivalence:
    @pytest.mark.parametrize("metric", _METRICS)
    def test_mmap_vs_memory_bitwise(self, stored_graph, metric):
        results = {
            kind: getattr(GraphStatistics(graph.train), metric)
            for kind, graph in stored_graph.items()
        }
        np.testing.assert_array_equal(results["original"], results["mmap"])
        np.testing.assert_array_equal(results["original"], results["memory"])

    @pytest.mark.parametrize("name", available_datasets())
    def test_sparse_vs_networkx_on_all_replicas(self, name):
        graph = load_dataset(name)
        sparse = GraphStatistics(graph.train, backend="sparse")
        nxb = GraphStatistics(graph.train, backend="networkx")
        np.testing.assert_array_equal(sparse.triangles, nxb.triangles)
        np.testing.assert_array_equal(
            sparse.clustering_coefficient, nxb.clustering_coefficient
        )
        assert sparse.average_clustering == nxb.average_clustering

    def test_sparse_vs_networkx_squares(self, small_graph):
        # Squares on the full replicas is what the paper calls
        # prohibitive; the cross-check runs on the integration graph
        # (the replica-scale blocked-vs-reference identity is pinned in
        # tests/kg/test_blocked.py).
        sparse = GraphStatistics(small_graph.train, backend="sparse")
        nxb = GraphStatistics(small_graph.train, backend="networkx")
        np.testing.assert_array_equal(
            sparse.squares_clustering, nxb.squares_clustering
        )


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy_name", PAPER_STRATEGIES)
    def test_weight_vectors_bitwise(self, stored_graph, strategy_name):
        distributions = {}
        for kind, graph in stored_graph.items():
            strategy = create_strategy(strategy_name)
            strategy.prepare(GraphStatistics(graph.train))
            distributions[kind] = {
                side: strategy.distribution(side)
                for side in ("subject", "object")
            }
        for kind in ("mmap", "memory"):
            for side in ("subject", "object"):
                pool_a, probs_a = distributions["original"][side]
                pool_b, probs_b = distributions[kind][side]
                np.testing.assert_array_equal(pool_a, pool_b)
                np.testing.assert_array_equal(probs_a, probs_b)


class TestDiscoveryEquivalence:
    @pytest.fixture(scope="class")
    def trained(self, small_graph):
        result = fit(
            small_graph,
            ModelConfig("distmult", dim=24, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=30, batch_size=128,
                lr=0.05, label_smoothing=0.1,
            ),
        )
        return result.model

    def test_discovered_facts_identical_across_backends(
        self, trained, stored_graph
    ):
        results = {
            kind: discover_facts(
                trained, graph, strategy="entity_frequency",
                top_n=30, max_candidates=150, seed=3,
            )
            for kind, graph in stored_graph.items()
        }
        baseline = results["original"]
        for kind in ("mmap", "memory"):
            np.testing.assert_array_equal(
                baseline.facts, results[kind].facts
            )
            np.testing.assert_array_equal(
                baseline.ranks, results[kind].ranks
            )

    def test_serial_vs_two_procs_identical(self, trained, stored_graph):
        serial = discover_facts(
            trained, stored_graph["mmap"], strategy="entity_frequency",
            top_n=30, max_candidates=150, seed=3, procs=1,
        )
        parallel = discover_facts(
            trained, stored_graph["mmap"], strategy="entity_frequency",
            top_n=30, max_candidates=150, seed=3, procs=2,
        )
        np.testing.assert_array_equal(serial.facts, parallel.facts)
        np.testing.assert_array_equal(serial.ranks, parallel.ranks)
