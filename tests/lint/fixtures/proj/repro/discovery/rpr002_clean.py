"""RPR002 clean fixture: every scoring call sits under no_grad."""

from repro.autograd import no_grad
from repro.kge.evaluation import compute_ranks


def rank_candidates(model, candidates, train):
    with no_grad():
        scores = model.scores_spo(candidates)
        ranks = compute_ranks(model, candidates, filter_triples=train)
    return scores, ranks
