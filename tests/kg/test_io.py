"""TSV dataset I/O round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import (
    KGProfile,
    generate_kg,
    load_dataset_dir,
    read_triples_tsv,
    save_dataset_dir,
    write_triples_tsv,
)


class TestTripleFiles:
    def test_roundtrip(self, tmp_path):
        triples = [("a", "likes", "b"), ("b", "knows", "c")]
        path = tmp_path / "t.txt"
        write_triples_tsv(path, triples)
        assert read_triples_tsv(path) == triples

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a\tr\tb\n\nc\tr\td\n")
        assert len(read_triples_tsv(path)) == 2

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a\tr\tb\nbroken line\n")
        with pytest.raises(ValueError, match=":2:"):
            read_triples_tsv(path)

    def test_labels_with_spaces_survive(self, tmp_path):
        triples = [("New York", "located in", "United States")]
        path = tmp_path / "t.txt"
        write_triples_tsv(path, triples)
        assert read_triples_tsv(path) == triples


class TestDatasetDir:
    def test_roundtrip_preserves_structure(self, tmp_path):
        graph = generate_kg(
            KGProfile(name="io", num_entities=30, num_relations=3, num_triples=150, seed=5)
        )
        save_dataset_dir(graph, tmp_path / "ds")
        loaded = load_dataset_dir(tmp_path / "ds")
        assert loaded.num_entities <= graph.num_entities  # only used labels
        assert len(loaded.train) == len(graph.train)
        assert len(loaded.valid) == len(graph.valid)
        assert len(loaded.test) == len(graph.test)

    def test_roundtrip_preserves_label_triples(self, tmp_path):
        graph = generate_kg(
            KGProfile(name="io", num_entities=20, num_relations=2, num_triples=80, seed=6)
        )
        save_dataset_dir(graph, tmp_path / "ds")
        loaded = load_dataset_dir(tmp_path / "ds")
        original = {graph.label_triple(t) for t in graph.train}
        recovered = {loaded.label_triple(t) for t in loaded.train}
        assert original == recovered

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_dir(tmp_path / "nope")

    def test_name_defaults_to_directory(self, tmp_path):
        graph = generate_kg(
            KGProfile(name="x", num_entities=10, num_relations=1, num_triples=20, seed=1)
        )
        save_dataset_dir(graph, tmp_path / "mykg")
        assert load_dataset_dir(tmp_path / "mykg").name == "mykg"

    def test_heldout_ids_consistent_after_roundtrip(self, tmp_path):
        graph = generate_kg(
            KGProfile(name="io", num_entities=25, num_relations=2, num_triples=120, seed=2)
        )
        save_dataset_dir(graph, tmp_path / "ds")
        loaded = load_dataset_dir(tmp_path / "ds")
        # All split arrays must respect the shared id space.
        for split in (loaded.train, loaded.valid, loaded.test):
            if len(split):
                assert split.array[:, [0, 2]].max() < loaded.num_entities
                assert split.array[:, 1].max() < loaded.num_relations
