"""ParallelScheduler: ordering, determinism, journalling, crash recovery.

Worker functions live at module level — spawn pickles them by qualified
name and re-imports this module inside each worker process, so they can
use only their arguments and the filesystem (sentinel files passed via
``context`` stand in for "state that survives a worker death").
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.parallel import Cell, CellOutcome, ParallelScheduler, WorkerCrashError
from repro.resilience import RunJournal, spawn_stream


def echo_worker(context, payload, rng):
    return payload


def draw_worker(context, payload, rng):
    return float(rng.random())


def context_worker(context, payload, rng):
    return context["offset"] + payload


def sleep_worker(context, payload, rng):
    time.sleep(payload)
    return payload


def failing_worker(context, payload, rng):
    if payload == "boom":
        raise ValueError(f"cannot process {payload}")
    return payload


def kill_once_worker(context, payload, rng):
    """SIGKILL this worker process the first time the cell runs.

    The sentinel file outlives the killed process, so the retry (in a
    fresh process after the pool is rebuilt) completes normally.
    """
    sentinel = context["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return payload


def kill_if_marked_worker(context, payload, rng):
    """SIGKILL while the marker file exists; succeed once it is removed."""
    if os.path.exists(context["marker"]):
        os.kill(os.getpid(), signal.SIGKILL)
    return payload


def cells(n: int) -> list[Cell]:
    return [Cell(key=f"cell-{i}", payload=i) for i in range(n)]


class TestValidation:
    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError, match="procs"):
            ParallelScheduler(echo_worker, procs=0)

    def test_rejects_unknown_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            ParallelScheduler(echo_worker, procs=1, on_error="ignore")


class TestScheduling:
    def test_outcomes_merge_in_submission_order(self):
        """The first cell sleeps long enough that the second finishes
        first; the outcome list must still follow submission order."""
        scheduler = ParallelScheduler(sleep_worker, procs=2, seed=0)
        outcomes = scheduler.run(
            [Cell(key="slow", payload=0.4), Cell(key="fast", payload=0.0)]
        )
        assert [outcome.key for outcome in outcomes] == ["slow", "fast"]
        assert [outcome.value for outcome in outcomes] == [0.4, 0.0]
        assert all(outcome.status == "ok" for outcome in outcomes)

    def test_context_ships_to_every_worker(self):
        scheduler = ParallelScheduler(
            context_worker, procs=2, context={"offset": 100}, seed=0
        )
        outcomes = scheduler.run(cells(4))
        assert [outcome.value for outcome in outcomes] == [100, 101, 102, 103]

    def test_rng_streams_derive_from_seed_index_attempt(self):
        """Workers draw from spawn_stream(seed, index, attempt) — a pure
        function of the dispatch, not of which process ran the cell."""
        scheduler = ParallelScheduler(draw_worker, procs=2, seed=17)
        outcomes = scheduler.run(cells(5))
        expected = [float(spawn_stream(17, i, 1).random()) for i in range(5)]
        assert [outcome.value for outcome in outcomes] == expected


class TestJournalling:
    def test_events_mirror_the_serial_runner(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(echo_worker, procs=2, seed=0, journal=journal)
        outcomes = scheduler.run(cells(3))
        assert len(outcomes) == 3
        view = journal.read()
        started = view.by_event("cell_started")
        succeeded = view.by_event("cell_succeeded")
        assert {record["cell"] for record in started} == {f"cell-{i}" for i in range(3)}
        assert all(record["attempt"] == 1 for record in started)
        assert {record["cell"]: record["row"] for record in succeeded} == {
            f"cell-{i}": i for i in range(3)
        }
        assert view.by_event("cell_failed") == []

    def test_resume_honours_attempts_consumed_by_earlier_runs(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            failing_worker,
            procs=1,
            seed=0,
            journal=journal,
            max_attempts=2,
            on_error="degrade",
        )
        # One attempt already burned (e.g. by a previous campaign run):
        # only one more start fits in the budget.
        outcomes = scheduler.run(
            [Cell(key="bad", payload="boom")], attempts={"bad": 1}
        )
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 2
        assert len(journal.read().by_event("cell_started")) == 1
        # The budget is spent: a further resume dispatches nothing.
        resumed = scheduler.run([], attempts={"bad": 2})
        assert resumed == []


class TestFailureModes:
    def test_raise_mode_propagates_worker_exception(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            failing_worker, procs=1, seed=0, journal=journal, on_error="raise"
        )
        with pytest.raises(ValueError, match="cannot process boom"):
            scheduler.run([Cell(key="bad", payload="boom")])
        failed = journal.read().by_event("cell_failed")
        assert len(failed) == 1
        assert failed[0]["error"].startswith("ValueError")

    def test_degrade_mode_retries_then_emits_failed_outcome(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            failing_worker,
            procs=1,
            seed=0,
            journal=journal,
            max_attempts=2,
            on_error="degrade",
        )
        outcomes = scheduler.run(
            [Cell(key="bad", payload="boom"), Cell(key="good", payload="fine")]
        )
        assert [outcome.key for outcome in outcomes] == ["bad", "good"]
        bad, good = outcomes
        assert bad.status == "failed"
        assert bad.attempts == 2
        assert bad.error.startswith("ValueError")
        assert good.status == "ok" and good.value == "fine"
        view = journal.read()
        assert len(view.by_event("cell_failed")) == 2
        assert len(view.by_event("cell_succeeded")) == 1


class TestWorkerCrashes:
    def test_killed_worker_is_retried_in_a_fresh_pool(self, tmp_path):
        """A SIGKILLed worker consumes an attempt; the pool is rebuilt and
        the retry succeeds — in both on_error modes, as serially a crash
        takes the campaign down and the journal resumes it."""
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = ParallelScheduler(
            kill_once_worker,
            procs=1,
            context={"sentinel": str(tmp_path / "died-once")},
            seed=0,
            journal=journal,
            max_attempts=3,
            on_error="raise",
        )
        outcomes = scheduler.run([Cell(key="fragile", payload="ok")])
        assert outcomes[0].status == "ok"
        assert outcomes[0].value == "ok"
        assert outcomes[0].attempts == 2
        view = journal.read()
        assert [r["attempt"] for r in view.by_event("cell_started")] == [1, 2]
        failed = view.by_event("cell_failed")
        assert len(failed) == 1
        assert failed[0]["error"].startswith("WorkerCrashError")

    def test_crash_budget_exhaustion_raises_worker_crash_error(self, tmp_path):
        marker = tmp_path / "always-crash"
        marker.touch()
        scheduler = ParallelScheduler(
            kill_if_marked_worker,
            procs=1,
            context={"marker": str(marker)},
            seed=0,
            max_attempts=2,
            on_error="raise",
        )
        with pytest.raises(WorkerCrashError):
            scheduler.run([Cell(key="doomed", payload=0)])

    def test_journal_resume_after_killed_worker(self, tmp_path):
        """Mid-campaign worker death, then resume: the journal carries the
        attempt ledger across runs and the cell completes within budget."""
        marker = tmp_path / "crashing"
        marker.touch()
        journal = RunJournal(tmp_path / "run.jsonl")
        run1 = ParallelScheduler(
            kill_if_marked_worker,
            procs=1,
            context={"marker": str(marker)},
            seed=0,
            journal=journal,
            max_attempts=1,
            on_error="degrade",
        )
        outcomes = run1.run([Cell(key="flaky", payload=7)])
        assert outcomes[0].status == "failed"

        # Rebuild the attempt ledger from the journal, exactly as
        # CampaignState.from_journal counts cell_started records.
        view = journal.read()
        attempts: dict[str, int] = {}
        for record in view.by_event("cell_started"):
            attempts[record["cell"]] = attempts.get(record["cell"], 0) + 1
        assert attempts == {"flaky": 1}

        marker.unlink()  # the transient fault is gone on restart
        run2 = ParallelScheduler(
            kill_if_marked_worker,
            procs=1,
            context={"marker": str(marker)},
            seed=0,
            journal=journal,
            max_attempts=2,
            on_error="degrade",
        )
        resumed = run2.run([Cell(key="flaky", payload=7)], attempts=attempts)
        assert resumed[0].status == "ok"
        assert resumed[0].value == 7
        assert resumed[0].attempts == 2
        timeline = [record["event"] for record in journal.read().records]
        assert timeline == [
            "cell_started", "cell_failed", "cell_started", "cell_succeeded",
        ]


def test_cell_outcome_defaults():
    outcome = CellOutcome(key="k")
    assert outcome.status == "ok"
    assert outcome.error == ""
    assert outcome.trace == {}
