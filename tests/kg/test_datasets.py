"""Tests that the dataset replicas preserve the paper's shape orderings."""

from __future__ import annotations

import pytest

from repro.kg import (
    DATASET_PROFILES,
    PAPER_METADATA,
    GraphStatistics,
    available_datasets,
    load_dataset,
)


class TestRegistry:
    def test_four_datasets(self):
        assert available_datasets() == [
            "fb15k237-like",
            "wn18rr-like",
            "yago310-like",
            "codexl-like",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("freebase-full")

    def test_cache_returns_same_object(self):
        assert load_dataset("wn18rr-like") is load_dataset("wn18rr-like")

    def test_no_cache_returns_equal_graph(self):
        cached = load_dataset("wn18rr-like")
        fresh = load_dataset("wn18rr-like", use_cache=False)
        assert fresh is not cached
        assert fresh.train == cached.train

    def test_profiles_link_to_paper_metadata(self):
        for profile in DATASET_PROFILES.values():
            assert profile.metadata["paper_dataset"] in PAPER_METADATA


class TestPaperMetadata:
    def test_table1_values(self):
        """Spot-check Table 1 of the paper."""
        fb = PAPER_METADATA["fb15k237"]
        assert (fb.training, fb.entities, fb.relations) == (272_115, 14_541, 237)
        wn = PAPER_METADATA["wn18rr"]
        assert (wn.entities, wn.relations) == (40_943, 11)
        yago = PAPER_METADATA["yago310"]
        assert yago.training == 1_079_040
        codex = PAPER_METADATA["codexl"]
        assert codex.relations == 69


class TestShapeFidelity:
    """The relative orderings every paper conclusion depends on."""

    @pytest.fixture(scope="class")
    def graphs(self):
        return {name: load_dataset(name) for name in available_datasets()}

    @pytest.fixture(scope="class")
    def clustering(self, graphs):
        return {
            name: GraphStatistics(g.train, backend="sparse").average_clustering
            for name, g in graphs.items()
        }

    def test_density_ratio_matches_paper(self, graphs):
        """Triples-per-entity within 25% of the original datasets."""
        for name, graph in graphs.items():
            paper = PAPER_METADATA[graph.metadata["paper_dataset"]]
            original = paper.training / paper.entities
            replica = len(graph.train) / graph.num_entities
            assert abs(replica - original) / original < 0.25, name

    def test_wn18rr_like_is_sparsest(self, clustering):
        wn = clustering["wn18rr-like"]
        assert all(wn < v for k, v in clustering.items() if k != "wn18rr-like")

    def test_fb15k237_like_is_densest(self, clustering):
        fb = clustering["fb15k237-like"]
        assert all(fb > v for k, v in clustering.items() if k != "fb15k237-like")

    def test_wn18rr_like_avg_relations_per_entity(self, graphs):
        """The paper infers ≈4.5 relations per entity for WN18RR; the
        replica keeps that figure low (sparse) relative to the others."""
        wn = graphs["wn18rr-like"].average_relations_per_entity()
        assert wn < 6.0
        assert wn < graphs["fb15k237-like"].average_relations_per_entity()

    def test_relation_count_ordering(self, graphs):
        """WN18RR has the fewest relations; FB15K-237 the most."""
        counts = {name: g.num_relations for name, g in graphs.items()}
        assert counts["wn18rr-like"] == min(counts.values())
        assert counts["fb15k237-like"] == max(counts.values())

    def test_yago_like_is_largest(self, graphs):
        sizes = {name: len(g.train) for name, g in graphs.items()}
        assert sizes["yago310-like"] == max(sizes.values())

    def test_wn18rr_like_matches_paper_relations_exactly(self, graphs):
        assert graphs["wn18rr-like"].num_relations == 11
