"""Tests for the model grid-search driver."""

from __future__ import annotations

import pytest

from repro.experiments import grid_search_models
from repro.kge import ModelConfig, TrainConfig

_BASE_TRAIN = TrainConfig(
    job="kvsall", loss="bce", epochs=6, batch_size=64, lr=0.05,
    label_smoothing=0.1,
)


class TestGridSearch:
    @pytest.fixture(scope="class")
    def search(self, tiny_graph):
        return grid_search_models(
            tiny_graph,
            ModelConfig("distmult", dim=8, seed=0),
            _BASE_TRAIN,
            model_grid={"dim": [8, 16]},
            train_grid={"lr": [0.01, 0.05]},
        )

    def test_all_combinations_trained(self, search):
        assert len(search.trials) == 4

    def test_sorted_best_first(self, search):
        mrrs = [t.valid_mrr for t in search.trials]
        assert mrrs == sorted(mrrs, reverse=True)
        assert search.best.valid_mrr == mrrs[0]

    def test_leaderboard_rows(self, search):
        rows = search.leaderboard()
        assert len(rows) == 4
        assert {"model", "dim", "lr", "valid_mrr"} <= set(rows[0])

    def test_configs_recorded_faithfully(self, search):
        combos = {(t.model_config.dim, t.train_config.lr) for t in search.trials}
        assert combos == {(8, 0.01), (8, 0.05), (16, 0.01), (16, 0.05)}

    def test_option_grid(self, tiny_graph):
        search = grid_search_models(
            tiny_graph,
            ModelConfig("transe", dim=8, seed=0),
            TrainConfig(
                job="negative_sampling", loss="margin", epochs=4,
                batch_size=64, lr=0.01,
            ),
            option_grid={"norm": ["l1", "l2"]},
        )
        assert len(search.trials) == 2
        norms = {t.model_config.options["norm"] for t in search.trials}
        assert norms == {"l1", "l2"}

    def test_empty_grids_run_single_trial(self, tiny_graph):
        search = grid_search_models(
            tiny_graph, ModelConfig("distmult", dim=8, seed=0), _BASE_TRAIN
        )
        assert len(search.trials) == 1
