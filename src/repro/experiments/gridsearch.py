"""Hyperparameter analysis for ``top_n`` and ``max_candidates`` (paper §4.3).

Runs the discovery algorithm over grids of the two hyperparameters and
records runtime, fact count, MRR and efficiency — the data behind
Figures 7–10.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..discovery.discover import discover_facts
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kge.base import KGEModel
from ..obs import ReportableMixin
from ..resilience import Deadline

__all__ = [
    "GridPoint",
    "GridSearchResult",
    "hyperparameter_grid",
    "PAPER_TOP_N_GRID",
    "PAPER_MAX_CANDIDATES_GRID",
]

#: The grids explored in the paper's §4.3.1.
PAPER_TOP_N_GRID = (100, 200, 300, 400, 500, 700)
PAPER_MAX_CANDIDATES_GRID = (50, 100, 200, 300, 400, 500, 700)


@dataclass
class GridPoint(ReportableMixin):
    """Metrics measured at one (top_n, max_candidates) grid cell."""

    strategy: str
    top_n: int
    max_candidates: int
    num_facts: int
    mrr: float
    runtime_seconds: float
    efficiency_facts_per_hour: float

    def summary(self) -> dict[str, float]:
        return {
            "strategy": self.strategy,
            "top_n": self.top_n,
            "max_candidates": self.max_candidates,
            "facts_count": self.num_facts,
            "mrr": self.mrr,
            "runtime_seconds": self.runtime_seconds,
            "efficiency_facts_per_hour": self.efficiency_facts_per_hour,
        }

    def to_dict(self) -> dict:
        return asdict(self)


#: Canonical name under the unified result API; ``GridPoint`` is the
#: historical spelling and remains the class's ``__name__``.
GridSearchResult = GridPoint


def hyperparameter_grid(
    model: KGEModel,
    graph: KnowledgeGraph,
    strategy: str = "uniform_random",
    top_n_values: tuple[int, ...] = PAPER_TOP_N_GRID,
    max_candidates_values: tuple[int, ...] = PAPER_MAX_CANDIDATES_GRID,
    seed: int = 0,
    stats: GraphStatistics | None = None,
    procs: int = 1,
    cell_deadline: float | None = None,
) -> list[GridPoint]:
    """Run discovery at every (top_n, max_candidates) grid point.

    Statistics are shared across the grid (the weight computation is not
    the variable under study here), matching how the paper holds one
    configuration fixed while sweeping the hyperparameters.

    ``procs > 1`` dispatches grid points across a spawn-based process
    pool (:mod:`repro.parallel`) scoring against a shared-memory copy of
    the model.  Each worker computes its own (deterministic) graph
    statistics, so the deterministic fields of every point are identical
    to the serial sweep; only ``*_seconds`` timings differ.

    ``cell_deadline`` bounds one grid point's wall clock in seconds:
    serially via a cooperative per-point
    :class:`~repro.resilience.Deadline` checked between relations inside
    discovery, in parallel via the scheduler watchdog.
    """
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    grid = [
        (top_n, max_candidates)
        for max_candidates in max_candidates_values
        for top_n in top_n_values
    ]
    if procs > 1:
        return _grid_parallel(
            model, graph, strategy, grid, seed, procs, cell_deadline
        )
    if stats is None:
        stats = GraphStatistics(graph.train)
    points: list[GridPoint] = []
    for top_n, max_candidates in grid:
        deadline = (
            Deadline.after(cell_deadline) if cell_deadline is not None else None
        )
        result = discover_facts(
            model,
            graph,
            strategy=strategy,
            top_n=top_n,
            max_candidates=max_candidates,
            seed=seed,
            stats=stats,
            deadline=deadline,
        )
        points.append(
            GridPoint(
                strategy=result.strategy,
                top_n=top_n,
                max_candidates=max_candidates,
                num_facts=result.num_facts,
                mrr=result.mrr(),
                runtime_seconds=result.runtime_seconds,
                efficiency_facts_per_hour=result.efficiency_facts_per_hour(),
            )
        )
    return points


def _grid_parallel(
    model: KGEModel,
    graph: KnowledgeGraph,
    strategy: str,
    grid: list[tuple[int, int]],
    seed: int,
    procs: int,
    cell_deadline: float | None = None,
) -> list[GridPoint]:
    """Sweep the grid across worker processes; merged in grid order."""
    from ..parallel import Cell, ParallelScheduler, SharedEmbeddingStore
    from ..parallel.workers import GridContext, grid_point_worker

    with SharedEmbeddingStore.publish(model) as store:
        context = GridContext(
            handle=store.handle, graph=graph, strategy=strategy, seed=seed
        )
        scheduler = ParallelScheduler(
            grid_point_worker, procs, context=context, seed=seed,
            cell_deadline=cell_deadline,
        )
        outcomes = scheduler.run(
            [
                Cell(key=f"grid/{top_n}/{max_candidates}", payload=(top_n, max_candidates))
                for top_n, max_candidates in grid
            ]
        )
    return [GridPoint(**outcome.value) for outcome in outcomes]
