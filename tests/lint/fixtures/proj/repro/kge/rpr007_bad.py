"""Bad fixture for RPR007: torn writes and swallowed exceptions."""

import numpy as np


def save_cache(path, arrays):
    with open(path, "wb") as handle:
        handle.write(b"header")
    np.savez(path, **arrays)
    np.savez_compressed(path, **arrays)


def ignore_everything(fn):
    try:
        return fn()
    except Exception:
        pass
