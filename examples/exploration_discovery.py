"""Exploring the long tail — the paper's §6 future direction, runnable.

The paper's strategies exploit popular entities, so long-tail entities —
where knowledge graphs are most incomplete — never surface.  This example
runs three regimes on the same trained model and measures what each one
reaches with the held-out protocol:

* pure exploitation (ENTITY FREQUENCY),
* pure exploration (INVERSE FREQUENCY),
* an ε-greedy mixture.

Usage::

    python examples/exploration_discovery.py
"""

from __future__ import annotations

from repro.discovery import (
    EntityFrequency,
    MixtureStrategy,
    UniformRandom,
    create_strategy,
    discover_facts,
    long_tail_coverage,
)
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, load_dataset


def main() -> None:
    graph = load_dataset("codexl-like")
    model = get_trained_model("codexl-like", "complex", graph=graph)
    stats = GraphStatistics(graph.train)

    regimes = {
        "exploit: entity_frequency": create_strategy("entity_frequency"),
        "explore: inverse_frequency": create_strategy("inverse_frequency"),
        "explore: tempered(alpha=0.5)": create_strategy("tempered_frequency"),
        "mixed: 80% EF + 20% UR": MixtureStrategy(
            [EntityFrequency(), UniformRandom()], [0.8, 0.2]
        ),
    }

    rows = []
    for label, strategy in regimes.items():
        result = discover_facts(
            model, graph, strategy=strategy, top_n=50, max_candidates=500,
            seed=0, stats=stats,
        )
        rows.append(
            {
                "regime": label,
                "facts": result.num_facts,
                "mrr": round(result.mrr(), 4),
                "long_tail_coverage": round(
                    long_tail_coverage(result.facts, stats.degree), 4
                ),
            }
        )
    print(format_table(rows, title="Exploration vs exploitation on codexl-like"))
    print(
        "\nReading: exploitation maximises MRR but concentrates on hub"
        "\nentities; exploration reaches the long tail at a quality cost —"
        "\nthe trade-off the paper's §6 asks future strategies to navigate."
    )


if __name__ == "__main__":
    main()
