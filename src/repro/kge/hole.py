"""HolE (Nickel et al., 2016): holographic embeddings.

``f(s, r, o) = rᵀ (s ⋆ o)`` where ``⋆`` is circular correlation.  The
all-entities scoring forms use the identities

* ``rᵀ (s ⋆ o) = oᵀ (s ∗ r)``  (``∗`` = circular convolution), and
* ``rᵀ (s ⋆ o) = sᵀ (r ⋆ o)``,

so both directions reduce to one FFT pass plus a matmul over the entity
table.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, circular_convolution, circular_correlation
from .base import KGEModel, register_model

__all__ = ["HolE"]


@register_model("hole")
class HolE(KGEModel):
    """Holographic embedding model (equivalent in expressivity to ComplEx)."""

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        return (r_e * circular_correlation(s_e, o_e)).sum(axis=-1)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        composed = circular_convolution(s_e, r_e)
        return composed @ self.entity_embeddings.weight.T

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        composed = circular_correlation(r_e, o_e)
        return composed @ self.entity_embeddings.weight.T
