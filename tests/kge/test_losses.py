"""Loss-function tests: exact values and gradient direction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kge import (
    BCEWithLogitsLoss,
    MarginRankingLoss,
    SoftmaxCrossEntropyLoss,
    create_loss,
)


class TestMarginRankingLoss:
    def test_no_violation_is_zero(self):
        loss = MarginRankingLoss(margin=1.0)
        value = loss(Tensor([5.0, 5.0]), Tensor([1.0, 1.0]))
        assert value.item() == 0.0

    def test_exact_violation_value(self):
        loss = MarginRankingLoss(margin=1.0)
        # margin - pos + neg = 1 - 1 + 0.5 = 0.5
        value = loss(Tensor([1.0]), Tensor([0.5]))
        assert value.item() == pytest.approx(0.5)

    def test_broadcast_over_negatives(self):
        loss = MarginRankingLoss(margin=1.0)
        pos = Tensor([2.0])
        neg = Tensor([[2.0, 0.0]])  # violations: 1.0 and 0.0
        assert loss(pos, neg).item() == pytest.approx(0.5)

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            MarginRankingLoss(margin=0.0)

    def test_gradient_pushes_scores_apart(self):
        pos = Tensor([0.0], requires_grad=True)
        neg = Tensor([0.0], requires_grad=True)
        MarginRankingLoss(margin=1.0)(pos, neg).backward()
        assert pos.grad[0] < 0  # increase positive score
        assert neg.grad[0] > 0  # decrease negative score


class TestBCEWithLogitsLoss:
    def test_matches_reference_hard_targets(self):
        logits = np.asarray([2.0, -1.0, 0.5])
        targets = np.asarray([1.0, 0.0, 1.0])
        loss = BCEWithLogitsLoss()(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_matches_reference_smoothed(self):
        logits = np.asarray([2.0, -1.0])
        targets = np.asarray([1.0, 0.0])
        smoothing = 0.2
        loss = BCEWithLogitsLoss(label_smoothing=smoothing)(
            Tensor(logits), targets
        ).item()
        smoothed = targets * (1 - smoothing) + smoothing / 2
        p = 1 / (1 + np.exp(-logits))
        expected = -(smoothed * np.log(p) + (1 - smoothed) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_stable_at_extreme_logits(self):
        loss = BCEWithLogitsLoss()(
            Tensor([1000.0, -1000.0]), np.asarray([1.0, 0.0])
        ).item()
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-12)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss(label_smoothing=1.0)

    def test_gradient_direction(self):
        logits = Tensor([0.0, 0.0], requires_grad=True)
        BCEWithLogitsLoss()(logits, np.asarray([1.0, 0.0])).backward()
        assert logits.grad[0] < 0  # push positive logit up
        assert logits.grad[1] > 0  # push negative logit down


class TestSelfAdversarialLoss:
    def test_matches_reference(self):
        from repro.kge import SelfAdversarialLoss

        margin, temperature = 4.0, 0.7
        pos = np.asarray([1.0, -0.5])
        neg = np.asarray([[-2.0, 0.3], [-1.0, -3.0]])
        loss = SelfAdversarialLoss(margin, temperature)(
            Tensor(pos), Tensor(neg)
        ).item()

        def sigmoid(x):
            return 1 / (1 + np.exp(-x))

        weights = np.exp(temperature * neg)
        weights /= weights.sum(axis=1, keepdims=True)
        expected = (
            -np.log(sigmoid(margin + pos))
            - (weights * np.log(sigmoid(-margin - neg))).sum(axis=1)
        ).mean()
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_hard_negatives_weighted_more(self):
        """The gradient wrt the highest-scoring negative dominates."""
        from repro.kge import SelfAdversarialLoss

        pos = Tensor([0.0], requires_grad=True)
        neg = Tensor(np.asarray([[2.0, -2.0]]), requires_grad=True)
        SelfAdversarialLoss(margin=1.0, temperature=1.0)(pos, neg).backward()
        assert neg.grad[0, 0] > neg.grad[0, 1] > 0

    def test_validation(self):
        from repro.kge import SelfAdversarialLoss

        with pytest.raises(ValueError):
            SelfAdversarialLoss(margin=0.0)
        with pytest.raises(ValueError):
            SelfAdversarialLoss(temperature=0.0)
        with pytest.raises(ValueError):
            SelfAdversarialLoss()(Tensor([1.0]), Tensor([1.0]))

    def test_factory(self):
        from repro.kge import SelfAdversarialLoss

        loss = create_loss("self_adversarial", margin=3.0, temperature=2.0)
        assert isinstance(loss, SelfAdversarialLoss)
        assert loss.margin == 3.0


class TestSoftmaxCrossEntropyLoss:
    def test_uniform_logits(self):
        n = 5
        loss = SoftmaxCrossEntropyLoss()(
            Tensor(np.zeros((2, n))), np.asarray([0, 3])
        ).item()
        assert loss == pytest.approx(np.log(n))

    def test_confident_correct_is_small(self):
        logits = np.full((1, 4), -10.0)
        logits[0, 2] = 10.0
        loss = SoftmaxCrossEntropyLoss()(Tensor(logits), np.asarray([2])).item()
        assert loss < 1e-6

    def test_gradient_favours_target(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        SoftmaxCrossEntropyLoss()(logits, np.asarray([1])).backward()
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0


class TestFactory:
    def test_creates_each(self):
        assert isinstance(create_loss("margin"), MarginRankingLoss)
        assert isinstance(create_loss("bce"), BCEWithLogitsLoss)
        assert isinstance(create_loss("softmax"), SoftmaxCrossEntropyLoss)

    def test_kwargs_forwarded(self):
        loss = create_loss("margin", margin=3.0)
        assert loss.margin == 3.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            create_loss("focal")
