"""Declarative configuration for :func:`~repro.discovery.discover_facts`.

Mirrors :class:`repro.kge.config.TrainConfig`: a frozen, keyword-only
dataclass with a lossless ``to_dict``/``from_dict`` round trip, so a
discovery run can be described in a journal or config file and replayed
exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any

__all__ = ["DiscoveryConfig"]


@dataclass(frozen=True, kw_only=True)
class DiscoveryConfig:
    """One ``discover_facts`` run's hyperparameters.

    All fields are keyword-only, like :class:`~repro.kge.config.TrainConfig`.
    Passing a config to :func:`~repro.discovery.discover_facts` replaces the
    corresponding keyword arguments wholesale — the config is the single
    source of truth, never merged field-by-field with call-site defaults.
    """

    strategy: str = "entity_frequency"
    top_n: int = 500
    max_candidates: int = 500
    seed: int = 0
    drop_self_loops: bool = True
    workers: int = 1
    cache_size: int = 128

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {self.top_n}")
        if self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")

    def with_(self, **changes) -> "DiscoveryConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiscoveryConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` so stale serialized configs
        fail loudly instead of silently dropping settings.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DiscoveryConfig keys: {sorted(unknown)}")
        return cls(**data)
